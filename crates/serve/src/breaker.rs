//! Per-rung circuit breakers.
//!
//! A persistently failing rung should be *skipped*, not re-tried at full
//! failure latency on every request. Each compiled rung of the
//! degradation ladder carries a [`CircuitBreaker`] with the classic
//! three-state machine:
//!
//! ```text
//!            K consecutive failures
//!   Closed ──────────────────────────▶ Open
//!     ▲                                 │ cooldown elapsed
//!     │ probe succeeds                  ▼
//!     └────────────────────────────  HalfOpen ──▶ Open (probe fails)
//! ```
//!
//! * **Closed** — traffic flows; consecutive failures are counted and
//!   reset on any success.
//! * **Open** — the rung is skipped outright (its failure latency is not
//!   paid) until a cooldown elapses.
//! * **HalfOpen** — exactly one probe request is admitted at a time; its
//!   outcome decides between Closed and a fresh Open period.
//!
//! Breakers open three ways, recorded as the [`OpenReason`]: request
//! failures (`Failures`), the watchdog tripping a rung that repeatedly
//! blows deadlines (`Slow`), and the canary checker quarantining a rung
//! whose outputs silently diverge from the reference (`Quarantine`).
//! Quarantined rungs are special: client traffic never probes them —
//! only the supervisor's background canary probe (which re-validates
//! outputs against the reference scorer) can close them, because a
//! silently-corrupt rung *looks* healthy to an ordinary success check.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tunables for one rung's breaker.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// How long an Open breaker rejects before allowing a half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
        }
    }
}

/// Why a breaker left the Closed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenReason {
    /// K consecutive request failures.
    Failures,
    /// The watchdog tripped the rung for repeatedly blowing deadlines.
    Slow,
    /// The canary checker observed silent output divergence.
    Quarantine,
}

impl OpenReason {
    /// Human-readable label for incidents and health snapshots.
    pub fn label(self) -> &'static str {
        match self {
            OpenReason::Failures => "failures",
            OpenReason::Slow => "slow",
            OpenReason::Quarantine => "quarantine",
        }
    }
}

/// Observable breaker state (also the internal representation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving traffic; counts consecutive failures toward the trip
    /// threshold.
    Closed {
        /// Failures since the last success.
        consecutive_failures: u32,
    },
    /// Skipping traffic until the cooldown elapses.
    Open {
        /// What opened the breaker.
        reason: OpenReason,
        /// When the Open period began (cooldown is measured from here).
        since: Instant,
    },
    /// Cooldown elapsed; at most one probe in flight decides the next
    /// state.
    HalfOpen {
        /// True while the single probe slot is taken.
        probing: bool,
        /// The reason carried over from the Open period.
        reason: OpenReason,
    },
}

/// What the breaker tells the request path to do with a rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: serve normally.
    Serve,
    /// HalfOpen and this caller won the probe slot: serve, and report
    /// the outcome with `was_probe = true`.
    Probe,
    /// Open (or HalfOpen with the probe slot taken): skip this rung.
    Skip,
}

/// A thread-safe three-state circuit breaker for one rung.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<BreakerState>,
}

impl CircuitBreaker {
    /// A new breaker, Closed with zero failures.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: Mutex::new(BreakerState::Closed {
                consecutive_failures: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerState> {
        // Breaker state is a plain enum, valid on every path; survive a
        // poisoned lock rather than wedging the ladder.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Snapshot of the current state.
    pub fn state(&self) -> BreakerState {
        *self.lock()
    }

    /// True while the breaker is open (or half-open) due to canary
    /// quarantine.
    pub fn is_quarantined(&self) -> bool {
        matches!(
            *self.lock(),
            BreakerState::Open {
                reason: OpenReason::Quarantine,
                ..
            } | BreakerState::HalfOpen {
                reason: OpenReason::Quarantine,
                ..
            }
        )
    }

    /// Request-path admission decision at time `now`.
    ///
    /// Quarantined rungs always answer [`Admission::Skip`]: an ordinary
    /// request cannot validate silent-corruption recovery, so only the
    /// background canary probe ([`CircuitBreaker::try_begin_probe`])
    /// re-admits them.
    pub fn admit(&self, now: Instant) -> Admission {
        let mut s = self.lock();
        match *s {
            BreakerState::Closed { .. } => Admission::Serve,
            BreakerState::Open { reason, since } => {
                if reason == OpenReason::Quarantine {
                    return Admission::Skip;
                }
                if now.duration_since(since) >= self.config.cooldown {
                    *s = BreakerState::HalfOpen {
                        probing: true,
                        reason,
                    };
                    Admission::Probe
                } else {
                    Admission::Skip
                }
            }
            BreakerState::HalfOpen { probing, reason } => {
                if reason == OpenReason::Quarantine || probing {
                    Admission::Skip
                } else {
                    *s = BreakerState::HalfOpen {
                        probing: true,
                        reason,
                    };
                    Admission::Probe
                }
            }
        }
    }

    /// Background-probe admission (canary/watchdog thread): like a
    /// half-open probe but also eligible for quarantined rungs. Returns
    /// true when the caller owns the single probe slot.
    pub fn try_begin_probe(&self, now: Instant) -> bool {
        let mut s = self.lock();
        match *s {
            BreakerState::Open { reason, since }
                if now.duration_since(since) >= self.config.cooldown =>
            {
                *s = BreakerState::HalfOpen {
                    probing: true,
                    reason,
                };
                true
            }
            BreakerState::HalfOpen {
                probing: false,
                reason,
            } => {
                *s = BreakerState::HalfOpen {
                    probing: true,
                    reason,
                };
                true
            }
            _ => false,
        }
    }

    /// Reports a successful serve. A successful probe closes the
    /// breaker; a plain success resets the consecutive-failure count.
    /// Returns true when the breaker transitioned to Closed from a
    /// non-Closed state (worth an incident entry).
    pub fn on_success(&self, was_probe: bool) -> bool {
        let mut s = self.lock();
        match *s {
            BreakerState::Closed { .. } => {
                *s = BreakerState::Closed {
                    consecutive_failures: 0,
                };
                false
            }
            BreakerState::HalfOpen { .. } if was_probe => {
                *s = BreakerState::Closed {
                    consecutive_failures: 0,
                };
                true
            }
            // A stale success from a request admitted before the breaker
            // opened: ignore rather than short-circuit the cooldown.
            _ => false,
        }
    }

    /// Reports a failed serve at time `now`. Returns `Some(reason)` when
    /// this failure (re-)opened the breaker.
    pub fn on_failure(&self, was_probe: bool, now: Instant) -> Option<OpenReason> {
        let mut s = self.lock();
        match *s {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let fails = consecutive_failures.saturating_add(1);
                if fails >= self.config.failure_threshold {
                    *s = BreakerState::Open {
                        reason: OpenReason::Failures,
                        since: now,
                    };
                    Some(OpenReason::Failures)
                } else {
                    *s = BreakerState::Closed {
                        consecutive_failures: fails,
                    };
                    None
                }
            }
            BreakerState::HalfOpen { reason, .. } if was_probe => {
                *s = BreakerState::Open { reason, since: now };
                Some(reason)
            }
            _ => None,
        }
    }

    /// Forces the breaker Open (watchdog slow-trip, canary quarantine).
    /// Returns true when the state actually changed to Open with this
    /// reason. Quarantine outranks other reasons: a rung both slow and
    /// corrupt must recover through the canary probe.
    pub fn trip(&self, reason: OpenReason, now: Instant) -> bool {
        let mut s = self.lock();
        match *s {
            BreakerState::Open {
                reason: OpenReason::Quarantine,
                ..
            } if reason != OpenReason::Quarantine => false,
            BreakerState::Open { reason: cur, .. } if cur == reason => false,
            _ => {
                *s = BreakerState::Open { reason, since: now };
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, cooldown_ms: u64) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        }
    }

    #[test]
    fn trips_after_k_consecutive_failures_only() {
        let b = CircuitBreaker::new(cfg(3, 1000));
        let now = Instant::now();
        assert!(b.on_failure(false, now).is_none());
        assert!(b.on_failure(false, now).is_none());
        // A success resets the streak.
        b.on_success(false);
        assert!(b.on_failure(false, now).is_none());
        assert!(b.on_failure(false, now).is_none());
        assert_eq!(b.on_failure(false, now), Some(OpenReason::Failures));
        assert_eq!(b.admit(now), Admission::Skip);
    }

    #[test]
    fn half_open_admits_one_probe_and_probe_outcome_decides() {
        let b = CircuitBreaker::new(cfg(1, 10));
        let t0 = Instant::now();
        assert_eq!(b.on_failure(false, t0), Some(OpenReason::Failures));
        // Within cooldown: skip.
        assert_eq!(b.admit(t0), Admission::Skip);
        let t1 = t0 + Duration::from_millis(11);
        assert_eq!(b.admit(t1), Admission::Probe);
        // Second caller while the probe is outstanding: skip.
        assert_eq!(b.admit(t1), Admission::Skip);
        // Failed probe reopens with a fresh cooldown.
        assert_eq!(b.on_failure(true, t1), Some(OpenReason::Failures));
        assert_eq!(b.admit(t1), Admission::Skip);
        let t2 = t1 + Duration::from_millis(11);
        assert_eq!(b.admit(t2), Admission::Probe);
        assert!(b.on_success(true));
        assert_eq!(b.admit(t2), Admission::Serve);
    }

    #[test]
    fn quarantine_skips_request_traffic_until_background_probe_passes() {
        let b = CircuitBreaker::new(cfg(3, 5));
        let t0 = Instant::now();
        assert!(b.trip(OpenReason::Quarantine, t0));
        assert!(b.is_quarantined());
        // Even after the cooldown, request traffic never probes it.
        let t1 = t0 + Duration::from_millis(6);
        assert_eq!(b.admit(t1), Admission::Skip);
        // The background probe can.
        assert!(b.try_begin_probe(t1));
        assert!(!b.try_begin_probe(t1), "one probe at a time");
        assert!(b.on_success(true));
        assert!(!b.is_quarantined());
        assert_eq!(b.admit(t1), Admission::Serve);
    }

    #[test]
    fn quarantine_outranks_slow_trip() {
        let b = CircuitBreaker::new(cfg(3, 5));
        let now = Instant::now();
        assert!(b.trip(OpenReason::Quarantine, now));
        assert!(!b.trip(OpenReason::Slow, now));
        assert!(b.is_quarantined());
    }
}
