//! Deadline-aware micro-batch coalescing: the admission front door.
//!
//! The paper's whole bet is that prediction serving reduces to tensor
//! execution, where throughput comes from *batching* — yet real traffic
//! arrives one record at a time. This module sits between admission and
//! execution: single-record requests queue here, a coalescer thread
//! dynamically forms micro-batches, each batch executes **once** through
//! the planned compiled path, and per-record results (and per-record
//! errors) scatter back to the callers.
//!
//! Design rules, in priority order:
//!
//! 1. **Deadline-aware** — a batch never coalesces past the slack of its
//!    oldest member: the coalescer flushes at
//!    `min(oldest.enqueued + max_delay, oldest.deadline − exec_EWMA)`,
//!    so waiting for batch-mates can delay a request but never doom it.
//! 2. **Bucketed** — batches execute only at sizes from a small
//!    configured set ([`CoalesceConfig::buckets`]), padded up by
//!    repeating the first row (padding outputs are discarded). This
//!    keeps the per-batch-size memory-plan cache bounded *and warm*:
//!    every execution hits one of a handful of pre-planned shapes.
//! 3. **Shed doomed work early** — a request whose deadline is already
//!    unmeetable given its observed queue wait plus the execution-time
//!    EWMA is answered with a cheap [`ServeError::Expired`] instead of
//!    paying for an answer nobody can use.
//! 4. **Scatter isolates failures** — one poisoned row (non-finite
//!    input, or a row-level non-finite output) must not fail its
//!    batch-mates: clean rows are answered from the batch, suspect rows
//!    are re-executed individually, and a whole-batch failure falls back
//!    to per-record execution so each caller gets its own verdict.
//! 5. **Brownout before rejection** — under sustained queue pressure the
//!    batcher enters *brownout*: canary replay is suspended (the health
//!    thread's background executions compete with request traffic) and
//!    the coalescing window widens so batches get bigger, raising
//!    service rate before admission starts rejecting. Sustained calm
//!    exits brownout. Both transitions are incidents and counted in
//!    [`crate::ServingStats`].
//!
//! Callers interact through [`crate::Supervisor::predict_one`] and can
//! read [`crate::Supervisor::backpressure`] to adapt their send rate.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use hb_tensor::Tensor;

use crate::histogram::ServingLatency;
use crate::incident::{IncidentKind, IncidentLog};
use crate::supervisor::Work;
use crate::{ServeError, Served, ServingModel};

/// Configuration for the micro-batch coalescing front door
/// ([`crate::ServeConfig::coalesce`]).
#[derive(Debug, Clone)]
pub struct CoalesceConfig {
    /// Allowed execution batch sizes, each one a warm entry in the
    /// per-batch-size plan cache. Normalized to sorted/deduped/nonzero
    /// at spawn; a flush takes up to the largest bucket and pads up to
    /// the smallest bucket that fits.
    pub buckets: Vec<usize>,
    /// Age watermark: flush once the oldest pending record has waited
    /// this long, even if no bucket filled.
    pub max_delay: Duration,
    /// Maximum queued (not yet dispatched) records before admission
    /// rejects with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Smoothing factor for the execution-time EWMA used by shedding
    /// and the slack watermark (`0 < α ≤ 1`; higher reacts faster).
    pub ewma_alpha: f64,
    /// Enter brownout after [`CoalesceConfig::brownout_ticks`]
    /// consecutive flush decisions with the queue above this fraction
    /// of capacity.
    pub brownout_enter_fraction: f64,
    /// Exit brownout after the same number of consecutive decisions at
    /// or below this fraction.
    pub brownout_exit_fraction: f64,
    /// Consecutive observations required for a brownout transition
    /// (hysteresis: one burst must not flap the mode).
    pub brownout_ticks: u32,
    /// Extra coalescing delay allowed while in brownout (wider window ⇒
    /// fuller buckets ⇒ higher service rate).
    pub brownout_extra_delay: Duration,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            buckets: vec![1, 2, 4, 8, 16, 32],
            max_delay: Duration::from_micros(500),
            queue_capacity: 256,
            ewma_alpha: 0.2,
            brownout_enter_fraction: 0.75,
            brownout_exit_fraction: 0.25,
            brownout_ticks: 4,
            brownout_extra_delay: Duration::from_millis(2),
        }
    }
}

impl CoalesceConfig {
    /// The bucket list sorted, deduplicated, and with zeros dropped;
    /// `[1]` if the configured list was empty or all-zero.
    pub fn normalized_buckets(&self) -> Vec<usize> {
        let mut b: Vec<usize> = self.buckets.iter().copied().filter(|&n| n > 0).collect();
        b.sort_unstable();
        b.dedup();
        if b.is_empty() {
            b.push(1);
        }
        b
    }
}

/// The execution size for a flush of `pending` records: the smallest
/// bucket that fits them all, clamped to the largest bucket (`buckets`
/// must be normalized — sorted, deduped, nonzero).
pub(crate) fn select_bucket(buckets: &[usize], pending: usize) -> usize {
    debug_assert!(!buckets.is_empty());
    for &b in buckets {
        if b >= pending {
            return b;
        }
    }
    buckets[buckets.len() - 1]
}

/// Pure brownout state machine: hysteresis over queue-depth
/// observations. Kept free of clocks and atomics so the transition
/// logic is unit-testable exactly as it runs.
#[derive(Debug)]
pub struct BrownoutControl {
    enter_above: usize,
    exit_at_or_below: usize,
    ticks: u32,
    high_streak: u32,
    low_streak: u32,
    active: bool,
}

/// A brownout mode change reported by [`BrownoutControl::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutTransition {
    /// Sustained pressure: widen coalescing, suspend canary replay.
    Entered,
    /// Sustained calm: restore normal operation.
    Exited,
}

impl BrownoutControl {
    /// A controller for a queue of `capacity` records using the
    /// thresholds from `config`.
    pub fn new(capacity: usize, config: &CoalesceConfig) -> BrownoutControl {
        let frac = |f: f64| ((capacity as f64) * f.clamp(0.0, 1.0)).round() as usize;
        BrownoutControl {
            enter_above: frac(config.brownout_enter_fraction).max(1),
            exit_at_or_below: frac(config.brownout_exit_fraction),
            ticks: config.brownout_ticks.max(1),
            high_streak: 0,
            low_streak: 0,
            active: false,
        }
    }

    /// Whether brownout is currently active.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Feeds one queue-depth observation (taken at a flush decision);
    /// returns a transition when the streak requirement is met.
    pub fn observe(&mut self, depth: usize) -> Option<BrownoutTransition> {
        if depth >= self.enter_above {
            self.high_streak += 1;
            self.low_streak = 0;
        } else if depth <= self.exit_at_or_below {
            self.low_streak += 1;
            self.high_streak = 0;
        } else {
            self.high_streak = 0;
            self.low_streak = 0;
        }
        if !self.active && self.high_streak >= self.ticks {
            self.active = true;
            self.high_streak = 0;
            return Some(BrownoutTransition::Entered);
        }
        if self.active && self.low_streak >= self.ticks {
            self.active = false;
            self.low_streak = 0;
            return Some(BrownoutTransition::Exited);
        }
        None
    }
}

/// One queued single-record request, from admission to scatter.
pub(crate) struct BatchMember {
    /// The `[1, features]` record.
    pub row: Tensor<f32>,
    /// When admission accepted the record (histogram epoch).
    pub enqueued: Instant,
    /// Absolute deadline, if the serving config has one.
    pub deadline: Option<Instant>,
    /// Whether every input value is finite (rows with non-finite input
    /// legitimately produce non-finite output on some pipelines, so the
    /// row-level output check must not fire for them).
    pub input_finite: bool,
    /// Where the caller is blocked waiting.
    pub reply: Sender<Result<Served, ServeError>>,
}

/// Queue state guarded by the batcher mutex. `shutdown` lives inside
/// the lock so admission and the coalescer's exit decision can never
/// race: a record is either pushed before the coalescer observes
/// `shutdown && empty` (and gets flushed) or its submitter sees
/// `shutdown` and is refused.
struct Shared {
    queue: VecDeque<BatchMember>,
    shutdown: bool,
}

/// Point-in-time backpressure signal for adaptive clients
/// ([`crate::Supervisor::backpressure`]).
#[derive(Debug, Clone)]
pub struct Backpressure {
    /// Records queued at the front door right now (gauge).
    pub queue_depth: usize,
    /// The coalescing queue capacity.
    pub queue_capacity: usize,
    /// True while the brownout mode is active — the server is widening
    /// batches and has suspended canary replay; back off if you can.
    pub in_brownout: bool,
    /// Smoothed batch execution time (the shedding oracle).
    pub exec_ewma: Duration,
    /// Rough wait estimate for a record admitted now (queue ahead of it
    /// in batches, times the EWMA, over the worker count). Advisory.
    pub estimated_wait: Duration,
    /// Requests shed with [`ServeError::Expired`] so far.
    pub shed_expired: u64,
}

/// The coalescing front door shared by submitters, the coalescer
/// thread, and the worker pool.
pub(crate) struct Batcher {
    shared: Mutex<Shared>,
    wake: Condvar,
    /// Normalized bucket list (sorted, deduped, nonzero).
    buckets: Vec<usize>,
    config: CoalesceConfig,
    /// Smoothed batch execution time in µs (shedding + slack oracle).
    /// Cold-started from the cost certificate's envelope midpoint when
    /// the model certifies one, so the shed oracle is never blind before
    /// the first sample.
    ewma_micros: AtomicU64,
    /// Certified wall-clock floor for a single-record execution. A
    /// deadline below it is refused with [`ServeError::Infeasible`]
    /// before queueing. `None` when the model carries no cost cert.
    certified_floor: Option<Duration>,
    /// Set by the coalescer on brownout transitions; read by workers to
    /// suppress canary sampling and by the flush logic to widen the
    /// window.
    brownout: AtomicBool,
    model: Arc<ServingModel>,
    latency: Arc<ServingLatency>,
    n_workers: usize,
}

impl Batcher {
    pub(crate) fn new(
        model: Arc<ServingModel>,
        latency: Arc<ServingLatency>,
        config: CoalesceConfig,
        n_workers: usize,
    ) -> Batcher {
        let buckets = config.normalized_buckets();
        // Seed the shed oracle from the cost certificate: the envelope
        // midpoint at the largest execution bucket stands in for the
        // first measurement (`update_ewma` then blends normally instead
        // of treating the first sample as gospel). Zero = unseeded.
        let largest = buckets[buckets.len() - 1];
        let seed_micros = model
            .cost_cert_for(largest)
            .map(|c| {
                let mid = hb_backend::envelope_for(c).midpoint();
                u64::try_from(mid.as_micros()).unwrap_or(u64::MAX)
            })
            .unwrap_or(0);
        let certified_floor = model.certified_floor(1);
        Batcher {
            shared: Mutex::new(Shared {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            buckets,
            config,
            ewma_micros: AtomicU64::new(seed_micros),
            certified_floor,
            brownout: AtomicBool::new(false),
            model,
            latency,
            n_workers: n_workers.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Shared> {
        self.shared.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Largest configured bucket (flushes take at most this many).
    fn largest_bucket(&self) -> usize {
        self.buckets[self.buckets.len() - 1]
    }

    pub(crate) fn in_brownout(&self) -> bool {
        self.brownout.load(Ordering::Relaxed)
    }

    fn exec_ewma(&self) -> Duration {
        Duration::from_micros(self.ewma_micros.load(Ordering::Relaxed))
    }

    fn update_ewma(&self, observed: Duration) {
        let obs = u64::try_from(observed.as_micros()).unwrap_or(u64::MAX) as f64;
        let alpha = self.config.ewma_alpha.clamp(0.01, 1.0);
        // Racy read-modify-write is fine: the EWMA is a smoothing
        // heuristic, and a lost update under contention only makes it
        // smoother.
        let old = self.ewma_micros.load(Ordering::Relaxed) as f64;
        let new = if old == 0.0 {
            obs
        } else {
            alpha * obs + (1.0 - alpha) * old
        };
        self.ewma_micros.store(new as u64, Ordering::Relaxed);
    }

    /// The coalescing window currently in force (widened in brownout).
    fn effective_delay(&self) -> Duration {
        if self.in_brownout() {
            self.config.max_delay + self.config.brownout_extra_delay
        } else {
            self.config.max_delay
        }
    }

    pub(crate) fn backpressure(&self) -> Backpressure {
        let depth = self.lock().queue.len();
        let ewma = self.exec_ewma();
        let batches_ahead = depth.div_ceil(self.largest_bucket());
        let estimated_wait = ewma * (batches_ahead as u32) / (self.n_workers as u32) + ewma;
        Backpressure {
            queue_depth: depth,
            queue_capacity: self.config.queue_capacity,
            in_brownout: self.in_brownout(),
            exec_ewma: ewma,
            estimated_wait,
            shed_expired: self.model.stats().shed_expired,
        }
    }

    /// Admits one single-record request and blocks until its scattered
    /// reply arrives. Accepts `[features]` or `[1, features]` tensors.
    pub(crate) fn submit(&self, row: &Tensor<f32>) -> Result<Served, ServeError> {
        let row = as_record(row)?;
        self.model.validate_request(&row)?;
        let now = Instant::now();
        let budget = self.model.config().deadline;
        // Static feasibility first: a deadline below the certified
        // execution floor is unmeetable on an *idle* server — no amount
        // of queueing luck helps, so refuse with the typed proof before
        // the load-dependent shed heuristics even look.
        if let (Some(d), Some(floor)) = (budget, self.certified_floor) {
            if d < floor {
                self.model.record_infeasible();
                return Err(ServeError::Infeasible { deadline: d, floor });
            }
        }
        // Early shed: if the smoothed execution time alone exceeds the
        // whole budget, the deadline is unmeetable before we even queue.
        if let Some(d) = budget {
            if self.exec_ewma() > d {
                self.model.record_shed();
                return Err(ServeError::Expired {
                    waited: Duration::ZERO,
                    deadline: d,
                });
            }
        }
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        {
            let mut s = self.lock();
            if s.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if s.queue.len() >= self.config.queue_capacity {
                self.model.record_overload();
                return Err(ServeError::Overloaded {
                    in_flight: s.queue.len(),
                    capacity: self.config.queue_capacity,
                });
            }
            let input_finite = row.iter().all(|v| v.is_finite());
            s.queue.push_back(BatchMember {
                row,
                enqueued: now,
                deadline: budget.map(|d| now + d),
                input_finite,
                reply: reply_tx,
            });
            self.model.set_queue_depth(s.queue.len() as u64);
        }
        self.wake.notify_one();
        reply_rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Internal("batcher dropped the reply".into())))
    }

    /// Flags shutdown (under the queue lock) and wakes the coalescer so
    /// it flushes the remaining queue and exits.
    pub(crate) fn begin_shutdown(&self) {
        self.lock().shutdown = true;
        self.wake.notify_all();
    }

    /// Replies [`ServeError::Expired`] to every queued record whose
    /// deadline can no longer be met (`now + exec_EWMA > deadline`).
    /// Cheap early refusal beats expensive late work.
    fn shed_expired_locked(&self, s: &mut Shared, now: Instant) {
        let ewma = self.exec_ewma();
        let budget = self.model.config().deadline.unwrap_or_default();
        s.queue.retain(|m| {
            let doomed = m.deadline.is_some_and(|d| now + ewma > d);
            if doomed {
                self.model.record_shed();
                self.latency.end_to_end.record(now - m.enqueued);
                let _ = m.reply.send(Err(ServeError::Expired {
                    waited: now - m.enqueued,
                    deadline: budget,
                }));
            }
            !doomed
        });
    }

    /// The coalescer thread body: waits for records, forms micro-batches
    /// at the flush watermarks, and dispatches them to the worker pool
    /// through `job_tx`. Exits once shutdown is flagged **and** the
    /// queue has been flushed, so every queued record gets a definitive
    /// reply before the supervisor closes worker intake.
    pub(crate) fn coalescer_loop(&self, job_tx: &Sender<Work>, incidents: &IncidentLog) {
        let mut brownout = BrownoutControl::new(self.config.queue_capacity, &self.config);
        loop {
            let members = {
                let mut s = self.lock();
                loop {
                    let now = Instant::now();
                    self.shed_expired_locked(&mut s, now);
                    if s.queue.is_empty() {
                        if s.shutdown {
                            self.model.set_queue_depth(0);
                            return;
                        }
                        s = self.wake.wait(s).unwrap_or_else(|p| p.into_inner());
                        continue;
                    }
                    if s.shutdown || s.queue.len() >= self.largest_bucket() {
                        break;
                    }
                    // The oldest member bounds the wait: flush at its age
                    // watermark or when its remaining slack shrinks to
                    // the expected execution time — whichever is sooner.
                    let oldest = &s.queue[0];
                    let mut flush_at = oldest.enqueued + self.effective_delay();
                    if let Some(d) = oldest.deadline {
                        let slack_limit = d.checked_sub(self.exec_ewma()).unwrap_or(now);
                        flush_at = flush_at.min(slack_limit);
                    }
                    if now >= flush_at {
                        break;
                    }
                    let (guard, _) = self
                        .wake
                        .wait_timeout(s, flush_at - now)
                        .unwrap_or_else(|p| p.into_inner());
                    s = guard;
                }
                let take = s.queue.len().min(self.largest_bucket());
                let members: Vec<BatchMember> = s.queue.drain(..take).collect();
                let depth_after = s.queue.len();
                self.model.set_queue_depth(depth_after as u64);
                // Brownout observes the depth *including* what this flush
                // is about to dispatch: pressure is offered load, not
                // what happens to be left after a drain.
                match brownout.observe(depth_after + take) {
                    Some(BrownoutTransition::Entered) => {
                        self.brownout.store(true, Ordering::Relaxed);
                        self.model.record_brownout_entered();
                        incidents.record(
                            IncidentKind::BrownoutEntered,
                            None,
                            format!(
                                "sustained queue pressure at depth {} (capacity {}): widening \
                                 coalescing, suspending canary replay",
                                depth_after + take,
                                self.config.queue_capacity
                            ),
                        );
                    }
                    Some(BrownoutTransition::Exited) => {
                        self.brownout.store(false, Ordering::Relaxed);
                        incidents.record(
                            IncidentKind::BrownoutExited,
                            None,
                            "queue pressure subsided; normal coalescing and canary restored",
                        );
                    }
                    None => {}
                }
                members
            };
            if members.is_empty() {
                continue;
            }
            if job_tx.send(Work::Batch { members }).is_err() {
                // Worker intake closed before drain flagged us — refuse
                // definitively rather than hanging the callers.
                // (Unreachable in the normal drain order, which stops
                // the coalescer before closing worker intake.)
                return;
            }
        }
    }

    /// Executes one coalesced batch on a worker thread and scatters
    /// per-record results. Failure isolation:
    ///
    /// * clean rows answer from the shared execution;
    /// * a row-level non-finite output for a finite-input member is
    ///   re-executed individually (batch-mates unaffected);
    /// * a whole-batch failure (or panic) falls back to per-record
    ///   execution so each member gets its own verdict;
    /// * an answer that would arrive past a member's deadline is
    ///   converted to [`ServeError::DeadlineExceeded`] — a late Ok is
    ///   not Ok.
    ///
    /// Returns the executed batch input when the shared run succeeded,
    /// for the caller's canary sampling.
    pub(crate) fn execute(
        &self,
        members: Vec<BatchMember>,
        incidents: &IncidentLog,
    ) -> Option<Tensor<f32>> {
        let dispatched = Instant::now();
        for m in &members {
            self.latency.queue_wait.record(dispatched - m.enqueued);
        }
        self.model.record_coalesced_batch();
        let exec_size = select_bucket(&self.buckets, members.len());
        let batch = gather_rows(&members, exec_size);
        // The batch must stop at the *tightest* member deadline: past
        // it, at least one caller no longer wants the answer, and the
        // rest retry individually with their own remaining budgets.
        let batch_deadline = members.iter().filter_map(|m| m.deadline).min();
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.model.predict_detailed_until(&batch, batch_deadline)
        }));
        // Failures and deadline cancellations count toward the EWMA too:
        // persistent slowness must raise the shedding oracle even when no
        // batch ever completes.
        self.update_ewma(t0.elapsed());
        match outcome {
            Ok(Ok(served)) => {
                for (i, m) in members.into_iter().enumerate() {
                    let row = served.output.slice(0, i, i + 1).to_contiguous();
                    let suspect = m.input_finite && row.iter().any(|v| !v.is_finite());
                    if suspect {
                        // The shared execution's whole-batch output scan
                        // is skipped when *any* member carries non-finite
                        // input; re-run this row alone so the full
                        // protection stack (scan, degradation) applies.
                        self.execute_individual(m, incidents);
                    } else {
                        self.reply(
                            m,
                            Ok(Served {
                                output: row,
                                rung: served.rung,
                                retries: served.retries,
                                elapsed: Duration::ZERO, // filled by reply()
                            }),
                        );
                    }
                }
                Some(batch)
            }
            Ok(Err(e)) if members.len() == 1 => {
                for m in members {
                    self.reply(m, Err(e.clone()));
                }
                None
            }
            Ok(Err(_)) => {
                // One member's poison must not fail its batch-mates:
                // every member gets its own individual execution and its
                // own verdict.
                for m in members {
                    self.execute_individual(m, incidents);
                }
                None
            }
            Err(p) => {
                let msg = crate::panic_text(p);
                incidents.record(IncidentKind::WorkerPanic, None, msg);
                for m in members {
                    self.execute_individual(m, incidents);
                }
                None
            }
        }
    }

    /// Per-record fallback execution with the member's remaining budget.
    fn execute_individual(&self, m: BatchMember, incidents: &IncidentLog) {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.model.predict_detailed_until(&m.row, m.deadline)
        }));
        let result = match outcome {
            Ok(r) => r,
            Err(p) => {
                let msg = crate::panic_text(p);
                incidents.record(IncidentKind::WorkerPanic, None, msg.clone());
                Err(ServeError::Internal(format!("request panicked: {msg}")))
            }
        };
        self.reply(m, result);
    }

    /// Records end-to-end latency and answers the caller. An Ok that
    /// arrives past the member's deadline is demoted to
    /// [`ServeError::DeadlineExceeded`]: the coalescing layer guarantees
    /// that no successful response ever exceeds its deadline.
    fn reply(&self, m: BatchMember, result: Result<Served, ServeError>) {
        let now = Instant::now();
        let e2e = now - m.enqueued;
        self.latency.end_to_end.record(e2e);
        let result = match result {
            Ok(mut served) => {
                if m.deadline.is_some_and(|d| now > d) {
                    self.model.record_deadline_miss();
                    Err(ServeError::DeadlineExceeded {
                        elapsed: e2e,
                        deadline: self.model.config().deadline.unwrap_or_default(),
                    })
                } else {
                    served.elapsed = e2e;
                    Ok(served)
                }
            }
            err => err,
        };
        let _ = m.reply.send(result);
    }
}

/// Normalizes a request to a `[1, features]` record.
pub(crate) fn as_record(x: &Tensor<f32>) -> Result<Tensor<f32>, ServeError> {
    match x.ndim() {
        1 => Ok(x.reshape(&[1, x.numel()])),
        2 if x.shape()[0] == 1 => Ok(x.clone()),
        _ => Err(ServeError::BadRequest(format!(
            "coalescing accepts single-record requests ([features] or [1, features]), got shape {:?}",
            x.shape()
        ))),
    }
}

/// Concatenates member rows into a `[exec_size, features]` batch,
/// padding with copies of the first row (padding outputs are discarded
/// at scatter; repeating a real row keeps the padding representative
/// and finite whenever the members are).
fn gather_rows(members: &[BatchMember], exec_size: usize) -> Tensor<f32> {
    let mut refs: Vec<&Tensor<f32>> = members.iter().map(|m| &m.row).collect();
    while refs.len() < exec_size {
        refs.push(&members[0].row);
    }
    Tensor::concat(&refs, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CoalesceConfig {
        CoalesceConfig::default()
    }

    #[test]
    fn bucket_selection_pads_up_and_clamps() {
        let buckets = [1usize, 2, 4, 8];
        assert_eq!(select_bucket(&buckets, 1), 1);
        assert_eq!(select_bucket(&buckets, 2), 2);
        assert_eq!(select_bucket(&buckets, 3), 4);
        assert_eq!(select_bucket(&buckets, 8), 8);
        assert_eq!(select_bucket(&buckets, 100), 8);
    }

    #[test]
    fn bucket_normalization_sorts_dedups_and_survives_empty() {
        let c = CoalesceConfig {
            buckets: vec![8, 2, 2, 0, 4],
            ..cfg()
        };
        assert_eq!(c.normalized_buckets(), vec![2, 4, 8]);
        let empty = CoalesceConfig {
            buckets: vec![0],
            ..cfg()
        };
        assert_eq!(empty.normalized_buckets(), vec![1]);
    }

    #[test]
    fn brownout_requires_a_sustained_streak_and_hysteresis() {
        let config = CoalesceConfig {
            queue_capacity: 100,
            brownout_enter_fraction: 0.75,
            brownout_exit_fraction: 0.25,
            brownout_ticks: 3,
            ..cfg()
        };
        let mut b = BrownoutControl::new(100, &config);
        // One burst is not sustained pressure.
        assert_eq!(b.observe(90), None);
        assert_eq!(b.observe(90), None);
        assert_eq!(b.observe(10), None); // streak broken
        assert!(!b.active());
        // Three consecutive high observations enter brownout.
        assert_eq!(b.observe(80), None);
        assert_eq!(b.observe(80), None);
        assert_eq!(b.observe(80), Some(BrownoutTransition::Entered));
        assert!(b.active());
        // Mid-band depths neither enter nor exit.
        assert_eq!(b.observe(50), None);
        assert!(b.active());
        // Three consecutive low observations exit.
        assert_eq!(b.observe(10), None);
        assert_eq!(b.observe(10), None);
        assert_eq!(b.observe(10), Some(BrownoutTransition::Exited));
        assert!(!b.active());
    }

    #[test]
    fn record_normalization_accepts_vectors_and_rejects_batches() {
        let v = Tensor::from_vec(vec![1.0f32, 2.0, 3.0], &[3]);
        assert_eq!(as_record(&v).unwrap().shape(), &[1, 3]);
        let m = Tensor::from_vec(vec![1.0f32, 2.0, 3.0], &[1, 3]);
        assert_eq!(as_record(&m).unwrap().shape(), &[1, 3]);
        let batch = Tensor::from_vec(vec![0.0f32; 6], &[2, 3]);
        assert!(matches!(as_record(&batch), Err(ServeError::BadRequest(_))));
    }
}
