//! Incident log: a bounded, monotonically-sequenced record of everything
//! the serving runtime survived.
//!
//! Worker panics, breaker transitions, canary divergences, watchdog
//! trips, and drains all land here with a strictly increasing sequence
//! number, so operators (and the chaos suite) can reconstruct what
//! happened under concurrency without a debugger attached. The log is a
//! ring buffer: old entries are dropped, sequence numbers never reset.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::Rung;

/// What kind of event an [`Incident`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// A request panicked through every unwind boundary and was caught
    /// at the worker's top level; the worker survived.
    WorkerPanic,
    /// A rung's breaker tripped Closed → Open.
    BreakerOpened,
    /// A rung's breaker closed again (successful probe).
    BreakerClosed,
    /// The canary checker observed output divergence beyond tolerance.
    CanaryDivergence,
    /// A rung was quarantined (breaker forced Open by the canary).
    Quarantined,
    /// The watchdog tripped a rung for repeated deadline blows.
    WatchdogSlowTrip,
    /// A request was cancelled mid-graph after blowing its deadline.
    DeadlineCancelled,
    /// Sustained queue pressure put the coalescer into brownout mode
    /// (canary replay suspended, coalescing window widened).
    BrownoutEntered,
    /// Queue pressure subsided; the coalescer left brownout mode.
    BrownoutExited,
    /// The supervisor drained and shut down.
    Drained,
    /// A model (version) was registered with the store.
    Registered,
    /// A new model version entered its canary phase
    /// (`ModelStore::deploy`).
    Deployed,
    /// A canary version passed its divergence checks and atomically
    /// replaced the active version.
    Promoted,
    /// A canary version failed its divergence checks and was rolled
    /// back; the previous version kept serving throughout.
    RolledBack,
    /// A model was evicted from the store (budget and pool references
    /// released).
    Evicted,
    /// An admission was refused because the model's memory budget was
    /// exhausted.
    BudgetRejected,
}

impl IncidentKind {
    /// Short label for logs and JSON.
    pub fn label(self) -> &'static str {
        match self {
            IncidentKind::WorkerPanic => "worker-panic",
            IncidentKind::BreakerOpened => "breaker-opened",
            IncidentKind::BreakerClosed => "breaker-closed",
            IncidentKind::CanaryDivergence => "canary-divergence",
            IncidentKind::Quarantined => "quarantined",
            IncidentKind::WatchdogSlowTrip => "watchdog-slow-trip",
            IncidentKind::DeadlineCancelled => "deadline-cancelled",
            IncidentKind::BrownoutEntered => "brownout-entered",
            IncidentKind::BrownoutExited => "brownout-exited",
            IncidentKind::Drained => "drained",
            IncidentKind::Registered => "registered",
            IncidentKind::Deployed => "deployed",
            IncidentKind::Promoted => "promoted",
            IncidentKind::RolledBack => "rolled-back",
            IncidentKind::Evicted => "evicted",
            IncidentKind::BudgetRejected => "budget-rejected",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Strictly increasing sequence number (never resets, survives ring
    /// eviction).
    pub seq: u64,
    /// When the incident occurred, relative to log creation.
    pub at: Duration,
    /// The rung involved, if any.
    pub rung: Option<Rung>,
    /// The model (id@version tag) involved — `None` in single-model
    /// operation, where attribution is unambiguous.
    pub model: Option<String>,
    /// Event kind.
    pub kind: IncidentKind,
    /// Free-form context (panic message, divergence magnitude, ...).
    pub detail: String,
}

/// Bounded ring buffer of [`Incident`]s with a monotonic sequence.
#[derive(Debug)]
pub struct IncidentLog {
    seq: AtomicU64,
    epoch: Instant,
    cap: usize,
    /// Incidents evicted from the ring (recorded minus retained): silent
    /// incident loss made observable.
    dropped: AtomicU64,
    entries: Mutex<VecDeque<Incident>>,
}

impl IncidentLog {
    /// A log retaining the most recent `cap` incidents.
    pub fn new(cap: usize) -> IncidentLog {
        IncidentLog {
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
            cap: cap.max(1),
            dropped: AtomicU64::new(0),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Records an incident, returning its sequence number.
    pub fn record(&self, kind: IncidentKind, rung: Option<Rung>, detail: impl Into<String>) -> u64 {
        self.record_for(kind, rung, None, detail)
    }

    /// Records an incident attributed to a model (a store's shared log
    /// carries every model's incidents in one monotonic sequence; the
    /// tag keeps them attributable).
    pub fn record_for(
        &self,
        kind: IncidentKind,
        rung: Option<Rung>,
        model: Option<&str>,
        detail: impl Into<String>,
    ) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let incident = Incident {
            seq,
            at: self.epoch.elapsed(),
            rung,
            model: model.map(str::to_string),
            kind,
            detail: detail.into(),
        };
        // Incidents are plain data; survive a poisoned lock.
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        entries.push_back(incident);
        while entries.len() > self.cap {
            entries.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        seq
    }

    /// Total incidents ever recorded (not just retained).
    pub fn total(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Incidents lost to ring eviction. `total() - dropped()` entries
    /// are retained; a growing value says the ring is undersized for
    /// the incident rate.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained incidents, oldest first.
    pub fn snapshot(&self) -> Vec<Incident> {
        self.entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_monotonic_across_ring_eviction() {
        let log = IncidentLog::new(4);
        for i in 0..10 {
            let seq = log.record(IncidentKind::WorkerPanic, None, format!("p{i}"));
            assert_eq!(seq, i);
        }
        assert_eq!(log.total(), 10);
        assert_eq!(log.dropped(), 6);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 4);
        let seqs: Vec<u64> = snap.iter().map(|i| i.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn record_for_tags_the_model() {
        let log = IncidentLog::new(8);
        log.record(IncidentKind::Drained, None, "bye");
        log.record_for(IncidentKind::Promoted, None, Some("fraud@v2"), "clean");
        let snap = log.snapshot();
        assert_eq!(snap[0].model, None);
        assert_eq!(snap[1].model.as_deref(), Some("fraud@v2"));
        assert_eq!(log.dropped(), 0);
    }
}
