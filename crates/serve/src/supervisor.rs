//! The serving supervisor: a fixed worker pool with panic isolation,
//! watchdog, canary divergence checking, and graceful drain.
//!
//! [`Supervisor::spawn`] owns N worker threads fed by the bounded
//! admission queue. Each request runs under `catch_unwind` at the
//! worker's top level: a panicking request kills the *request* (typed
//! [`ServeError::Internal`], logged as an incident), never the worker.
//!
//! Two background responsibilities run on a dedicated health thread:
//!
//! * **Watchdog** — wakes every [`ServeConfig::watchdog_interval`],
//!   compares per-rung deadline-blow counters against the previous
//!   window, and trips the breaker of any rung blowing deadlines faster
//!   than [`ServeConfig::deadline_blow_threshold`] per window
//!   ([`OpenReason::Slow`]). It also runs recovery probes for
//!   quarantined rungs (see below).
//! * **Canary divergence checker** — every
//!   [`ServeConfig::canary_period`]-th successful response has its
//!   input replayed, in the background, on every live compiled rung and
//!   compared against a fresh reference-scorer answer. Relative error
//!   beyond [`ServeConfig::canary_tolerance`] (or any non-finite
//!   mismatch) quarantines the rung: its breaker is forced Open with
//!   [`OpenReason::Quarantine`], which request traffic can never close —
//!   only a later background probe whose output *again validates
//!   against the reference* re-admits the rung. This is the only
//!   defense that catches silent corruption (e.g. NaN poisoning) on a
//!   rung that reports success, without paying a reference execution on
//!   the request path.
//!
//! The queue-admission check here counts queued *and* running requests
//! against [`ServeConfig::queue_capacity`]; the request deadline starts
//! when a worker picks the job up.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use hb_tensor::Tensor;

use crate::batcher::{as_record, Backpressure, BatchMember, Batcher};
use crate::breaker::OpenReason;
use crate::histogram::{LatencyReport, ServingLatency};
use crate::incident::{IncidentKind, IncidentLog};
use crate::{divergence, Rung, ServeError, Served, ServingModel};

/// Work items flowing through the supervisor's queue.
pub(crate) enum Work {
    /// An ordinary scoring request.
    Predict {
        x: Tensor<f32>,
        /// When admission accepted the request (queue-wait histogram
        /// epoch).
        enqueued: Instant,
        reply: Sender<Result<Served, ServeError>>,
    },
    /// A coalesced micro-batch from the batching front door: executed
    /// once through the planned path, then scattered per record.
    Batch { members: Vec<BatchMember> },
    /// Chaos-testing poison pill: panics inside the worker, proving the
    /// top-level unwind boundary holds (the chaos suite asserts zero
    /// worker deaths while injecting these).
    PanicPill {
        reply: Sender<Result<Served, ServeError>>,
    },
}

/// Messages for the health thread.
enum HealthMsg {
    /// A sampled request input to replay through the canary checker.
    Canary(Tensor<f32>),
}

/// A fixed-size worker pool serving one [`ServingModel`] with panic
/// isolation, a watchdog, canary divergence quarantine, and graceful
/// drain. Cheap to share by reference across client threads (`Send +
/// Sync`); see `examples/resilient_serving.rs`.
pub struct Supervisor {
    model: Arc<ServingModel>,
    incidents: Arc<IncidentLog>,
    /// `None` once draining: submissions are refused.
    job_tx: Mutex<Option<Sender<Work>>>,
    /// Health-thread sender; dropped on drain so the thread exits.
    health_tx: Mutex<Option<Sender<HealthMsg>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    health_thread: Mutex<Option<JoinHandle<()>>>,
    /// The coalescing front door, when [`crate::ServeConfig::coalesce`]
    /// is set.
    batcher: Option<Arc<Batcher>>,
    coalescer_thread: Mutex<Option<JoinHandle<()>>>,
    /// Queue-wait and end-to-end latency histograms, shared with the
    /// batcher.
    latency: Arc<ServingLatency>,
    /// Queued + running requests, bounded by the queue capacity.
    pending: Arc<AtomicUsize>,
    n_workers: usize,
    drained: AtomicBool,
}

/// Point-in-time view of a supervisor and its model.
#[derive(Debug, Clone)]
pub struct SupervisorHealth {
    /// The underlying model's health (breakers, quarantine, stats).
    pub model: crate::HealthSnapshot,
    /// Worker threads the pool was spawned with.
    pub n_workers: usize,
    /// Worker threads still alive (the chaos suite asserts this never
    /// drops below `n_workers` while serving).
    pub workers_alive: usize,
    /// Requests currently queued or running.
    pub queued: usize,
    /// True once [`Supervisor::drain`] has begun.
    pub draining: bool,
}

impl Supervisor {
    /// Spawns `n_workers` worker threads (at least one) plus the health
    /// thread around `model`.
    pub fn spawn(model: ServingModel, n_workers: usize) -> Supervisor {
        let n_workers = n_workers.max(1);
        let model = Arc::new(model);
        let incidents = model.incident_log();
        let (job_tx, job_rx) = channel::<Work>();
        let (health_tx, health_rx) = channel::<HealthMsg>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let pending = Arc::new(AtomicUsize::new(0));

        let canary_period = model.config().canary_period;
        let success_counter = Arc::new(AtomicU64::new(0));
        let latency = Arc::new(ServingLatency::default());

        let batcher = model.config().coalesce.clone().map(|cfg| {
            Arc::new(Batcher::new(
                Arc::clone(&model),
                Arc::clone(&latency),
                cfg,
                n_workers,
            ))
        });

        let mut workers = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let model = Arc::clone(&model);
            let incidents = Arc::clone(&incidents);
            let rx = Arc::clone(&job_rx);
            let pending = Arc::clone(&pending);
            let health_tx = health_tx.clone();
            let counter = Arc::clone(&success_counter);
            let batcher = batcher.clone();
            let latency = Arc::clone(&latency);
            workers.push(std::thread::spawn(move || {
                worker_loop(
                    &model,
                    &incidents,
                    &rx,
                    &pending,
                    &health_tx,
                    &counter,
                    canary_period,
                    batcher.as_deref(),
                    &latency,
                );
            }));
        }

        // The coalescer owns its own clone of the job sender; it is the
        // only producer of `Work::Batch` items and exits once shutdown
        // is flagged and its queue has been flushed.
        let coalescer_thread = batcher.as_ref().map(|b| {
            let b = Arc::clone(b);
            let incidents = Arc::clone(&incidents);
            let job_tx = job_tx.clone();
            std::thread::spawn(move || b.coalescer_loop(&job_tx, &incidents))
        });

        let health_thread = {
            let model = Arc::clone(&model);
            let incidents = Arc::clone(&incidents);
            std::thread::spawn(move || health_loop(&model, &incidents, &health_rx))
        };

        Supervisor {
            model,
            incidents,
            job_tx: Mutex::new(Some(job_tx)),
            health_tx: Mutex::new(Some(health_tx)),
            workers: Mutex::new(workers),
            health_thread: Mutex::new(Some(health_thread)),
            batcher,
            coalescer_thread: Mutex::new(coalescer_thread),
            latency,
            pending,
            n_workers,
            drained: AtomicBool::new(false),
        }
    }

    /// The supervised model (for stats, health, and direct calls).
    pub fn model(&self) -> &ServingModel {
        &self.model
    }

    /// Scores a batch through the worker pool, blocking until a worker
    /// answers. Equivalent to [`Supervisor::predict_detailed`] without
    /// the metadata.
    pub fn predict(&self, x: &Tensor<f32>) -> Result<Tensor<f32>, ServeError> {
        self.predict_detailed(x).map(|s| s.output)
    }

    /// Scores a batch through the worker pool with serving metadata.
    ///
    /// Fails fast with [`ServeError::Overloaded`] when queued + running
    /// requests exceed the queue capacity, and with
    /// [`ServeError::ShuttingDown`] once [`Supervisor::drain`] has begun.
    pub fn predict_detailed(&self, x: &Tensor<f32>) -> Result<Served, ServeError> {
        self.submit(|reply| Work::Predict {
            x: x.clone(),
            enqueued: Instant::now(),
            reply,
        })
    }

    /// Scores one record (`[features]` or `[1, features]`) through the
    /// coalescing front door when [`crate::ServeConfig::coalesce`] is
    /// set: the request queues, joins a deadline-aware micro-batch, and
    /// its row is scattered back — with per-record error isolation and
    /// early [`ServeError::Expired`] shedding when its deadline is
    /// already unmeetable. Without a coalescing config this is an
    /// ordinary single-record [`Supervisor::predict_detailed`].
    pub fn predict_one(&self, x: &Tensor<f32>) -> Result<Served, ServeError> {
        match &self.batcher {
            Some(b) => b.submit(x),
            None => {
                let row = as_record(x)?;
                self.predict_detailed(&row)
            }
        }
    }

    /// Point-in-time backpressure signal from the coalescing front door
    /// (queue depth, brownout flag, execution EWMA, shed count). `None`
    /// when coalescing is not configured.
    pub fn backpressure(&self) -> Option<Backpressure> {
        self.batcher.as_ref().map(|b| b.backpressure())
    }

    /// Snapshot of the queue-wait and end-to-end latency histograms
    /// (p50/p95/p99/max via [`crate::HistogramSnapshot::quantile`]).
    /// Populated by both the coalescing and the direct
    /// [`Supervisor::predict_detailed`] paths.
    pub fn latency(&self) -> LatencyReport {
        self.latency.report()
    }

    /// Chaos hook: submits a request that panics inside a worker. The
    /// caller gets [`ServeError::Internal`]; the worker must survive.
    #[doc(hidden)]
    pub fn inject_worker_panic(&self) -> Result<Served, ServeError> {
        self.submit(|reply| Work::PanicPill { reply })
    }

    fn submit(
        &self,
        make: impl FnOnce(Sender<Result<Served, ServeError>>) -> Work,
    ) -> Result<Served, ServeError> {
        let tx = {
            let guard = lock(&self.job_tx);
            match guard.as_ref() {
                Some(tx) => tx.clone(),
                None => return Err(ServeError::ShuttingDown),
            }
        };
        let capacity = self.model.config().queue_capacity;
        // Compare-and-swap admission: a rejected request never touches
        // the counter, so concurrent rejected bursts cannot transiently
        // inflate the queue depth seen by `SupervisorHealth::queued`.
        let admitted = self
            .pending
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |p| {
                (p < capacity).then_some(p + 1)
            });
        if let Err(full) = admitted {
            self.model.record_overload();
            return Err(ServeError::Overloaded {
                in_flight: full,
                capacity,
            });
        }
        let (reply_tx, reply_rx) = channel();
        if tx.send(make(reply_tx)).is_err() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Err(ServeError::ShuttingDown);
        }
        reply_rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Internal("worker dropped the reply".into())))
    }

    /// Health snapshot including pool liveness.
    pub fn health(&self) -> SupervisorHealth {
        let workers_alive = lock(&self.workers)
            .iter()
            .filter(|h| !h.is_finished())
            .count();
        SupervisorHealth {
            model: self.model.health(),
            n_workers: self.n_workers,
            workers_alive,
            queued: self.pending.load(Ordering::SeqCst),
            draining: lock(&self.job_tx).is_none(),
        }
    }

    /// Snapshot of the incident log (workers, watchdog, canary, and the
    /// request path all record into the same monotonic sequence).
    pub fn incidents(&self) -> Vec<crate::Incident> {
        self.incidents.snapshot()
    }

    /// Graceful shutdown: refuses new submissions, lets queued requests
    /// finish, joins every worker and the health thread. Idempotent;
    /// also invoked by `Drop`.
    pub fn drain(&self) {
        // The front door closes first: the coalescer refuses new
        // records, flushes everything already queued as final
        // micro-batches (every queued request gets a definitive reply),
        // and exits. This must finish before worker intake closes —
        // the flush batches still need workers to run them.
        if let Some(b) = &self.batcher {
            b.begin_shutdown();
        }
        if let Some(handle) = lock(&self.coalescer_thread).take() {
            let _ = handle.join();
        }
        // Closing the intake disconnects the job channel once queued
        // work is consumed, so workers exit after finishing in-flight
        // requests — never mid-request.
        drop(lock(&self.job_tx).take());
        for handle in lock(&self.workers).drain(..) {
            let _ = handle.join();
        }
        // With every worker gone, dropping our health sender disconnects
        // the health channel and the health thread exits.
        drop(lock(&self.health_tx).take());
        if let Some(handle) = lock(&self.health_thread).take() {
            let _ = handle.join();
        }
        if !self.drained.swap(true, Ordering::SeqCst) {
            self.incidents
                .record(IncidentKind::Drained, None, "supervisor drained");
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Poison-proof lock: every shared structure here is valid on all paths,
/// so a panicking thread must not wedge the pool.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    model: &ServingModel,
    incidents: &IncidentLog,
    rx: &Mutex<Receiver<Work>>,
    pending: &AtomicUsize,
    health_tx: &Sender<HealthMsg>,
    success_counter: &AtomicU64,
    canary_period: usize,
    batcher: Option<&Batcher>,
    latency: &ServingLatency,
) {
    // In brownout the canary's background replays are suspended: they
    // compete with request traffic for exactly the cycles the overload
    // needs.
    let canary_allowed = |batcher: Option<&Batcher>| match batcher {
        Some(b) => !b.in_brownout(),
        None => true,
    };
    loop {
        // Hold the receiver lock only while dequeuing, never while
        // scoring — other workers keep draining the queue in parallel.
        let work = lock(rx).recv();
        let Ok(work) = work else {
            return; // intake closed and queue drained
        };
        match work {
            Work::Predict { x, enqueued, reply } => {
                latency.queue_wait.record(enqueued.elapsed());
                let outcome = catch_unwind(AssertUnwindSafe(|| model.predict_detailed(&x)));
                let result = match outcome {
                    Ok(r) => r,
                    Err(p) => {
                        let msg = crate::panic_text(p);
                        incidents.record(IncidentKind::WorkerPanic, None, msg.clone());
                        Err(ServeError::Internal(format!("request panicked: {msg}")))
                    }
                };
                if result.is_ok() && canary_period > 0 && canary_allowed(batcher) {
                    let n = success_counter.fetch_add(1, Ordering::Relaxed) + 1;
                    if n.is_multiple_of(canary_period as u64) {
                        // Best effort: a closed health channel just means
                        // we are draining.
                        let _ = health_tx.send(HealthMsg::Canary(x));
                    }
                }
                latency.end_to_end.record(enqueued.elapsed());
                pending.fetch_sub(1, Ordering::SeqCst);
                let _ = reply.send(result);
            }
            Work::Batch { members } => {
                // The coalescer only produces batches when it exists;
                // `execute` scatters every member's reply itself and
                // returns the executed input when the shared run
                // succeeded (the canary sample).
                let Some(b) = batcher else {
                    for m in members {
                        let _ = m.reply.send(Err(ServeError::Internal(
                            "batch work without a coalescer".into(),
                        )));
                    }
                    continue;
                };
                let executed = b.execute(members, incidents);
                if let Some(x) = executed {
                    if canary_period > 0 && canary_allowed(batcher) {
                        let n = success_counter.fetch_add(1, Ordering::Relaxed) + 1;
                        if n.is_multiple_of(canary_period as u64) {
                            let _ = health_tx.send(HealthMsg::Canary(x));
                        }
                    }
                }
            }
            Work::PanicPill { reply } => {
                let outcome: Result<Result<Served, ServeError>, _> =
                    catch_unwind(AssertUnwindSafe(|| {
                        panic!("chaos: injected worker panic");
                    }));
                let result = match outcome {
                    Ok(r) => r,
                    Err(p) => {
                        let msg = crate::panic_text(p);
                        incidents.record(IncidentKind::WorkerPanic, None, msg.clone());
                        Err(ServeError::Internal(format!("request panicked: {msg}")))
                    }
                };
                pending.fetch_sub(1, Ordering::SeqCst);
                let _ = reply.send(result);
            }
        }
    }
}

fn health_loop(model: &ServingModel, incidents: &IncidentLog, rx: &Receiver<HealthMsg>) {
    let interval = model.config().watchdog_interval;
    let tolerance = model.config().canary_tolerance;
    let blow_threshold = model.config().deadline_blow_threshold;
    let mut last_blows = model.deadline_blow_counts();
    // The most recent sampled input doubles as the probe payload for
    // quarantine recovery.
    let mut stash: Option<Tensor<f32>> = None;
    // Watchdog ticks run on an absolute schedule so a steady stream of
    // canary samples cannot starve them.
    let mut next_tick = Instant::now() + interval;
    loop {
        let wait = next_tick.saturating_duration_since(Instant::now());
        match rx.recv_timeout(wait) {
            Ok(HealthMsg::Canary(x)) => {
                // Collapse any backlog to the newest sample: the canary
                // is statistical, and replaying every queued input would
                // let a burst of traffic (or a slow rung) wedge this
                // thread — and with it, drain() — for minutes.
                let mut newest = x;
                while let Ok(HealthMsg::Canary(later)) = rx.try_recv() {
                    newest = later;
                }
                run_canary(model, incidents, &newest, tolerance);
                stash = Some(newest);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        if Instant::now() >= next_tick {
            run_watchdog(model, incidents, &mut last_blows, blow_threshold);
            run_recovery_probes(model, incidents, stash.as_ref(), tolerance);
            next_tick = Instant::now() + interval;
        }
    }
}

/// Replays `x` on every live compiled rung and compares against a fresh
/// reference answer; divergence beyond tolerance quarantines the rung.
fn run_canary(model: &ServingModel, incidents: &IncidentLog, x: &Tensor<f32>, tolerance: f32) {
    let Ok(want) = model.reference_output(x) else {
        // No trustworthy baseline; skip this sample.
        return;
    };
    for rung in compiled_rungs(model) {
        let Some(breaker) = model.breaker_for(rung) else {
            continue;
        };
        // Quarantine recovery goes through the probe path, and a rung
        // tripped for *slowness* must not be replayed here — its
        // uncancellable background run would stall this thread (and
        // with it, drain). Failures-opened rungs are still replayed:
        // they fail fast, and catching their silent-corruption flavor
        // (e.g. NaN poisoning behind an inline-detected failure) is the
        // canary's whole job.
        let skip = match breaker.state() {
            crate::BreakerState::Closed { .. } => false,
            crate::BreakerState::Open { reason, .. }
            | crate::BreakerState::HalfOpen { reason, .. } => {
                matches!(reason, OpenReason::Slow | OpenReason::Quarantine)
            }
        };
        if skip {
            continue;
        }
        // Hard failures are the request path's job (retry + breaker);
        // the canary hunts silent corruption, so only a *successful*
        // replay with a wrong answer is actionable here.
        let Ok(got) = model.raw_rung_output(rung, x) else {
            continue;
        };
        let err = divergence(&got, &want);
        // NaN divergence (non-finite replay output) must also trip.
        if err.is_nan() || err > tolerance {
            incidents.record(
                IncidentKind::CanaryDivergence,
                Some(rung),
                format!("relative error {err:e} exceeds tolerance {tolerance:e}"),
            );
            if breaker.trip(OpenReason::Quarantine, Instant::now()) {
                incidents.record(
                    IncidentKind::Quarantined,
                    Some(rung),
                    "rung quarantined pending canary-validated probe",
                );
            }
        }
    }
}

/// Trips rungs that blew more than `threshold` deadlines since the last
/// watchdog window.
fn run_watchdog(
    model: &ServingModel,
    incidents: &IncidentLog,
    last_blows: &mut [u64; 4],
    threshold: u64,
) {
    let now_blows = model.deadline_blow_counts();
    for rung in compiled_rungs(model) {
        let i = rung.index();
        let delta = now_blows[i].saturating_sub(last_blows[i]);
        if threshold > 0 && delta >= threshold {
            if let Some(breaker) = model.breaker_for(rung) {
                if breaker.trip(OpenReason::Slow, Instant::now()) {
                    incidents.record(
                        IncidentKind::WatchdogSlowTrip,
                        Some(rung),
                        format!("{delta} deadline blows in one watchdog window"),
                    );
                }
            }
        }
        last_blows[i] = now_blows[i];
    }
}

/// Runs at most one background probe per quarantined rung, re-validating
/// its output against the reference before re-admitting it.
fn run_recovery_probes(
    model: &ServingModel,
    incidents: &IncidentLog,
    stash: Option<&Tensor<f32>>,
    tolerance: f32,
) {
    let Some(x) = stash else {
        return; // nothing sampled yet, nothing to probe with
    };
    for rung in compiled_rungs(model) {
        let Some(breaker) = model.breaker_for(rung) else {
            continue;
        };
        if !breaker.is_quarantined() {
            continue;
        }
        if !breaker.try_begin_probe(Instant::now()) {
            continue;
        }
        let healthy = match (model.raw_rung_output(rung, x), model.reference_output(x)) {
            (Ok(got), Ok(want)) => divergence(&got, &want) <= tolerance,
            _ => false,
        };
        if healthy {
            if breaker.on_success(true) {
                incidents.record(
                    IncidentKind::BreakerClosed,
                    Some(rung),
                    "canary-validated probe passed; quarantine lifted",
                );
            }
        } else {
            breaker.on_failure(true, Instant::now());
        }
    }
}

fn compiled_rungs(model: &ServingModel) -> Vec<Rung> {
    model
        .available_rungs()
        .into_iter()
        .filter(|r| *r != Rung::Reference)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use hb_pipeline::{fit_pipeline, OpSpec, Targets};

    fn fixture() -> (hb_pipeline::Pipeline, Tensor<f32>) {
        let x = Tensor::from_fn(&[30, 3], |i| ((i[0] * 5 + i[1]) % 11) as f32 * 0.2);
        let y = Targets::Classes((0..30).map(|i| (i % 2) as i64).collect());
        let pipe = fit_pipeline(&[OpSpec::StandardScaler, OpSpec::GaussianNb], &x, &y);
        (pipe, x)
    }

    #[test]
    fn pool_serves_and_drains_cleanly() {
        let (pipe, x) = fixture();
        let model = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
        let sup = Supervisor::spawn(model, 2);
        let served = sup.predict_detailed(&x).unwrap();
        assert_eq!(served.output.shape(), &[30, 2]);
        let health = sup.health();
        assert_eq!(health.workers_alive, 2);
        assert!(!health.draining);
        sup.drain();
        assert!(matches!(sup.predict(&x), Err(ServeError::ShuttingDown)));
        assert!(sup.health().draining);
        // Idempotent.
        sup.drain();
        assert_eq!(
            sup.incidents()
                .iter()
                .filter(|i| i.kind == IncidentKind::Drained)
                .count(),
            1
        );
    }

    #[test]
    fn worker_panic_kills_the_request_not_the_worker() {
        let (pipe, x) = fixture();
        let model = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
        let sup = Supervisor::spawn(model, 1);
        let err = sup.inject_worker_panic().unwrap_err();
        assert!(matches!(err, ServeError::Internal(_)));
        // The lone worker survived and still serves.
        assert!(sup.predict(&x).is_ok());
        assert_eq!(sup.health().workers_alive, 1);
        assert!(sup
            .incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::WorkerPanic));
    }
}
