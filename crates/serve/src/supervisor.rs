//! The serving supervisor: a fixed worker pool with panic isolation,
//! watchdog, canary divergence checking, and graceful drain.
//!
//! [`Supervisor::spawn`] owns N worker threads fed by the bounded
//! admission queue. Each request runs under `catch_unwind` at the
//! worker's top level: a panicking request kills the *request* (typed
//! [`ServeError::Internal`], logged as an incident), never the worker.
//!
//! Two background responsibilities run on a dedicated health thread:
//!
//! * **Watchdog** — wakes every [`ServeConfig::watchdog_interval`],
//!   compares per-rung deadline-blow counters against the previous
//!   window, and trips the breaker of any rung blowing deadlines faster
//!   than [`ServeConfig::deadline_blow_threshold`] per window
//!   ([`OpenReason::Slow`]). It also runs recovery probes for
//!   quarantined rungs (see below).
//! * **Canary divergence checker** — every
//!   [`ServeConfig::canary_period`]-th successful response has its
//!   input replayed, in the background, on every live compiled rung and
//!   compared against a fresh reference-scorer answer. Relative error
//!   beyond [`ServeConfig::canary_tolerance`] (or any non-finite
//!   mismatch) quarantines the rung: its breaker is forced Open with
//!   [`OpenReason::Quarantine`], which request traffic can never close —
//!   only a later background probe whose output *again validates
//!   against the reference* re-admits the rung. This is the only
//!   defense that catches silent corruption (e.g. NaN poisoning) on a
//!   rung that reports success, without paying a reference execution on
//!   the request path.
//!
//! The queue-admission check here counts queued *and* running requests
//! against [`ServeConfig::queue_capacity`]; the request deadline starts
//! when a worker picks the job up.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hb_tensor::Tensor;

use crate::batcher::{as_record, Backpressure, BatchMember, Batcher};
use crate::breaker::OpenReason;
use crate::histogram::{LatencyReport, ServingLatency};
use crate::incident::{IncidentKind, IncidentLog};
use crate::store::{ModelStore, ShareGuard};
use crate::{Rung, ServeError, Served, ServingModel, ServingStats};

/// Work items flowing through the supervisor's queue.
pub(crate) enum Work {
    /// An ordinary scoring request (single-model mode).
    Predict {
        x: Tensor<f32>,
        /// When admission accepted the request (queue-wait histogram
        /// epoch).
        enqueued: Instant,
        reply: Sender<Result<Served, ServeError>>,
    },
    /// A scoring request routed to a named model in a [`ModelStore`].
    /// Carries its fair-share slot, taken at submission; the guard
    /// releases on every exit path, including a worker panic.
    Store {
        name: String,
        x: Tensor<f32>,
        enqueued: Instant,
        #[allow(dead_code)] // held for its Drop
        guard: ShareGuard,
        reply: Sender<Result<Served, ServeError>>,
    },
    /// A coalesced micro-batch from the batching front door: executed
    /// once through the planned path, then scattered per record.
    Batch { members: Vec<BatchMember> },
    /// Chaos-testing poison pill: panics inside the worker, proving the
    /// top-level unwind boundary holds (the chaos suite asserts zero
    /// worker deaths while injecting these).
    PanicPill {
        reply: Sender<Result<Served, ServeError>>,
    },
}

/// Messages for the health thread.
enum HealthMsg {
    /// A sampled request input to replay through the canary checker,
    /// against the model that served it.
    Canary {
        model: Arc<ServingModel>,
        x: Tensor<f32>,
    },
}

/// What a supervisor hosts: one model, or a whole store of them. All
/// pool infrastructure (workers, health thread, incident log) is shared
/// either way; the store multiplexes per-model fault domains over it.
#[derive(Clone)]
enum Host {
    Single(Arc<ServingModel>),
    Store(Arc<ModelStore>),
}

impl Host {
    /// Every model the health thread watches over. For a store this is
    /// the live actives plus in-flight canary candidates, re-resolved
    /// each tick so deploys and evictions are picked up.
    fn models(&self) -> Vec<Arc<ServingModel>> {
        match self {
            Host::Single(m) => vec![Arc::clone(m)],
            Host::Store(s) => s.hosted_models(),
        }
    }

    fn watchdog_interval(&self) -> Duration {
        match self {
            Host::Single(m) => m.config().watchdog_interval,
            Host::Store(s) => s.config().watchdog_interval,
        }
    }

    fn incident_log(&self) -> Arc<IncidentLog> {
        match self {
            Host::Single(m) => m.incident_log(),
            Host::Store(s) => s.incident_log(),
        }
    }
}

/// A fixed-size worker pool serving one [`ServingModel`] with panic
/// isolation, a watchdog, canary divergence quarantine, and graceful
/// drain. Cheap to share by reference across client threads (`Send +
/// Sync`); see `examples/resilient_serving.rs`.
pub struct Supervisor {
    host: Host,
    incidents: Arc<IncidentLog>,
    /// `None` once draining: submissions are refused.
    job_tx: Mutex<Option<Sender<Work>>>,
    /// Health-thread sender; dropped on drain so the thread exits.
    health_tx: Mutex<Option<Sender<HealthMsg>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    health_thread: Mutex<Option<JoinHandle<()>>>,
    /// The coalescing front door, when [`crate::ServeConfig::coalesce`]
    /// is set.
    batcher: Option<Arc<Batcher>>,
    coalescer_thread: Mutex<Option<JoinHandle<()>>>,
    /// Queue-wait and end-to-end latency histograms, shared with the
    /// batcher.
    latency: Arc<ServingLatency>,
    /// Queued + running requests, bounded by the queue capacity.
    pending: Arc<AtomicUsize>,
    n_workers: usize,
    drained: AtomicBool,
}

/// Health of one store-hosted model, named and versioned.
#[derive(Debug, Clone)]
pub struct ModelHealth {
    /// The model's registered name.
    pub name: String,
    /// The active version.
    pub version: u32,
    /// The active version's full health snapshot.
    pub health: crate::HealthSnapshot,
}

/// Point-in-time view of a supervisor and what it hosts.
#[derive(Debug, Clone)]
pub struct SupervisorHealth {
    /// The hosted model's health (breakers, quarantine, stats). For a
    /// store this is a synthesized aggregate: summed stats, degraded
    /// when *any* model is degraded, with no per-rung rows (those live
    /// in [`SupervisorHealth::models`]).
    pub model: crate::HealthSnapshot,
    /// Per-model health when hosting a [`ModelStore`], sorted by name;
    /// empty for a single-model supervisor.
    pub models: Vec<ModelHealth>,
    /// Worker threads the pool was spawned with.
    pub n_workers: usize,
    /// Worker threads still alive (the chaos suite asserts this never
    /// drops below `n_workers` while serving).
    pub workers_alive: usize,
    /// Requests currently queued or running.
    pub queued: usize,
    /// True once [`Supervisor::drain`] has begun.
    pub draining: bool,
}

impl Supervisor {
    /// Spawns `n_workers` worker threads (at least one) plus the health
    /// thread around `model`.
    pub fn spawn(model: ServingModel, n_workers: usize) -> Supervisor {
        Supervisor::spawn_host(Host::Single(Arc::new(model)), n_workers)
    }

    /// Spawns a worker pool serving every model in `store` (present and
    /// future — registrations after spawn are served immediately).
    /// Requests are submitted per model via [`Supervisor::predict_for`];
    /// the watchdog, canary checker, and recovery probes multiplex over
    /// all hosted models, each in its own fault domain.
    pub fn spawn_store(store: Arc<ModelStore>, n_workers: usize) -> Supervisor {
        Supervisor::spawn_host(Host::Store(store), n_workers)
    }

    fn spawn_host(host: Host, n_workers: usize) -> Supervisor {
        let n_workers = n_workers.max(1);
        let incidents = host.incident_log();
        let (job_tx, job_rx) = channel::<Work>();
        let (health_tx, health_rx) = channel::<HealthMsg>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let pending = Arc::new(AtomicUsize::new(0));
        let latency = Arc::new(ServingLatency::default());

        // Coalescing is a single-model front door; a store's admission
        // arbitration happens per model in FairShare instead.
        let batcher = match &host {
            Host::Single(model) => model.config().coalesce.clone().map(|cfg| {
                Arc::new(Batcher::new(
                    Arc::clone(model),
                    Arc::clone(&latency),
                    cfg,
                    n_workers,
                ))
            }),
            Host::Store(_) => None,
        };

        let mut workers = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let host = host.clone();
            let incidents = Arc::clone(&incidents);
            let rx = Arc::clone(&job_rx);
            let pending = Arc::clone(&pending);
            let health_tx = health_tx.clone();
            let batcher = batcher.clone();
            let latency = Arc::clone(&latency);
            workers.push(std::thread::spawn(move || {
                worker_loop(
                    &host,
                    &incidents,
                    &rx,
                    &pending,
                    &health_tx,
                    batcher.as_deref(),
                    &latency,
                );
            }));
        }

        // The coalescer owns its own clone of the job sender; it is the
        // only producer of `Work::Batch` items and exits once shutdown
        // is flagged and its queue has been flushed.
        let coalescer_thread = batcher.as_ref().map(|b| {
            let b = Arc::clone(b);
            let incidents = Arc::clone(&incidents);
            let job_tx = job_tx.clone();
            std::thread::spawn(move || b.coalescer_loop(&job_tx, &incidents))
        });

        let health_thread = {
            let host = host.clone();
            std::thread::spawn(move || health_loop(&host, &health_rx))
        };

        Supervisor {
            host,
            incidents,
            job_tx: Mutex::new(Some(job_tx)),
            health_tx: Mutex::new(Some(health_tx)),
            workers: Mutex::new(workers),
            health_thread: Mutex::new(Some(health_thread)),
            batcher,
            coalescer_thread: Mutex::new(coalescer_thread),
            latency,
            pending,
            n_workers,
            drained: AtomicBool::new(false),
        }
    }

    /// The supervised model (for stats, health, and direct calls).
    ///
    /// # Panics
    ///
    /// Panics for a store-hosting supervisor, which has no single model
    /// — use [`Supervisor::store`] or [`Supervisor::health`] instead.
    pub fn model(&self) -> &ServingModel {
        match &self.host {
            Host::Single(m) => m,
            Host::Store(_) => {
                panic!("supervisor hosts a model store; use store()/predict_for()")
            }
        }
    }

    /// The hosted [`ModelStore`], when spawned via
    /// [`Supervisor::spawn_store`].
    pub fn store(&self) -> Option<&Arc<ModelStore>> {
        match &self.host {
            Host::Single(_) => None,
            Host::Store(s) => Some(s),
        }
    }

    /// Scores a batch through the worker pool, blocking until a worker
    /// answers. Equivalent to [`Supervisor::predict_detailed`] without
    /// the metadata.
    pub fn predict(&self, x: &Tensor<f32>) -> Result<Tensor<f32>, ServeError> {
        self.predict_detailed(x).map(|s| s.output)
    }

    /// Scores a batch through the worker pool with serving metadata.
    ///
    /// Fails fast with [`ServeError::Overloaded`] when queued + running
    /// requests exceed the queue capacity, and with
    /// [`ServeError::ShuttingDown`] once [`Supervisor::drain`] has begun.
    pub fn predict_detailed(&self, x: &Tensor<f32>) -> Result<Served, ServeError> {
        if matches!(self.host, Host::Store(_)) {
            return Err(ServeError::BadRequest(
                "supervisor hosts a model store; use predict_for(name, x)".into(),
            ));
        }
        self.submit(|reply| Work::Predict {
            x: x.clone(),
            enqueued: Instant::now(),
            reply,
        })
    }

    /// Scores a batch on the named store model through the worker pool.
    /// Equivalent to [`Supervisor::predict_detailed_for`] without the
    /// metadata.
    pub fn predict_for(&self, name: &str, x: &Tensor<f32>) -> Result<Tensor<f32>, ServeError> {
        self.predict_detailed_for(name, x).map(|s| s.output)
    }

    /// Scores a batch on the named store model with serving metadata.
    /// Fair-share admission happens here, at submission: a model under
    /// its guaranteed slot count is never refused, whatever load its
    /// neighbors are generating.
    pub fn predict_detailed_for(&self, name: &str, x: &Tensor<f32>) -> Result<Served, ServeError> {
        let Host::Store(store) = &self.host else {
            return Err(ServeError::BadRequest(
                "supervisor hosts a single model; use predict(x)".into(),
            ));
        };
        let tx = self.sender()?;
        let guard = store.admit(name)?;
        self.pending.fetch_add(1, Ordering::SeqCst);
        let (reply_tx, reply_rx) = channel();
        let work = Work::Store {
            name: name.to_string(),
            x: x.clone(),
            enqueued: Instant::now(),
            guard,
            reply: reply_tx,
        };
        if tx.send(work).is_err() {
            // The dropped Work releases the fair-share slot.
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Err(ServeError::ShuttingDown);
        }
        reply_rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Internal("worker dropped the reply".into())))
    }

    /// Scores one record (`[features]` or `[1, features]`) through the
    /// coalescing front door when [`crate::ServeConfig::coalesce`] is
    /// set: the request queues, joins a deadline-aware micro-batch, and
    /// its row is scattered back — with per-record error isolation and
    /// early [`ServeError::Expired`] shedding when its deadline is
    /// already unmeetable. Without a coalescing config this is an
    /// ordinary single-record [`Supervisor::predict_detailed`].
    pub fn predict_one(&self, x: &Tensor<f32>) -> Result<Served, ServeError> {
        match &self.batcher {
            Some(b) => b.submit(x),
            None => {
                let row = as_record(x)?;
                self.predict_detailed(&row)
            }
        }
    }

    /// Point-in-time backpressure signal from the coalescing front door
    /// (queue depth, brownout flag, execution EWMA, shed count). `None`
    /// when coalescing is not configured.
    pub fn backpressure(&self) -> Option<Backpressure> {
        self.batcher.as_ref().map(|b| b.backpressure())
    }

    /// Snapshot of the queue-wait and end-to-end latency histograms
    /// (p50/p95/p99/max via [`crate::HistogramSnapshot::quantile`]).
    /// Populated by both the coalescing and the direct
    /// [`Supervisor::predict_detailed`] paths.
    pub fn latency(&self) -> LatencyReport {
        self.latency.report()
    }

    /// Chaos hook: submits a request that panics inside a worker. The
    /// caller gets [`ServeError::Internal`]; the worker must survive.
    #[doc(hidden)]
    pub fn inject_worker_panic(&self) -> Result<Served, ServeError> {
        match &self.host {
            Host::Single(_) => self.submit(|reply| Work::PanicPill { reply }),
            Host::Store(_) => {
                // No per-model admission to arbitrate: the pill targets
                // the pool itself.
                let tx = self.sender()?;
                self.pending.fetch_add(1, Ordering::SeqCst);
                let (reply_tx, reply_rx) = channel();
                if tx.send(Work::PanicPill { reply: reply_tx }).is_err() {
                    self.pending.fetch_sub(1, Ordering::SeqCst);
                    return Err(ServeError::ShuttingDown);
                }
                reply_rx.recv().unwrap_or_else(|_| {
                    Err(ServeError::Internal("worker dropped the reply".into()))
                })
            }
        }
    }

    fn sender(&self) -> Result<Sender<Work>, ServeError> {
        lock(&self.job_tx)
            .as_ref()
            .cloned()
            .ok_or(ServeError::ShuttingDown)
    }

    /// Single-model submission path: bounded-queue CAS admission.
    fn submit(
        &self,
        make: impl FnOnce(Sender<Result<Served, ServeError>>) -> Work,
    ) -> Result<Served, ServeError> {
        let Host::Single(model) = &self.host else {
            return Err(ServeError::BadRequest(
                "supervisor hosts a model store; use predict_for(name, x)".into(),
            ));
        };
        let tx = self.sender()?;
        let capacity = model.config().queue_capacity;
        // Compare-and-swap admission: a rejected request never touches
        // the counter, so concurrent rejected bursts cannot transiently
        // inflate the queue depth seen by `SupervisorHealth::queued`.
        let admitted = self
            .pending
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |p| {
                (p < capacity).then_some(p + 1)
            });
        if let Err(full) = admitted {
            model.record_overload();
            return Err(ServeError::Overloaded {
                in_flight: full,
                capacity,
            });
        }
        let (reply_tx, reply_rx) = channel();
        if tx.send(make(reply_tx)).is_err() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Err(ServeError::ShuttingDown);
        }
        reply_rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Internal("worker dropped the reply".into())))
    }

    /// Health snapshot including pool liveness. For a store host the
    /// `model` field aggregates every hosted model (summed stats,
    /// degraded when any model is); per-model detail is in `models`.
    pub fn health(&self) -> SupervisorHealth {
        let workers_alive = lock(&self.workers)
            .iter()
            .filter(|h| !h.is_finished())
            .count();
        let (model, models) = match &self.host {
            Host::Single(m) => (m.health(), Vec::new()),
            Host::Store(s) => {
                let models: Vec<ModelHealth> = s
                    .healths()
                    .into_iter()
                    .map(|(name, version, health)| ModelHealth {
                        name,
                        version,
                        health,
                    })
                    .collect();
                let mut stats = ServingStats::default();
                let mut degraded = false;
                let mut ready = true;
                for mh in &models {
                    stats.absorb(&mh.health.stats);
                    degraded |= mh.health.degraded_mode;
                    ready &= mh.health.ready;
                }
                let aggregate = crate::HealthSnapshot {
                    rungs: Vec::new(),
                    stats,
                    incidents_total: self.incidents.total(),
                    ready,
                    degraded_mode: degraded,
                };
                (aggregate, models)
            }
        };
        SupervisorHealth {
            model,
            models,
            n_workers: self.n_workers,
            workers_alive,
            queued: self.pending.load(Ordering::SeqCst),
            draining: lock(&self.job_tx).is_none(),
        }
    }

    /// Snapshot of the incident log (workers, watchdog, canary, and the
    /// request path all record into the same monotonic sequence).
    pub fn incidents(&self) -> Vec<crate::Incident> {
        self.incidents.snapshot()
    }

    /// Graceful shutdown: refuses new submissions, lets queued requests
    /// finish, joins every worker and the health thread. Idempotent;
    /// also invoked by `Drop`.
    pub fn drain(&self) {
        // The front door closes first: the coalescer refuses new
        // records, flushes everything already queued as final
        // micro-batches (every queued request gets a definitive reply),
        // and exits. This must finish before worker intake closes —
        // the flush batches still need workers to run them.
        if let Some(b) = &self.batcher {
            b.begin_shutdown();
        }
        if let Some(handle) = lock(&self.coalescer_thread).take() {
            let _ = handle.join();
        }
        // Closing the intake disconnects the job channel once queued
        // work is consumed, so workers exit after finishing in-flight
        // requests — never mid-request.
        drop(lock(&self.job_tx).take());
        for handle in lock(&self.workers).drain(..) {
            let _ = handle.join();
        }
        // With every worker gone, dropping our health sender disconnects
        // the health channel and the health thread exits.
        drop(lock(&self.health_tx).take());
        if let Some(handle) = lock(&self.health_thread).take() {
            let _ = handle.join();
        }
        if !self.drained.swap(true, Ordering::SeqCst) {
            self.incidents
                .record(IncidentKind::Drained, None, "supervisor drained");
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Poison-proof lock: every shared structure here is valid on all paths,
/// so a panicking thread must not wedge the pool.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn worker_loop(
    host: &Host,
    incidents: &IncidentLog,
    rx: &Mutex<Receiver<Work>>,
    pending: &AtomicUsize,
    health_tx: &Sender<HealthMsg>,
    batcher: Option<&Batcher>,
    latency: &ServingLatency,
) {
    // In brownout the canary's background replays are suspended: they
    // compete with request traffic for exactly the cycles the overload
    // needs.
    let canary_allowed = |batcher: Option<&Batcher>| match batcher {
        Some(b) => !b.in_brownout(),
        None => true,
    };
    loop {
        // Hold the receiver lock only while dequeuing, never while
        // scoring — other workers keep draining the queue in parallel.
        let work = lock(rx).recv();
        let Ok(work) = work else {
            return; // intake closed and queue drained
        };
        match work {
            Work::Predict { x, enqueued, reply } => {
                let Host::Single(model) = host else {
                    pending.fetch_sub(1, Ordering::SeqCst);
                    let _ = reply.send(Err(ServeError::Internal(
                        "single-model work reached a store supervisor".into(),
                    )));
                    continue;
                };
                latency.queue_wait.record(enqueued.elapsed());
                let outcome = catch_unwind(AssertUnwindSafe(|| model.predict_detailed(&x)));
                let result = match outcome {
                    Ok(r) => r,
                    Err(p) => {
                        let msg = crate::panic_text(p);
                        incidents.record(IncidentKind::WorkerPanic, None, msg.clone());
                        Err(ServeError::Internal(format!("request panicked: {msg}")))
                    }
                };
                if result.is_ok() && canary_allowed(batcher) && model.canary_due() {
                    // Best effort: a closed health channel just means
                    // we are draining.
                    let _ = health_tx.send(HealthMsg::Canary {
                        model: Arc::clone(model),
                        x,
                    });
                }
                latency.end_to_end.record(enqueued.elapsed());
                pending.fetch_sub(1, Ordering::SeqCst);
                let _ = reply.send(result);
            }
            Work::Store {
                name,
                x,
                enqueued,
                guard,
                reply,
            } => {
                let Host::Store(store) = host else {
                    pending.fetch_sub(1, Ordering::SeqCst);
                    let _ = reply.send(Err(ServeError::Internal(
                        "store work reached a single-model supervisor".into(),
                    )));
                    continue;
                };
                latency.queue_wait.record(enqueued.elapsed());
                let outcome = catch_unwind(AssertUnwindSafe(|| store.execute(&name, &x)));
                let result = match outcome {
                    Ok(r) => r,
                    Err(p) => {
                        let msg = crate::panic_text(p);
                        // Attribute the blast to the model that blew up.
                        let tag = store
                            .active_model(&name)
                            .and_then(|m| m.tag().map(str::to_string));
                        incidents.record_for(
                            IncidentKind::WorkerPanic,
                            None,
                            tag.as_deref().or(Some(&name)),
                            msg.clone(),
                        );
                        Err(ServeError::Internal(format!("request panicked: {msg}")))
                    }
                };
                if result.is_ok() {
                    if let Some(model) = store.active_model(&name) {
                        if model.canary_due() {
                            let _ = health_tx.send(HealthMsg::Canary {
                                model,
                                x: x.clone(),
                            });
                        }
                    }
                }
                // The fair-share slot is held until the request fully
                // completes, then released on every path.
                drop(guard);
                latency.end_to_end.record(enqueued.elapsed());
                pending.fetch_sub(1, Ordering::SeqCst);
                let _ = reply.send(result);
            }
            Work::Batch { members } => {
                // The coalescer only produces batches when it exists;
                // `execute` scatters every member's reply itself and
                // returns the executed input when the shared run
                // succeeded (the canary sample).
                let Some(b) = batcher else {
                    for m in members {
                        let _ = m.reply.send(Err(ServeError::Internal(
                            "batch work without a coalescer".into(),
                        )));
                    }
                    continue;
                };
                let executed = b.execute(members, incidents);
                if let (Some(x), Host::Single(model)) = (executed, host) {
                    if canary_allowed(batcher) && model.canary_due() {
                        let _ = health_tx.send(HealthMsg::Canary {
                            model: Arc::clone(model),
                            x,
                        });
                    }
                }
            }
            Work::PanicPill { reply } => {
                let outcome: Result<Result<Served, ServeError>, _> =
                    catch_unwind(AssertUnwindSafe(|| {
                        panic!("chaos: injected worker panic");
                    }));
                let result = match outcome {
                    Ok(r) => r,
                    Err(p) => {
                        let msg = crate::panic_text(p);
                        incidents.record(IncidentKind::WorkerPanic, None, msg.clone());
                        Err(ServeError::Internal(format!("request panicked: {msg}")))
                    }
                };
                pending.fetch_sub(1, Ordering::SeqCst);
                let _ = reply.send(result);
            }
        }
    }
}

/// The health thread: watchdog, canary divergence checks, and recovery
/// probes, multiplexed over every hosted model. Per-model bookkeeping is
/// keyed by the model's `Arc` address; maps are pruned to the live model
/// set each tick, so evicted or replaced versions drop out.
fn health_loop(host: &Host, rx: &Receiver<HealthMsg>) {
    let interval = host.watchdog_interval();
    let mut last_blows: HashMap<usize, [u64; 4]> = HashMap::new();
    // Per model, the most recent sampled input doubles as the probe
    // payload for quarantine recovery.
    let mut stash: HashMap<usize, Tensor<f32>> = HashMap::new();
    // Watchdog ticks run on an absolute schedule so a steady stream of
    // canary samples cannot starve them.
    let mut next_tick = Instant::now() + interval;
    loop {
        let wait = next_tick.saturating_duration_since(Instant::now());
        match rx.recv_timeout(wait) {
            Ok(HealthMsg::Canary { model, x }) => {
                // Collapse any backlog to the newest sample per model:
                // the canary is statistical, and replaying every queued
                // input would let a burst of traffic (or a slow rung)
                // wedge this thread — and with it, drain() — for
                // minutes.
                let mut newest: Vec<(Arc<ServingModel>, Tensor<f32>)> = vec![(model, x)];
                while let Ok(HealthMsg::Canary { model, x }) = rx.try_recv() {
                    match newest.iter_mut().find(|(m, _)| Arc::ptr_eq(m, &model)) {
                        Some(slot) => slot.1 = x,
                        None => newest.push((model, x)),
                    }
                }
                for (model, x) in newest {
                    run_canary(&model, &x, model.config().canary_tolerance);
                    stash.insert(Arc::as_ptr(&model) as usize, x);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        if Instant::now() >= next_tick {
            let models = host.models();
            let live: HashSet<usize> = models.iter().map(|m| Arc::as_ptr(m) as usize).collect();
            last_blows.retain(|k, _| live.contains(k));
            stash.retain(|k, _| live.contains(k));
            for model in models {
                let key = Arc::as_ptr(&model) as usize;
                // A newly discovered model starts from a zero baseline,
                // matching the single-model behavior at spawn (a fresh
                // model's counters are zero anyway).
                let blows = last_blows.entry(key).or_insert([0u64; 4]);
                run_watchdog(&model, blows, model.config().deadline_blow_threshold);
                run_recovery_probes(&model, stash.get(&key), model.config().canary_tolerance);
            }
            next_tick = Instant::now() + interval;
        }
    }
}

/// Replays `x` on every live compiled rung and compares against a fresh
/// reference answer; divergence beyond tolerance quarantines the rung.
/// Incidents go through the model's own log with its attribution tag,
/// so store-hosted models never leak incidents into a neighbor's view.
fn run_canary(model: &ServingModel, x: &Tensor<f32>, tolerance: f32) {
    let Ok(want) = model.reference_output(x) else {
        // No trustworthy baseline; skip this sample.
        return;
    };
    for rung in compiled_rungs(model) {
        let Some(breaker) = model.breaker_for(rung) else {
            continue;
        };
        // Quarantine recovery goes through the probe path, and a rung
        // tripped for *slowness* must not be replayed here — its
        // uncancellable background run would stall this thread (and
        // with it, drain). Failures-opened rungs are still replayed:
        // they fail fast, and catching their silent-corruption flavor
        // (e.g. NaN poisoning behind an inline-detected failure) is the
        // canary's whole job.
        let skip = match breaker.state() {
            crate::BreakerState::Closed { .. } => false,
            crate::BreakerState::Open { reason, .. }
            | crate::BreakerState::HalfOpen { reason, .. } => {
                matches!(reason, OpenReason::Slow | OpenReason::Quarantine)
            }
        };
        if skip {
            continue;
        }
        // Hard failures are the request path's job (retry + breaker);
        // the canary hunts silent corruption, so only a *successful*
        // replay with a wrong answer is actionable here.
        let Ok(got) = model.raw_rung_output(rung, x) else {
            continue;
        };
        let err = crate::divergence(&got, &want);
        // NaN divergence (non-finite replay output) must also trip.
        if err.is_nan() || err > tolerance {
            model.note(
                IncidentKind::CanaryDivergence,
                Some(rung),
                format!("relative error {err:e} exceeds tolerance {tolerance:e}"),
            );
            if breaker.trip(OpenReason::Quarantine, Instant::now()) {
                model.note(
                    IncidentKind::Quarantined,
                    Some(rung),
                    "rung quarantined pending canary-validated probe",
                );
            }
        }
    }
}

/// Trips rungs that blew more than `threshold` deadlines since the last
/// watchdog window.
fn run_watchdog(model: &ServingModel, last_blows: &mut [u64; 4], threshold: u64) {
    let now_blows = model.deadline_blow_counts();
    for rung in compiled_rungs(model) {
        let i = rung.index();
        let delta = now_blows[i].saturating_sub(last_blows[i]);
        if threshold > 0 && delta >= threshold {
            if let Some(breaker) = model.breaker_for(rung) {
                if breaker.trip(OpenReason::Slow, Instant::now()) {
                    model.note(
                        IncidentKind::WatchdogSlowTrip,
                        Some(rung),
                        format!("{delta} deadline blows in one watchdog window"),
                    );
                }
            }
        }
        last_blows[i] = now_blows[i];
    }
}

/// Runs at most one background probe per quarantined rung, re-validating
/// its output against the reference before re-admitting it.
fn run_recovery_probes(model: &ServingModel, stash: Option<&Tensor<f32>>, tolerance: f32) {
    let Some(x) = stash else {
        return; // nothing sampled yet, nothing to probe with
    };
    for rung in compiled_rungs(model) {
        let Some(breaker) = model.breaker_for(rung) else {
            continue;
        };
        if !breaker.is_quarantined() {
            continue;
        }
        if !breaker.try_begin_probe(Instant::now()) {
            continue;
        }
        let healthy = match (model.raw_rung_output(rung, x), model.reference_output(x)) {
            (Ok(got), Ok(want)) => crate::divergence(&got, &want) <= tolerance,
            _ => false,
        };
        if healthy {
            if breaker.on_success(true) {
                model.note(
                    IncidentKind::BreakerClosed,
                    Some(rung),
                    "canary-validated probe passed; quarantine lifted",
                );
            }
        } else {
            breaker.on_failure(true, Instant::now());
        }
    }
}

fn compiled_rungs(model: &ServingModel) -> Vec<Rung> {
    model
        .available_rungs()
        .into_iter()
        .filter(|r| *r != Rung::Reference)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use hb_pipeline::{fit_pipeline, OpSpec, Targets};

    fn fixture() -> (hb_pipeline::Pipeline, Tensor<f32>) {
        let x = Tensor::from_fn(&[30, 3], |i| ((i[0] * 5 + i[1]) % 11) as f32 * 0.2);
        let y = Targets::Classes((0..30).map(|i| (i % 2) as i64).collect());
        let pipe = fit_pipeline(&[OpSpec::StandardScaler, OpSpec::GaussianNb], &x, &y);
        (pipe, x)
    }

    #[test]
    fn pool_serves_and_drains_cleanly() {
        let (pipe, x) = fixture();
        let model = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
        let sup = Supervisor::spawn(model, 2);
        let served = sup.predict_detailed(&x).unwrap();
        assert_eq!(served.output.shape(), &[30, 2]);
        let health = sup.health();
        assert_eq!(health.workers_alive, 2);
        assert!(!health.draining);
        sup.drain();
        assert!(matches!(sup.predict(&x), Err(ServeError::ShuttingDown)));
        assert!(sup.health().draining);
        // Idempotent.
        sup.drain();
        assert_eq!(
            sup.incidents()
                .iter()
                .filter(|i| i.kind == IncidentKind::Drained)
                .count(),
            1
        );
    }

    #[test]
    fn worker_panic_kills_the_request_not_the_worker() {
        let (pipe, x) = fixture();
        let model = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
        let sup = Supervisor::spawn(model, 1);
        let err = sup.inject_worker_panic().unwrap_err();
        assert!(matches!(err, ServeError::Internal(_)));
        // The lone worker survived and still serves.
        assert!(sup.predict(&x).is_ok());
        assert_eq!(sup.health().workers_alive, 1);
        assert!(sup
            .incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::WorkerPanic));
    }
}
