//! Isolation forests (scikit-learn `IsolationForest`, listed among the
//! paper's supported models in Table 1).
//!
//! Each isolation tree partitions a small sample with uniformly random
//! feature/threshold splits; anomalies isolate in few splits. The fitted
//! forest is an ordinary [`TreeEnsemble`] whose leaves store the
//! *estimated path length* `depth + c(n_leaf)`, so Hummingbird compiles
//! it with the standard tree strategies (average of scalar leaves) and
//! the anomaly score `s(x) = 2^(−E[h(x)]/c(ψ))` is a scalar link on top.

use rand::prelude::*;

use hb_tensor::Tensor;

use crate::ensemble::{Aggregation, TreeEnsemble};
use crate::tree::Tree;

/// Average unsuccessful-search path length of a BST with `n` nodes — the
/// `c(n)` normalizer from the isolation-forest paper.
pub fn average_path_length(n: usize) -> f32 {
    if n <= 1 {
        return 0.0;
    }
    let nf = n as f64;
    // Harmonic number via the asymptotic expansion.
    let h = (nf - 1.0).ln() + 0.577_215_664_901_532_9;
    (2.0 * h - 2.0 * (nf - 1.0) / nf) as f32
}

/// Isolation-forest training settings.
#[derive(Debug, Clone)]
pub struct IsolationConfig {
    /// Number of isolation trees.
    pub n_trees: usize,
    /// Sub-sample size per tree (ψ; the classic default is 256).
    pub sample_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IsolationConfig {
    fn default() -> Self {
        IsolationConfig {
            n_trees: 100,
            sample_size: 256,
            seed: 0,
        }
    }
}

/// A fitted isolation forest.
#[derive(Debug, Clone)]
pub struct IsolationForest {
    /// The path-length ensemble (compile-ready).
    pub ensemble: TreeEnsemble,
    /// `c(ψ)` normalizer for the anomaly score.
    pub c_norm: f32,
}

/// Recursively grows one isolation tree over `rows`.
fn grow(
    x: &[f32],
    d: usize,
    rows: &mut [u32],
    depth: usize,
    max_depth: usize,
    rng: &mut StdRng,
    tree: &mut Tree,
) -> i32 {
    let id = tree.left.len();
    tree.left.push(-1);
    tree.right.push(-1);
    tree.feature.push(0);
    tree.threshold.push(0.0);
    tree.values.push(0.0);
    if rows.len() <= 1 || depth >= max_depth {
        tree.values[id] = depth as f32 + average_path_length(rows.len());
        return id as i32;
    }
    // Random feature with a non-degenerate range, random threshold.
    for _attempt in 0..8 {
        let f = rng.gen_range(0..d);
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &r in rows.iter() {
            let v = x[r as usize * d + f];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi <= lo || !(hi - lo).is_finite() {
            continue;
        }
        let thr = rng.gen_range(lo..hi);
        let (mut l, mut r): (Vec<u32>, Vec<u32>) =
            rows.iter().partition(|&&row| x[row as usize * d + f] < thr);
        if l.is_empty() || r.is_empty() {
            continue;
        }
        let li = grow(x, d, &mut l, depth + 1, max_depth, rng, tree);
        let ri = grow(x, d, &mut r, depth + 1, max_depth, rng, tree);
        tree.left[id] = li;
        tree.right[id] = ri;
        tree.feature[id] = f as u32;
        tree.threshold[id] = thr;
        return id as i32;
    }
    // All sampled features were constant: terminal node.
    tree.values[id] = depth as f32 + average_path_length(rows.len());
    id as i32
}

impl IsolationForest {
    /// Fits an isolation forest on `x [n, d]` (unsupervised).
    pub fn fit(x: &Tensor<f32>, config: IsolationConfig) -> IsolationForest {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        assert!(n > 0 && d > 0, "empty training matrix");
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let psi = config.sample_size.clamp(2, n);
        let max_depth = (psi as f64).log2().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            let mut rows: Vec<u32> = rand::seq::index::sample(&mut rng, n, psi)
                .iter()
                .map(|v| v as u32)
                .collect();
            let mut tree = Tree {
                left: vec![],
                right: vec![],
                feature: vec![],
                threshold: vec![],
                values: vec![],
                value_width: 1,
            };
            grow(xv, d, &mut rows, 0, max_depth, &mut rng, &mut tree);
            trees.push(tree);
        }
        IsolationForest {
            ensemble: TreeEnsemble {
                trees,
                n_features: d,
                n_classes: 1,
                agg: Aggregation::AverageValue,
            },
            c_norm: average_path_length(psi),
        }
    }

    /// Mean estimated path length per record, `[n]`.
    pub fn path_length(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.ensemble.predict(x)
    }

    /// Anomaly scores in (0, 1): `2^(−E[h]/c(ψ))`; higher = more
    /// anomalous.
    pub fn score(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let c = self.c_norm.max(1e-6);
        self.path_length(x)
            .map(move |h| (-(h / c) * std::f32::consts::LN_2).exp())
    }
}

// JSON artifact impls (replacing the former serde derives).
hb_json::json_struct!(IsolationForest { ensemble, c_norm });

#[cfg(test)]
mod tests {
    use super::*;

    /// A tight cluster plus a handful of far outliers.
    fn data_with_outliers() -> (Tensor<f32>, usize) {
        let n = 300;
        let x = Tensor::from_fn(&[n, 2], |i| {
            if i[0] >= n - 5 {
                // Outliers far from the cluster.
                25.0 + (i[0] % 3) as f32 * 3.0
            } else {
                ((i[0] * 17 + i[1] * 7) % 13) as f32 * 0.1
            }
        });
        (x, n)
    }

    #[test]
    fn outliers_score_higher() {
        let (x, n) = data_with_outliers();
        let f = IsolationForest::fit(
            &x,
            IsolationConfig {
                n_trees: 50,
                ..Default::default()
            },
        );
        let s = f.score(&x).to_vec();
        let inlier_mean: f32 = s[..n - 5].iter().sum::<f32>() / (n - 5) as f32;
        let outlier_mean: f32 = s[n - 5..].iter().sum::<f32>() / 5.0;
        assert!(
            outlier_mean > inlier_mean + 0.1,
            "outliers {outlier_mean:.3} vs inliers {inlier_mean:.3}"
        );
    }

    #[test]
    fn scores_are_probability_like() {
        let (x, _) = data_with_outliers();
        let f = IsolationForest::fit(
            &x,
            IsolationConfig {
                n_trees: 20,
                ..Default::default()
            },
        );
        assert!(f.score(&x).iter().all(|v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn c_normalizer_matches_formula() {
        // c(2) = 2·(H(1)) − 2·(1/2) = 2·0.5772… − 1 ≈ 0.154? No: H(1)=1…
        // Spot-check against the closed form for a couple of sizes.
        assert_eq!(average_path_length(1), 0.0);
        let c256 = average_path_length(256);
        assert!(c256 > 9.0 && c256 < 12.0, "c(256) = {c256}");
        assert!(average_path_length(1000) > c256);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, _) = data_with_outliers();
        let cfg = IsolationConfig {
            n_trees: 5,
            seed: 9,
            ..Default::default()
        };
        let a = IsolationForest::fit(&x, cfg.clone());
        let b = IsolationForest::fit(&x, cfg);
        assert_eq!(a.ensemble, b.ensemble);
    }

    #[test]
    fn ensemble_is_standard_average_value() {
        let (x, _) = data_with_outliers();
        let f = IsolationForest::fit(
            &x,
            IsolationConfig {
                n_trees: 8,
                ..Default::default()
            },
        );
        assert_eq!(f.ensemble.agg, Aggregation::AverageValue);
        assert_eq!(f.ensemble.n_outputs(), 1);
        // Path lengths are positive and bounded by depth + c.
        let h = f.path_length(&x);
        assert!(h.iter().all(|v| v > 0.0 && v < 30.0));
    }
}
