//! Traditional-ML substrate for the Hummingbird reproduction.
//!
//! The paper compiles *trained* scikit-learn / XGBoost / LightGBM models;
//! this crate supplies those models from scratch: training algorithms,
//! fitted-parameter structures, and **imperative reference scorers** that
//! play the role of the paper's baselines:
//!
//! * [`baselines::SklearnLikeForest`] — per-row recursive pointer-chasing
//!   traversal parallelized over rows (the scikit-learn baseline profile:
//!   good batch throughput, poor single-record latency);
//! * [`baselines::OnnxLikeForest`] — flattened node arrays with an
//!   iterative single-core loop (the ONNX-ML baseline profile: best
//!   single-record latency, flat batch scaling).
//!
//! Model families: decision trees ([`tree`]), random forests ([`forest`]),
//! gradient boosting with depth-wise ("XGBoost-like") and leaf-wise
//! ("LightGBM-like") growth ([`gbdt`]), linear models ([`linear`]), kernel
//! SVMs ([`svm`]), naive Bayes ([`naive_bayes`]), an MLP ([`mlp`]), and
//! the featurizers of paper Table 1 ([`featurize`], [`select`],
//! [`decomp`]).

// Pure-safe-Rust policy: every crate in this workspace is 100% safe
// Rust; see DESIGN.md ("Unsafe-code policy").
#![forbid(unsafe_code)]

pub mod baselines;
pub mod decomp;
pub mod ensemble;
pub mod featurize;
pub mod forest;
pub mod gbdt;
pub mod isolation;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod naive_bayes;
pub mod select;
pub mod svm;
pub mod tree;

pub use tree::{Growth, Tree, TreeConfig};

/// Prediction task of a model or dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Binary classification (labels 0/1).
    Binary,
    /// Multiclass classification with the given class count.
    Multiclass(usize),
    /// Scalar regression.
    Regression,
}

impl Task {
    /// Number of classes (1 for regression).
    pub fn n_classes(&self) -> usize {
        match self {
            Task::Binary => 2,
            Task::Multiclass(c) => *c,
            Task::Regression => 1,
        }
    }
}
