//! Naive Bayes classifiers: Gaussian, Bernoulli, and Multinomial.
//!
//! All three reduce at scoring time to affine forms over the input (or a
//! binarized/identity transform of it), which is what makes them cheap to
//! compile: the Hummingbird converter turns each into at most three GEMMs
//! plus a softmax — see the Gaussian expansion in DESIGN.md mirroring the
//! paper's "avoid large intermediates" technique (§4.2).

use hb_tensor::Tensor;

/// Fitted Gaussian naive Bayes.
///
/// Scoring uses the expansion
/// `log p(x|c) = Σ_d [−½log(2πσ²) − (x−μ)²/(2σ²)]`, rewritten as
/// `x² · A_c + x · B_c + const_c` so it evaluates with two GEMMs instead
/// of an `n×d×C` broadcast intermediate.
#[derive(Debug, Clone)]
pub struct GaussianNb {
    /// Class means `[C, d]`.
    pub theta: Tensor<f32>,
    /// Class variances `[C, d]` (smoothed).
    pub var: Tensor<f32>,
    /// Log class priors `[C]`.
    pub class_log_prior: Vec<f32>,
}

impl GaussianNb {
    /// Fits means/variances per class with variance smoothing.
    pub fn fit(x: &Tensor<f32>, y: &[i64]) -> GaussianNb {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        assert_eq!(n, y.len(), "x/y length mismatch");
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        let c = (*y.iter().max().expect("empty labels") as usize) + 1;
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let mut mean = vec![0.0f64; c * d];
        let mut count = vec![0.0f64; c];
        for r in 0..n {
            let cls = y[r] as usize;
            count[cls] += 1.0;
            for f in 0..d {
                mean[cls * d + f] += xv[r * d + f] as f64;
            }
        }
        for cls in 0..c {
            for f in 0..d {
                mean[cls * d + f] /= count[cls].max(1.0);
            }
        }
        let mut var = vec![0.0f64; c * d];
        for r in 0..n {
            let cls = y[r] as usize;
            for f in 0..d {
                let diff = xv[r * d + f] as f64 - mean[cls * d + f];
                var[cls * d + f] += diff * diff;
            }
        }
        // scikit-learn smooths with 1e-9 × the largest feature variance.
        let mut max_var = 0.0f64;
        for cls in 0..c {
            for f in 0..d {
                var[cls * d + f] /= count[cls].max(1.0);
                max_var = max_var.max(var[cls * d + f]);
            }
        }
        let eps = (1e-9 * max_var).max(1e-12);
        var.iter_mut().for_each(|v| *v += eps);
        let class_log_prior: Vec<f32> = count
            .iter()
            .map(|&k| ((k.max(1e-12)) / n as f64).ln() as f32)
            .collect();
        GaussianNb {
            theta: Tensor::from_vec(mean.iter().map(|&v| v as f32).collect(), &[c, d]),
            var: Tensor::from_vec(var.iter().map(|&v| v as f32).collect(), &[c, d]),
            class_log_prior,
        }
    }

    /// Joint log-likelihood `[n, C]` (imperative reference).
    pub fn joint_log_likelihood(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        let c = self.class_log_prior.len();
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let th = self.theta.to_contiguous();
        let thv = th.as_slice();
        let va = self.var.to_contiguous();
        let vav = va.as_slice();
        let mut out = vec![0.0f32; n * c];
        for r in 0..n {
            for cls in 0..c {
                let mut ll = self.class_log_prior[cls];
                for f in 0..d {
                    let v = vav[cls * d + f];
                    let diff = xv[r * d + f] - thv[cls * d + f];
                    ll += -0.5 * (2.0 * std::f32::consts::PI * v).ln() - diff * diff / (2.0 * v);
                }
                out[r * c + cls] = ll;
            }
        }
        Tensor::from_vec(out, &[n, c])
    }

    /// Class probabilities `[n, C]`.
    pub fn predict_proba(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.joint_log_likelihood(x).softmax_axis(1)
    }

    /// Hard predictions `[n]`.
    pub fn predict(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.joint_log_likelihood(x)
            .argmax_axis(1, false)
            .map(|v| v as f32)
    }
}

/// Fitted Bernoulli naive Bayes (features binarized at `binarize`).
#[derive(Debug, Clone)]
pub struct BernoulliNb {
    /// `log p(f=1|c)` `[C, d]`.
    pub feature_log_prob: Tensor<f32>,
    /// `log(1 − p(f=1|c))` `[C, d]`.
    pub neg_log_prob: Tensor<f32>,
    /// Log class priors `[C]`.
    pub class_log_prior: Vec<f32>,
    /// Binarization threshold applied to inputs.
    pub binarize: f32,
}

impl BernoulliNb {
    /// Fits with Laplace smoothing `alpha`.
    pub fn fit(x: &Tensor<f32>, y: &[i64], alpha: f32, binarize: f32) -> BernoulliNb {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        let c = (*y.iter().max().expect("empty labels") as usize) + 1;
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let mut ones = vec![0.0f64; c * d];
        let mut count = vec![0.0f64; c];
        for r in 0..n {
            let cls = y[r] as usize;
            count[cls] += 1.0;
            for f in 0..d {
                if xv[r * d + f] > binarize {
                    ones[cls * d + f] += 1.0;
                }
            }
        }
        let mut logp = vec![0.0f32; c * d];
        let mut logq = vec![0.0f32; c * d];
        for cls in 0..c {
            for f in 0..d {
                let p = (ones[cls * d + f] + alpha as f64) / (count[cls] + 2.0 * alpha as f64);
                logp[cls * d + f] = (p.ln()) as f32;
                logq[cls * d + f] = ((1.0 - p).ln()) as f32;
            }
        }
        let class_log_prior: Vec<f32> = count
            .iter()
            .map(|&k| ((k.max(1e-12)) / n as f64).ln() as f32)
            .collect();
        BernoulliNb {
            feature_log_prob: Tensor::from_vec(logp, &[c, d]),
            neg_log_prob: Tensor::from_vec(logq, &[c, d]),
            class_log_prior,
            binarize,
        }
    }

    /// Joint log-likelihood `[n, C]`.
    pub fn joint_log_likelihood(&self, x: &Tensor<f32>) -> Tensor<f32> {
        // b · (logp − logq)ᵀ + Σ logq + prior, with b the binarized input.
        let b = x.map(|v| f32::from(v > self.binarize));
        let delta = self.feature_log_prob.sub(&self.neg_log_prob);
        let base = self.neg_log_prob.sum_axis(1, false); // [C]
        let prior = Tensor::from_vec(self.class_log_prior.clone(), &[self.class_log_prior.len()]);
        let bias = base.add(&prior).reshape(&[1, self.class_log_prior.len()]);
        b.matmul(&delta.transpose(0, 1)).add(&bias)
    }

    /// Class probabilities `[n, C]`.
    pub fn predict_proba(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.joint_log_likelihood(x).softmax_axis(1)
    }

    /// Hard predictions `[n]`.
    pub fn predict(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.joint_log_likelihood(x)
            .argmax_axis(1, false)
            .map(|v| v as f32)
    }
}

/// Fitted multinomial naive Bayes (count features).
#[derive(Debug, Clone)]
pub struct MultinomialNb {
    /// `log p(f|c)` `[C, d]`.
    pub feature_log_prob: Tensor<f32>,
    /// Log class priors `[C]`.
    pub class_log_prior: Vec<f32>,
}

impl MultinomialNb {
    /// Fits with Laplace smoothing `alpha`.
    pub fn fit(x: &Tensor<f32>, y: &[i64], alpha: f32) -> MultinomialNb {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        let c = (*y.iter().max().expect("empty labels") as usize) + 1;
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let mut counts = vec![0.0f64; c * d];
        let mut class_n = vec![0.0f64; c];
        for r in 0..n {
            let cls = y[r] as usize;
            class_n[cls] += 1.0;
            for f in 0..d {
                counts[cls * d + f] += xv[r * d + f].max(0.0) as f64;
            }
        }
        let mut logp = vec![0.0f32; c * d];
        for cls in 0..c {
            let total: f64 =
                counts[cls * d..(cls + 1) * d].iter().sum::<f64>() + alpha as f64 * d as f64;
            for f in 0..d {
                logp[cls * d + f] = (((counts[cls * d + f] + alpha as f64) / total).ln()) as f32;
            }
        }
        let n_total = n as f64;
        let class_log_prior: Vec<f32> = class_n
            .iter()
            .map(|&k| ((k.max(1e-12)) / n_total).ln() as f32)
            .collect();
        MultinomialNb {
            feature_log_prob: Tensor::from_vec(logp, &[c, d]),
            class_log_prior,
        }
    }

    /// Joint log-likelihood `[n, C]` — a single GEMM plus prior.
    pub fn joint_log_likelihood(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let prior = Tensor::from_vec(
            self.class_log_prior.clone(),
            &[1, self.class_log_prior.len()],
        );
        x.matmul(&self.feature_log_prob.transpose(0, 1)).add(&prior)
    }

    /// Class probabilities `[n, C]`.
    pub fn predict_proba(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.joint_log_likelihood(x).softmax_axis(1)
    }

    /// Hard predictions `[n]`.
    pub fn predict(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.joint_log_likelihood(x)
            .argmax_axis(1, false)
            .map(|v| v as f32)
    }
}

// JSON artifact impls (replacing the former serde derives).
hb_json::json_struct!(GaussianNb {
    theta,
    var,
    class_log_prior
});
hb_json::json_struct!(BernoulliNb {
    feature_log_prob,
    neg_log_prob,
    class_log_prior,
    binarize
});
hb_json::json_struct!(MultinomialNb {
    feature_log_prob,
    class_log_prior
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn gaussian_blobs(n: usize) -> (Tensor<f32>, Vec<i64>) {
        let x = Tensor::from_fn(&[n, 3], |i| {
            let c = (i[0] % 2) as f32;
            c * 4.0 + ((i[0] * 13 + i[1] * 7) % 10) as f32 * 0.1
        });
        let y: Vec<i64> = (0..n).map(|i| (i % 2) as i64).collect();
        (x, y)
    }

    #[test]
    fn gaussian_nb_separates_blobs() {
        let (x, y) = gaussian_blobs(200);
        let m = GaussianNb::fit(&x, &y);
        assert!(accuracy(&m.predict(&x), &y) > 0.98);
        let p = m.predict_proba(&x);
        assert!((p.get(&[0, 0]) + p.get(&[0, 1]) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn gaussian_nb_priors_sum_to_one_in_prob_space() {
        let (x, y) = gaussian_blobs(100);
        let m = GaussianNb::fit(&x, &y);
        let total: f32 = m.class_log_prior.iter().map(|v| v.exp()).sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn bernoulli_nb_on_binary_features() {
        // Class 1 rows have feature 0 set; class 0 rows feature 1.
        let n = 100;
        let x = Tensor::from_fn(
            &[n, 2],
            |i| {
                if i[0] % 2 == (1 - i[1]) % 2 {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let y: Vec<i64> = (0..n).map(|i| (i % 2) as i64).collect();
        let m = BernoulliNb::fit(&x, &y, 1.0, 0.5);
        assert!(accuracy(&m.predict(&x), &y) > 0.98);
    }

    #[test]
    fn multinomial_nb_on_count_features() {
        let n = 100;
        // Class c emits high counts in feature c.
        let x = Tensor::from_fn(&[n, 3], |i| {
            let c = i[0] % 3;
            if i[1] == c {
                10.0 + (i[0] % 5) as f32
            } else {
                1.0
            }
        });
        let y: Vec<i64> = (0..n).map(|i| (i % 3) as i64).collect();
        let m = MultinomialNb::fit(&x, &y, 1.0);
        assert!(accuracy(&m.predict(&x), &y) > 0.98);
    }

    #[test]
    fn bernoulli_ll_matches_naive_loop() {
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let y = vec![0i64, 1];
        let m = BernoulliNb::fit(&x, &y, 1.0, 0.5);
        let ll = m.joint_log_likelihood(&x);
        // Naive per-element recomputation.
        let lp = m.feature_log_prob.to_vec();
        let lq = m.neg_log_prob.to_vec();
        for r in 0..2 {
            for c in 0..2 {
                let mut want = m.class_log_prior[c];
                for f in 0..2 {
                    let b = x.get(&[r, f]) > 0.5;
                    want += if b { lp[c * 2 + f] } else { lq[c * 2 + f] };
                }
                assert!((ll.get(&[r, c]) - want).abs() < 1e-5);
            }
        }
    }
}
