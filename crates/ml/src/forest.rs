//! Random forests (scikit-learn `RandomForestClassifier`/`Regressor`
//! stand-ins).
//!
//! Trees are trained on bootstrap samples with per-split feature
//! subsampling, producing the mixed balanced/unbalanced structures the
//! paper observes for scikit-learn forests (§6.1.1).

use rand::prelude::*;
use rayon::prelude::*;

use hb_tensor::Tensor;

use crate::ensemble::{Aggregation, TreeEnsemble};
use crate::tree::{
    train_classification_tree, train_regression_tree, Binner, GradPair, Growth, TreeConfig,
};

/// Forest training hyper-parameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Minimum records per leaf.
    pub min_samples_leaf: usize,
    /// Features sampled per split (0 = √d, the scikit-learn default).
    pub max_features: usize,
    /// Histogram bins per feature.
    pub n_bins: usize,
    /// Draw bootstrap samples per tree.
    pub bootstrap: bool,
    /// ExtraTrees-style extremely randomized splits (one random
    /// threshold per candidate feature).
    pub extra_trees: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            max_depth: 8,
            min_samples_leaf: 1,
            max_features: 0,
            n_bins: 64,
            bootstrap: true,
            extra_trees: false,
            seed: 0,
        }
    }
}

impl ForestConfig {
    fn tree_config(&self, n_features: usize) -> TreeConfig {
        let max_features = if self.max_features == 0 {
            ((n_features as f64).sqrt().ceil() as usize).max(1)
        } else {
            self.max_features
        };
        TreeConfig {
            max_depth: self.max_depth,
            min_samples_leaf: self.min_samples_leaf,
            max_features,
            n_bins: self.n_bins,
            growth: Growth::DepthWise,
            lambda: 0.0,
            random_splits: self.extra_trees,
            ..TreeConfig::default()
        }
    }

    fn bootstrap_rows(&self, n: usize, rng: &mut StdRng) -> Vec<u32> {
        if self.bootstrap {
            (0..n).map(|_| rng.gen_range(0..n) as u32).collect()
        } else {
            (0..n as u32).collect()
        }
    }
}

/// A fitted random-forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    /// The fitted ensemble (average of per-tree class distributions).
    pub ensemble: TreeEnsemble,
    config: ForestConfig,
}

impl RandomForestClassifier {
    /// Creates an untrained forest with the given configuration.
    pub fn new(config: ForestConfig) -> RandomForestClassifier {
        RandomForestClassifier {
            ensemble: TreeEnsemble {
                trees: vec![],
                n_features: 0,
                n_classes: 0,
                agg: Aggregation::AverageProba,
            },
            config,
        }
    }

    /// Trains on `x` (`[n, d]`) and integer labels `y` (`0..C`).
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` disagree on length or `y` is empty.
    pub fn fit(mut self, x: &Tensor<f32>, y: &[i64]) -> RandomForestClassifier {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        assert_eq!(n, y.len(), "x/y length mismatch");
        assert!(n > 0, "empty training set");
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        let n_classes = (*y.iter().max().expect("empty labels") as usize) + 1;
        let binner = Binner::fit(x, self.config.n_bins);
        let binned = binner.bin_matrix(x);
        let cfg = self.config.tree_config(d);
        let seed = self.config.seed;
        let trees: Vec<_> = (0..self.config.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 7919));
                let rows = self.config.bootstrap_rows(n, &mut rng);
                train_classification_tree(
                    &binned,
                    n,
                    d,
                    &binner,
                    y,
                    n_classes,
                    &cfg,
                    &mut rng,
                    Some(&rows),
                )
            })
            .collect();
        self.ensemble = TreeEnsemble {
            trees,
            n_features: d,
            n_classes,
            agg: Aggregation::AverageProba,
        };
        self
    }

    /// Class probabilities `[n, C]` via the reference imperative scorer.
    pub fn predict_proba(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.ensemble.predict_proba(x)
    }

    /// Hard class predictions.
    pub fn predict(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.ensemble.predict(x)
    }
}

/// A fitted random-forest regressor.
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    /// The fitted ensemble (average of per-tree scalar leaves).
    pub ensemble: TreeEnsemble,
    config: ForestConfig,
}

impl RandomForestRegressor {
    /// Creates an untrained forest with the given configuration.
    pub fn new(config: ForestConfig) -> RandomForestRegressor {
        RandomForestRegressor {
            ensemble: TreeEnsemble {
                trees: vec![],
                n_features: 0,
                n_classes: 1,
                agg: Aggregation::AverageValue,
            },
            config,
        }
    }

    /// Trains on `x` (`[n, d]`) and real-valued targets `y`.
    pub fn fit(mut self, x: &Tensor<f32>, y: &[f32]) -> RandomForestRegressor {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        assert_eq!(n, y.len(), "x/y length mismatch");
        let binner = Binner::fit(x, self.config.n_bins);
        let binned = binner.bin_matrix(x);
        let cfg = self.config.tree_config(d);
        let targets = GradPair {
            grad: y.to_vec(),
            hess: vec![1.0; n],
        };
        let seed = self.config.seed;
        let trees: Vec<_> = (0..self.config.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 6271));
                let rows = self.config.bootstrap_rows(n, &mut rng);
                train_regression_tree(
                    &binned,
                    n,
                    d,
                    &binner,
                    &targets,
                    &cfg,
                    1.0,
                    &mut rng,
                    Some(&rows),
                )
            })
            .collect();
        self.ensemble = TreeEnsemble {
            trees,
            n_features: d,
            n_classes: 1,
            agg: Aggregation::AverageValue,
        };
        self
    }

    /// Predicted values `[n]`.
    pub fn predict(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.ensemble.predict(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn blobs(n: usize, seed: u64) -> (Tensor<f32>, Vec<i64>) {
        // Two well-separated Gaussian-ish blobs in 4 dims.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n * 4);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let c = (i % 2) as i64;
            for _ in 0..4 {
                let base = if c == 0 { -1.0 } else { 1.0 };
                xs.push(base + rng.gen_range(-0.8..0.8));
            }
            ys.push(c);
        }
        (Tensor::from_vec(xs, &[n, 4]), ys)
    }

    #[test]
    fn forest_separates_blobs() {
        let (x, y) = blobs(300, 11);
        let f = RandomForestClassifier::new(ForestConfig {
            n_trees: 20,
            max_depth: 5,
            ..ForestConfig::default()
        })
        .fit(&x, &y);
        let pred = f.predict(&x);
        assert!(accuracy(&pred, &y) > 0.95);
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let (x, y) = blobs(100, 3);
        let f = RandomForestClassifier::new(ForestConfig {
            n_trees: 5,
            max_depth: 3,
            ..ForestConfig::default()
        })
        .fit(&x, &y);
        let p = f.predict_proba(&x);
        for r in 0..x.shape()[0] {
            let s = p.get(&[r, 0]) + p.get(&[r, 1]);
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn forest_is_deterministic_given_seed() {
        let (x, y) = blobs(100, 5);
        let mk = || {
            RandomForestClassifier::new(ForestConfig {
                n_trees: 4,
                max_depth: 4,
                seed: 42,
                ..ForestConfig::default()
            })
            .fit(&x, &y)
        };
        assert_eq!(mk().ensemble, mk().ensemble);
    }

    #[test]
    fn regressor_fits_linear_target() {
        let n = 400;
        let x = Tensor::from_fn(&[n, 2], |i| ((i[0] * 7 + i[1] * 3) % 50) as f32 / 50.0);
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let y: Vec<f32> = (0..n).map(|r| 2.0 * xv[r * 2] - xv[r * 2 + 1]).collect();
        let f = RandomForestRegressor::new(ForestConfig {
            n_trees: 30,
            max_depth: 6,
            bootstrap: true,
            ..ForestConfig::default()
        })
        .fit(&x, &y);
        let pred = f.predict(&x);
        let mse: f32 = pred
            .to_vec()
            .iter()
            .zip(y.iter())
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f32>()
            / n as f32;
        assert!(mse < 0.05, "mse {mse}");
    }

    #[test]
    fn extra_trees_variant_learns_and_differs() {
        let (x, y) = blobs(300, 13);
        let base = ForestConfig {
            n_trees: 15,
            max_depth: 5,
            ..ForestConfig::default()
        };
        let plain = RandomForestClassifier::new(base.clone()).fit(&x, &y);
        let extra = RandomForestClassifier::new(ForestConfig {
            extra_trees: true,
            ..base
        })
        .fit(&x, &y);
        assert!(accuracy(&extra.predict(&x), &y) > 0.9);
        // Random thresholds must actually change the fitted trees.
        assert_ne!(plain.ensemble, extra.ensemble);
    }

    #[test]
    fn multiclass_forest() {
        let n = 300;
        let x = Tensor::from_fn(&[n, 1], |i| (i[0] % 3) as f32 + 0.001 * i[0] as f32);
        let y: Vec<i64> = (0..n).map(|i| (i % 3) as i64).collect();
        let f = RandomForestClassifier::new(ForestConfig {
            n_trees: 10,
            max_depth: 4,
            bootstrap: false,
            max_features: 1,
            ..ForestConfig::default()
        })
        .fit(&x, &y);
        assert_eq!(f.ensemble.n_classes, 3);
        let pred = f.predict(&x);
        assert!(accuracy(&pred, &y) > 0.9);
    }
}
