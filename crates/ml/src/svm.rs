//! Kernel support-vector machines: `SVC` and `NuSVC` stand-ins trained
//! with a simplified SMO solver.
//!
//! The fitted form — support vectors, dual coefficients, intercept, RBF
//! `gamma` — is what the Hummingbird converter compiles into the
//! quadratic-expansion distance-matrix graph of paper §4.2
//! (`|x|² + |sv|² − 2·x·svᵀ`, then `exp(−γ·d)` and a GEMM against the
//! dual coefficients).

use hb_tensor::Tensor;

/// Kernel of an SVC model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Radial basis function with bandwidth `gamma`.
    Rbf {
        /// Bandwidth.
        gamma: f32,
    },
    /// Plain dot product.
    Linear,
}

/// SMO training settings.
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Box constraint.
    pub c: f32,
    /// Kernel (`gamma <= 0` means `1/d` "scale"-like default).
    pub kernel: Kernel,
    /// KKT tolerance.
    pub tol: f32,
    /// Passes without alpha changes before stopping.
    pub max_passes: usize,
    /// Hard iteration cap.
    pub max_iter: usize,
    /// RNG seed for partner selection.
    pub seed: u64,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            c: 1.0,
            kernel: Kernel::Rbf { gamma: 0.0 },
            tol: 1e-3,
            max_passes: 5,
            max_iter: 20_000,
            seed: 0,
        }
    }
}

/// A fitted binary kernel SVM.
#[derive(Debug, Clone)]
pub struct SvcModel {
    /// Support vectors `[m, d]`.
    pub support_vectors: Tensor<f32>,
    /// `alpha_i * y_i` per support vector.
    pub dual_coef: Vec<f32>,
    /// Intercept.
    pub intercept: f32,
    /// Kernel with resolved gamma.
    pub kernel: Kernel,
}

impl SvcModel {
    /// Decision values `[n]`.
    pub fn decision(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let k = self.kernel_matrix(x);
        let a = Tensor::from_vec(self.dual_coef.clone(), &[self.dual_coef.len(), 1]);
        k.matmul(&a)
            .add_scalar(self.intercept)
            .reshape(&[x.shape()[0]])
    }

    /// Hard 0/1 predictions `[n]`.
    pub fn predict(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.decision(x).map(|v| f32::from(v > 0.0))
    }

    /// Kernel matrix `[n, m]` between `x` and the support vectors,
    /// computed with the §4.2 quadratic-expansion trick.
    pub fn kernel_matrix(&self, x: &Tensor<f32>) -> Tensor<f32> {
        match self.kernel {
            Kernel::Linear => x.matmul(&self.support_vectors.transpose(0, 1)),
            Kernel::Rbf { gamma } => x.sqdist(&self.support_vectors).mul_scalar(-gamma).exp_t(),
        }
    }
}

/// Simplified-SMO trainer for binary `SVC`.
#[derive(Debug, Clone, Default)]
pub struct Svc {
    /// Training settings.
    pub config: SvcConfig,
}

impl Svc {
    /// Creates a trainer with the given settings.
    pub fn new(config: SvcConfig) -> Svc {
        Svc { config }
    }

    /// Trains on binary labels (0/1).
    ///
    /// # Panics
    ///
    /// Panics if labels are not binary.
    pub fn fit(&self, x: &Tensor<f32>, y: &[i64]) -> SvcModel {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        assert_eq!(n, y.len(), "x/y length mismatch");
        assert!(
            y.iter().all(|&v| v == 0 || v == 1),
            "SVC expects binary 0/1 labels"
        );
        let kernel = match self.config.kernel {
            Kernel::Rbf { gamma } if gamma <= 0.0 => Kernel::Rbf {
                gamma: 1.0 / d as f32,
            },
            k => k,
        };
        let ys: Vec<f32> = y.iter().map(|&v| if v == 1 { 1.0 } else { -1.0 }).collect();
        let xs = x.to_contiguous();
        let xv = xs.as_slice();

        // Precompute the kernel matrix (training sets are laptop-scale).
        let kij = |i: usize, j: usize| -> f32 {
            let (a, b) = (&xv[i * d..(i + 1) * d], &xv[j * d..(j + 1) * d]);
            match kernel {
                Kernel::Linear => a.iter().zip(b.iter()).map(|(p, q)| p * q).sum(),
                Kernel::Rbf { gamma } => {
                    let sq: f32 = a.iter().zip(b.iter()).map(|(p, q)| (p - q) * (p - q)).sum();
                    (-gamma * sq).exp()
                }
            }
        };
        let mut k = vec![0.0f32; n * n];
        for i in 0..n {
            for j in i..n {
                let v = kij(i, j);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }

        let mut alpha = vec![0.0f32; n];
        let mut b = 0.0f32;
        let c = self.config.c;
        let tol = self.config.tol;
        let f = |alpha: &[f32], b: f32, k: &[f32], i: usize| -> f32 {
            let mut s = b;
            for j in 0..n {
                if alpha[j] != 0.0 {
                    s += alpha[j] * ys[j] * k[i * n + j];
                }
            }
            s
        };

        let mut rng_state = self
            .config
            .seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        let mut next_rand = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };

        let mut passes = 0usize;
        let mut iters = 0usize;
        while passes < self.config.max_passes && iters < self.config.max_iter {
            let mut changed = 0usize;
            for i in 0..n {
                iters += 1;
                let ei = f(&alpha, b, &k, i) - ys[i];
                if (ys[i] * ei < -tol && alpha[i] < c) || (ys[i] * ei > tol && alpha[i] > 0.0) {
                    // Pick a random partner j != i.
                    let mut j = (next_rand() as usize) % (n - 1);
                    if j >= i {
                        j += 1;
                    }
                    let ej = f(&alpha, b, &k, j) - ys[j];
                    let (ai_old, aj_old) = (alpha[i], alpha[j]);
                    let (lo, hi) = if ys[i] != ys[j] {
                        ((aj_old - ai_old).max(0.0), (c + aj_old - ai_old).min(c))
                    } else {
                        ((ai_old + aj_old - c).max(0.0), (ai_old + aj_old).min(c))
                    };
                    if lo >= hi {
                        continue;
                    }
                    let eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
                    if eta >= 0.0 {
                        continue;
                    }
                    let mut aj = aj_old - ys[j] * (ei - ej) / eta;
                    aj = aj.clamp(lo, hi);
                    if (aj - aj_old).abs() < 1e-5 {
                        continue;
                    }
                    let ai = ai_old + ys[i] * ys[j] * (aj_old - aj);
                    alpha[i] = ai;
                    alpha[j] = aj;
                    let b1 = b
                        - ei
                        - ys[i] * (ai - ai_old) * k[i * n + i]
                        - ys[j] * (aj - aj_old) * k[i * n + j];
                    let b2 = b
                        - ej
                        - ys[i] * (ai - ai_old) * k[i * n + j]
                        - ys[j] * (aj - aj_old) * k[j * n + j];
                    b = if ai > 0.0 && ai < c {
                        b1
                    } else if aj > 0.0 && aj < c {
                        b2
                    } else {
                        (b1 + b2) / 2.0
                    };
                    changed += 1;
                }
            }
            passes = if changed == 0 { passes + 1 } else { 0 };
        }

        // Keep only support vectors.
        let sv_idx: Vec<usize> = (0..n).filter(|&i| alpha[i] > 1e-8).collect();
        let mut sv = Vec::with_capacity(sv_idx.len() * d);
        let mut dual = Vec::with_capacity(sv_idx.len());
        for &i in &sv_idx {
            sv.extend_from_slice(&xv[i * d..(i + 1) * d]);
            dual.push(alpha[i] * ys[i]);
        }
        // Degenerate case (no SVs): fall back to the prior.
        if sv_idx.is_empty() {
            sv.extend(std::iter::repeat_n(0.0, d));
            dual.push(0.0);
        }
        SvcModel {
            support_vectors: Tensor::from_vec(sv, &[dual.len(), d]),
            dual_coef: dual,
            intercept: b,
            kernel,
        }
    }
}

/// `NuSVC` stand-in: re-parameterizes `nu` into an equivalent box
/// constraint and reuses the SMO trainer.
///
/// This is an approximation of the true ν-SVM program (documented in
/// DESIGN.md): `C ≈ 1 / (ν · n)` reproduces the support-vector-fraction
/// semantics closely enough for the paper's operator benchmarks.
#[derive(Debug, Clone)]
pub struct NuSvc {
    /// Fraction-of-margin-errors parameter in (0, 1].
    pub nu: f32,
    /// Base settings (the `c` field is ignored).
    pub config: SvcConfig,
}

impl Default for NuSvc {
    fn default() -> Self {
        NuSvc {
            nu: 0.5,
            config: SvcConfig::default(),
        }
    }
}

impl NuSvc {
    /// Trains on binary labels (0/1).
    pub fn fit(&self, x: &Tensor<f32>, y: &[i64]) -> SvcModel {
        let n = x.shape()[0].max(1);
        let c = 1.0 / (self.nu.clamp(1e-3, 1.0) * n as f32) * n as f32;
        Svc::new(SvcConfig {
            c,
            ..self.config.clone()
        })
        .fit(x, y)
    }
}

// JSON artifact impls (replacing the former serde derives).
hb_json::json_enum!(Kernel { Rbf { gamma }, Linear });
hb_json::json_struct!(SvcModel {
    support_vectors,
    dual_coef,
    intercept,
    kernel
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn rings(n: usize) -> (Tensor<f32>, Vec<i64>) {
        // Class 1 = inner disc, class 0 = outer ring: not linearly
        // separable, needs the RBF kernel.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let angle = i as f32 * 0.7;
            let r = if i % 2 == 0 { 0.5 } else { 2.0 };
            xs.push(r * angle.cos());
            xs.push(r * angle.sin());
            ys.push(i64::from(i % 2 == 0));
        }
        (Tensor::from_vec(xs, &[n, 2]), ys)
    }

    #[test]
    fn rbf_svc_separates_rings() {
        let (x, y) = rings(120);
        let m = Svc::new(SvcConfig {
            c: 5.0,
            ..SvcConfig::default()
        })
        .fit(&x, &y);
        let acc = accuracy(&m.predict(&x), &y);
        assert!(acc > 0.95, "accuracy {acc}, {} SVs", m.dual_coef.len());
    }

    #[test]
    fn linear_kernel_on_separable_data() {
        let n = 80;
        let x = Tensor::from_fn(&[n, 2], |i| {
            (i[0] as f32 / n as f32) * 4.0 - 2.0 + i[1] as f32
        });
        let xs = x.to_contiguous();
        let xv = xs.as_slice().to_vec();
        let y: Vec<i64> = (0..n)
            .map(|r| i64::from(xv[r * 2] + xv[r * 2 + 1] > 0.0))
            .collect();
        let m = Svc::new(SvcConfig {
            kernel: Kernel::Linear,
            c: 1.0,
            ..Default::default()
        })
        .fit(&x, &y);
        assert!(accuracy(&m.predict(&x), &y) > 0.9);
    }

    #[test]
    fn kernel_matrix_diag_is_one_for_rbf_on_self() {
        let (x, y) = rings(40);
        let m = Svc::default().fit(&x, &y);
        let k = m.kernel_matrix(&m.support_vectors.clone());
        for i in 0..k.shape()[0] {
            assert!((k.get(&[i, i]) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn nusvc_trains_and_separates() {
        let (x, y) = rings(100);
        let m = NuSvc {
            nu: 0.3,
            ..NuSvc::default()
        }
        .fit(&x, &y);
        assert!(accuracy(&m.predict(&x), &y) > 0.9);
    }

    #[test]
    fn support_vectors_are_subset_of_training_data() {
        let (x, y) = rings(60);
        let m = Svc::default().fit(&x, &y);
        assert!(m.support_vectors.shape()[0] <= 60);
        assert_eq!(m.support_vectors.shape()[0], m.dual_coef.len());
    }
}
