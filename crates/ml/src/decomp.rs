//! Linear dimensionality reduction: `PCA` and `TruncatedSVD`.
//!
//! Both fit an orthogonal component matrix; scoring is a single GEMM
//! (after mean-centering for PCA), which is why the paper lists them among
//! the straightforwardly-compilable algebraic operators. The
//! eigendecomposition uses a cyclic Jacobi sweep on the covariance matrix
//! — adequate for the feature counts in the paper's operator benchmarks.

use hb_tensor::Tensor;

/// Symmetric eigendecomposition by cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors in rows,
/// sorted by descending eigenvalue.
pub fn jacobi_eigh(a: &Tensor<f32>, sweeps: usize) -> (Vec<f32>, Tensor<f32>) {
    let d = a.shape()[0];
    assert_eq!(a.shape(), &[d, d], "jacobi_eigh expects a square matrix");
    let mut m: Vec<f64> = a.iter().map(|v| v as f64).collect();
    let mut v = vec![0.0f64; d * d];
    for i in 0..d {
        v[i * d + i] = 1.0;
    }
    for _ in 0..sweeps {
        let mut off = 0.0f64;
        for p in 0..d {
            for q in (p + 1)..d {
                off += m[p * d + q] * m[p * d + q];
            }
        }
        if off < 1e-20 {
            break;
        }
        for p in 0..d {
            for q in (p + 1)..d {
                let apq = m[p * d + q];
                if apq.abs() < 1e-18 {
                    continue;
                }
                let app = m[p * d + p];
                let aqq = m[q * d + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q.
                for k in 0..d {
                    let mkp = m[k * d + p];
                    let mkq = m[k * d + q];
                    m[k * d + p] = c * mkp - s * mkq;
                    m[k * d + q] = s * mkp + c * mkq;
                }
                for k in 0..d {
                    let mpk = m[p * d + k];
                    let mqk = m[q * d + k];
                    m[p * d + k] = c * mpk - s * mqk;
                    m[q * d + k] = s * mpk + c * mqk;
                }
                for k in 0..d {
                    let vkp = v[k * d + p];
                    let vkq = v[k * d + q];
                    v[k * d + p] = c * vkp - s * vkq;
                    v[k * d + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Extract and sort by descending eigenvalue.
    let mut pairs: Vec<(f64, usize)> = (0..d).map(|i| (m[i * d + i], i)).collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let eigvals: Vec<f32> = pairs.iter().map(|&(e, _)| e as f32).collect();
    let mut vecs = vec![0.0f32; d * d];
    for (row, &(_, col)) in pairs.iter().enumerate() {
        for k in 0..d {
            vecs[row * d + k] = v[k * d + col] as f32;
        }
    }
    (eigvals, Tensor::from_vec(vecs, &[d, d]))
}

/// Fitted `PCA`: mean-centering followed by projection onto the top
/// components.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-feature training means.
    pub mean: Vec<f32>,
    /// Principal components `[k, d]` (rows).
    pub components: Tensor<f32>,
    /// Explained variance per component.
    pub explained_variance: Vec<f32>,
}

impl Pca {
    /// Fits `k` components on `x [n, d]`.
    pub fn fit(x: &Tensor<f32>, k: usize) -> Pca {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        let k = k.min(d);
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let mut mean = vec![0.0f64; d];
        for r in 0..n {
            for f in 0..d {
                mean[f] += xv[r * d + f] as f64;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n.max(1) as f64);
        // Covariance (d × d).
        let mut cov = vec![0.0f64; d * d];
        for r in 0..n {
            for i in 0..d {
                let vi = xv[r * d + i] as f64 - mean[i];
                for j in i..d {
                    cov[i * d + j] += vi * (xv[r * d + j] as f64 - mean[j]);
                }
            }
        }
        let denom = (n.saturating_sub(1)).max(1) as f64;
        for i in 0..d {
            for j in i..d {
                cov[i * d + j] /= denom;
                cov[j * d + i] = cov[i * d + j];
            }
        }
        let cov_t = Tensor::from_vec(cov.iter().map(|&v| v as f32).collect(), &[d, d]);
        let (eigvals, eigvecs) = jacobi_eigh(&cov_t, 30);
        Pca {
            mean: mean.iter().map(|&m| m as f32).collect(),
            components: eigvecs.slice(0, 0, k).to_contiguous(),
            explained_variance: eigvals[..k].to_vec(),
        }
    }

    /// Projects `x` into component space `[n, k]`.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let m = Tensor::from_vec(self.mean.clone(), &[1, self.mean.len()]);
        x.sub(&m).matmul(&self.components.transpose(0, 1))
    }
}

/// Fitted `TruncatedSVD`: projection without centering.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Right singular vectors `[k, d]`.
    pub components: Tensor<f32>,
}

impl TruncatedSvd {
    /// Fits `k` components via eigendecomposition of `XᵀX`.
    pub fn fit(x: &Tensor<f32>, k: usize) -> TruncatedSvd {
        let d = x.shape()[1];
        let k = k.min(d);
        let gram = x.transpose(0, 1).to_contiguous().matmul(x);
        let (_, eigvecs) = jacobi_eigh(&gram, 30);
        TruncatedSvd {
            components: eigvecs.slice(0, 0, k).to_contiguous(),
        }
    }

    /// Projects `x` into component space `[n, k]`.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        x.matmul(&self.components.transpose(0, 1))
    }
}

// JSON artifact impls (replacing the former serde derives).
hb_json::json_struct!(Pca {
    mean,
    components,
    explained_variance
});
hb_json::json_struct!(TruncatedSvd { components });
hb_json::json_struct!(KernelPca {
    x_fit,
    alphas,
    k_fit_rows,
    k_fit_all,
    gamma
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_diagonalizes_symmetric_matrix() {
        let a = Tensor::from_vec(vec![2.0, 1.0, 1.0, 2.0], &[2, 2]);
        let (vals, vecs) = jacobi_eigh(&a, 20);
        assert!((vals[0] - 3.0).abs() < 1e-4);
        assert!((vals[1] - 1.0).abs() < 1e-4);
        // Eigenvector rows are unit length and orthogonal.
        let v = vecs.to_vec();
        let n0 = (v[0] * v[0] + v[1] * v[1]).sqrt();
        let dot = v[0] * v[2] + v[1] * v[3];
        assert!((n0 - 1.0).abs() < 1e-4);
        assert!(dot.abs() < 1e-4);
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Data varies mostly along (1, 1) / sqrt(2).
        let n = 200;
        let x = Tensor::from_fn(&[n, 2], |i| {
            let t = i[0] as f32 / n as f32 * 10.0 - 5.0;
            let noise = ((i[0] * 7 + i[1] * 13) % 11) as f32 * 0.01;
            if i[1] == 0 {
                t + noise
            } else {
                t - noise
            }
        });
        let pca = Pca::fit(&x, 1);
        let c = pca.components.to_vec();
        let ratio = (c[0] / c[1]).abs();
        assert!((ratio - 1.0).abs() < 0.1, "components {c:?}");
        assert!(pca.explained_variance[0] > 1.0);
    }

    #[test]
    fn pca_transform_centers_data() {
        let x = Tensor::from_fn(&[50, 3], |i| (i[0] as f32) * (i[1] + 1) as f32 * 0.1);
        let pca = Pca::fit(&x, 2);
        let t = pca.transform(&x);
        assert_eq!(t.shape(), &[50, 2]);
        // Projected data is mean-zero.
        for c in 0..2 {
            let mean: f32 = (0..50).map(|r| t.get(&[r, c])).sum::<f32>() / 50.0;
            assert!(mean.abs() < 1e-3, "component {c} mean {mean}");
        }
    }

    #[test]
    fn truncated_svd_projects_without_centering() {
        let x = Tensor::from_fn(&[30, 4], |i| 1.0 + (i[0] * (i[1] + 1)) as f32 * 0.05);
        let svd = TruncatedSvd::fit(&x, 2);
        let t = svd.transform(&x);
        assert_eq!(t.shape(), &[30, 2]);
        // First component captures the dominant (positive) direction, so
        // projections should be far from zero on average.
        let mean: f32 = (0..30).map(|r| t.get(&[r, 0])).sum::<f32>() / 30.0;
        assert!(mean.abs() > 0.5);
    }

    #[test]
    fn pca_reconstruction_error_small_for_full_rank() {
        let x = Tensor::from_fn(&[40, 3], |i| ((i[0] * 3 + i[1] * 5) % 17) as f32 * 0.3);
        let pca = Pca::fit(&x, 3);
        let t = pca.transform(&x);
        // Reconstruct: t @ components + mean.
        let recon = t
            .matmul(&pca.components)
            .add(&Tensor::from_vec(pca.mean.clone(), &[1, 3]));
        let err: f32 = recon
            .to_vec()
            .iter()
            .zip(x.to_vec().iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(err < 1e-3, "max reconstruction error {err}");
    }
}

/// Fitted `KernelPCA` with an RBF kernel.
///
/// Scoring computes the kernel row against the stored training sample via
/// the §4.2 quadratic-expansion distance trick, double-centers it with
/// the fitted statistics, and projects onto the leading eigenvectors —
/// all GEMM/element-wise operators, like the other Table 1 algebraic
/// featurizers.
#[derive(Debug, Clone)]
pub struct KernelPca {
    /// Training sample the kernel is evaluated against `[m, d]`.
    pub x_fit: Tensor<f32>,
    /// Scaled eigenvectors `[m, k]` (`v / sqrt(λ)`).
    pub alphas: Tensor<f32>,
    /// Column means of the training kernel matrix `[m]`.
    pub k_fit_rows: Vec<f32>,
    /// Grand mean of the training kernel matrix.
    pub k_fit_all: f32,
    /// RBF bandwidth.
    pub gamma: f32,
}

impl KernelPca {
    /// Fits `k` components with bandwidth `gamma` (`<= 0` = `1/d`).
    ///
    /// Training cost is `O(m²)` in the fit-sample size; callers
    /// sub-sample large datasets first (scikit-learn users do the same).
    pub fn fit(x: &Tensor<f32>, k: usize, gamma: f32) -> KernelPca {
        let (m, d) = (x.shape()[0], x.shape()[1]);
        let gamma = if gamma > 0.0 { gamma } else { 1.0 / d as f32 };
        let k = k.min(m);
        // Kernel matrix and its double-centering statistics.
        let km = x.sqdist(x).mul_scalar(-gamma).exp_t();
        let row_means = km.mean_axis(0, false).to_vec(); // [m]
        let grand = row_means.iter().sum::<f32>() / m as f32;
        let mut centered = km.to_vec();
        for i in 0..m {
            for j in 0..m {
                centered[i * m + j] += grand - row_means[i] - row_means[j];
            }
        }
        let (eigvals, eigvecs) = jacobi_eigh(&Tensor::from_vec(centered, &[m, m]), 30);
        // alphas[:, c] = v_c / sqrt(λ_c); degenerate eigenvalues are
        // dropped to zero columns.
        let mut alphas = vec![0.0f32; m * k];
        let ev = eigvecs.to_vec();
        for c in 0..k {
            let lam = eigvals[c].max(0.0);
            if lam > 1e-8 {
                let inv = 1.0 / lam.sqrt();
                for i in 0..m {
                    alphas[i * k + c] = ev[c * m + i] * inv;
                }
            }
        }
        KernelPca {
            x_fit: x.to_contiguous(),
            alphas: Tensor::from_vec(alphas, &[m, k]),
            k_fit_rows: row_means,
            k_fit_all: grand,
            gamma,
        }
    }

    /// Projects `x` into kernel component space `[n, k]`.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let km = x.sqdist(&self.x_fit).mul_scalar(-self.gamma).exp_t(); // [n, m]
                                                                        // Double-center against the training statistics:
                                                                        // K'ij = Kij − mean_j(K_fit) − mean_i(K_row) + grand.
        let fit_means = Tensor::from_vec(self.k_fit_rows.clone(), &[1, self.k_fit_rows.len()]);
        let row_means = km.mean_axis(1, true); // [n, 1]
        let centered = km
            .sub(&fit_means)
            .sub(&row_means)
            .add_scalar(self.k_fit_all);
        centered.matmul(&self.alphas)
    }
}

#[cfg(test)]
mod kernel_pca_tests {
    use super::*;

    fn rings(n: usize) -> Tensor<f32> {
        Tensor::from_fn(&[n, 2], |i| {
            let angle = i[0] as f32 * 0.61;
            let r = if i[0] % 2 == 0 { 0.5 } else { 2.0 };
            if i[1] == 0 {
                r * angle.cos()
            } else {
                r * angle.sin()
            }
        })
    }

    #[test]
    fn kernel_pca_separates_rings_linearly() {
        // Concentric rings are not linearly separable; the first RBF
        // kernel component should separate inner from outer.
        let x = rings(80);
        let kp = KernelPca::fit(&x, 2, 0.5);
        let t = kp.transform(&x);
        assert_eq!(t.shape(), &[80, 2]);
        let inner: Vec<f32> = (0..80).step_by(2).map(|r| t.get(&[r, 0])).collect();
        let outer: Vec<f32> = (1..80).step_by(2).map(|r| t.get(&[r, 0])).collect();
        let mi = inner.iter().sum::<f32>() / inner.len() as f32;
        let mo = outer.iter().sum::<f32>() / outer.len() as f32;
        // Means of the first component differ strongly between rings.
        let spread = inner
            .iter()
            .map(|v| (v - mi).abs())
            .chain(outer.iter().map(|v| (v - mo).abs()))
            .fold(0.0f32, f32::max);
        assert!(
            (mi - mo).abs() > spread * 0.8,
            "component 1 does not separate rings"
        );
    }

    #[test]
    fn kernel_pca_training_projection_is_centered() {
        let x = rings(40);
        let kp = KernelPca::fit(&x, 3, 0.5);
        let t = kp.transform(&x);
        for c in 0..3 {
            let mean: f32 = (0..40).map(|r| t.get(&[r, c])).sum::<f32>() / 40.0;
            assert!(mean.abs() < 1e-3, "component {c} mean {mean}");
        }
    }

    #[test]
    fn default_gamma_is_one_over_d() {
        let x = rings(20);
        let kp = KernelPca::fit(&x, 2, 0.0);
        assert!((kp.gamma - 0.5).abs() < 1e-6);
    }
}
