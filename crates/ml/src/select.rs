//! Feature selectors: `SelectKBest`, `SelectPercentile`, and
//! `VarianceThreshold`.
//!
//! Selectors are central to the paper's §5.2 optimizations: at scoring
//! time a selector is just an `index_select`, and it can be *pushed down*
//! through upstream featurizers to avoid computing discarded features at
//! all.

use hb_tensor::Tensor;

/// ANOVA F-scores of each feature against integer class labels
/// (scikit-learn's `f_classif`).
pub fn f_classif(x: &Tensor<f32>, y: &[i64]) -> Vec<f64> {
    let (n, d) = (x.shape()[0], x.shape()[1]);
    assert_eq!(n, y.len(), "x/y length mismatch");
    let c = (*y.iter().max().unwrap_or(&0) as usize) + 1;
    let xs = x.to_contiguous();
    let xv = xs.as_slice();
    let mut counts = vec![0.0f64; c];
    for &cls in y {
        counts[cls as usize] += 1.0;
    }
    let mut scores = vec![0.0f64; d];
    for f in 0..d {
        let mut class_sum = vec![0.0f64; c];
        let mut total = 0.0f64;
        let mut total_sq = 0.0f64;
        for r in 0..n {
            let v = xv[r * d + f] as f64;
            class_sum[y[r] as usize] += v;
            total += v;
            total_sq += v * v;
        }
        let grand_mean = total / n as f64;
        let mut ss_between = 0.0f64;
        for cls in 0..c {
            if counts[cls] > 0.0 {
                let m = class_sum[cls] / counts[cls];
                ss_between += counts[cls] * (m - grand_mean) * (m - grand_mean);
            }
        }
        let ss_total = total_sq - n as f64 * grand_mean * grand_mean;
        let ss_within = (ss_total - ss_between).max(0.0);
        let df_between = (c - 1).max(1) as f64;
        let df_within = (n.saturating_sub(c)).max(1) as f64;
        let msb = ss_between / df_between;
        let msw = ss_within / df_within;
        scores[f] = if msw > 0.0 {
            msb / msw
        } else if msb > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
    }
    scores
}

/// A fitted feature selector: the surviving column indices, ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSelector {
    /// Columns kept, in ascending input order.
    pub selected: Vec<usize>,
    /// Input dimensionality at fit time.
    pub n_features_in: usize,
}

impl FeatureSelector {
    /// Keeps the `k` columns with the highest scores (`SelectKBest`).
    pub fn k_best(x: &Tensor<f32>, y: &[i64], k: usize) -> FeatureSelector {
        let scores = f_classif(x, y);
        Self::from_scores(&scores, k.min(scores.len()))
    }

    /// Keeps the top `percentile`% of columns (`SelectPercentile`).
    pub fn percentile(x: &Tensor<f32>, y: &[i64], percentile: usize) -> FeatureSelector {
        let scores = f_classif(x, y);
        let k = ((scores.len() * percentile.clamp(1, 100)) / 100).max(1);
        Self::from_scores(&scores, k)
    }

    /// Keeps columns whose variance exceeds `threshold`
    /// (`VarianceThreshold`).
    pub fn variance_threshold(x: &Tensor<f32>, threshold: f64) -> FeatureSelector {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let mut selected = Vec::new();
        for f in 0..d {
            let mut sum = 0.0f64;
            let mut sq = 0.0f64;
            for r in 0..n {
                let v = xv[r * d + f] as f64;
                sum += v;
                sq += v * v;
            }
            let mean = sum / n as f64;
            let var = sq / n as f64 - mean * mean;
            if var > threshold {
                selected.push(f);
            }
        }
        FeatureSelector {
            selected,
            n_features_in: d,
        }
    }

    /// Builds a selector keeping given columns directly (used when the
    /// optimizer *injects* a selector, §5.2).
    pub fn from_indices(selected: Vec<usize>, n_features_in: usize) -> FeatureSelector {
        FeatureSelector {
            selected,
            n_features_in,
        }
    }

    fn from_scores(scores: &[f64], k: usize) -> FeatureSelector {
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let mut selected: Vec<usize> = order.into_iter().take(k).collect();
        selected.sort_unstable();
        FeatureSelector {
            selected,
            n_features_in: scores.len(),
        }
    }

    /// Applies the selection.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        x.index_select(1, &self.selected)
    }
}

// JSON artifact impls (replacing the former serde derives).
hb_json::json_struct!(FeatureSelector {
    selected,
    n_features_in
});

#[cfg(test)]
mod tests {
    use super::*;

    /// Feature 0 predicts the label; feature 1 is constant; feature 2 is
    /// label-independent noise.
    fn data() -> (Tensor<f32>, Vec<i64>) {
        let n = 100;
        let x = Tensor::from_fn(&[n, 3], |i| match i[1] {
            0 => (i[0] % 2) as f32 * 5.0 + (i[0] % 7) as f32 * 0.01,
            1 => 3.0,
            _ => ((i[0] * 37) % 11) as f32,
        });
        let y: Vec<i64> = (0..n).map(|i| (i % 2) as i64).collect();
        (x, y)
    }

    #[test]
    fn f_classif_ranks_informative_feature_first() {
        let (x, y) = data();
        let s = f_classif(&x, &y);
        assert!(s[0] > s[2], "scores {s:?}");
        assert!(s[0] > s[1]);
    }

    #[test]
    fn k_best_keeps_top_k_sorted() {
        let (x, y) = data();
        let sel = FeatureSelector::k_best(&x, &y, 1);
        assert_eq!(sel.selected, vec![0]);
        let sel2 = FeatureSelector::k_best(&x, &y, 2);
        assert_eq!(sel2.selected.len(), 2);
        assert!(sel2.selected.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn percentile_scales_with_width() {
        let (x, y) = data();
        let sel = FeatureSelector::percentile(&x, &y, 34);
        assert_eq!(sel.selected.len(), 1);
        let sel_all = FeatureSelector::percentile(&x, &y, 100);
        assert_eq!(sel_all.selected.len(), 3);
    }

    #[test]
    fn variance_threshold_drops_constants() {
        let (x, _) = data();
        let sel = FeatureSelector::variance_threshold(&x, 1e-6);
        assert!(
            !sel.selected.contains(&1),
            "constant column kept: {:?}",
            sel.selected
        );
    }

    #[test]
    fn transform_selects_columns() {
        let (x, y) = data();
        let sel = FeatureSelector::k_best(&x, &y, 1);
        let t = sel.transform(&x);
        assert_eq!(t.shape(), &[100, 1]);
        assert_eq!(t.get(&[0, 0]), x.get(&[0, 0]));
    }

    #[test]
    fn k_larger_than_d_keeps_all() {
        let (x, y) = data();
        let sel = FeatureSelector::k_best(&x, &y, 10);
        assert_eq!(sel.selected, vec![0, 1, 2]);
    }
}
