//! A one-hidden-layer multilayer perceptron (scikit-learn
//! `MLPClassifier` stand-in) trained with mini-batch SGD + momentum.
//!
//! The fitted parameters — two weight matrices and biases with a ReLU in
//! between and a softmax head — compile trivially to tensor operators
//! (GEMM → ReLU → GEMM → Softmax), which is why the paper's Table 11 MLP
//! rows favor the tensor runtimes.

use rand::prelude::*;

use hb_tensor::Tensor;

/// MLP training settings.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 32,
            epochs: 60,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            seed: 0,
        }
    }
}

/// A fitted MLP classifier.
#[derive(Debug, Clone)]
pub struct MlpModel {
    /// Input→hidden weights `[h, d]`.
    pub w1: Tensor<f32>,
    /// Hidden biases `[h]`.
    pub b1: Vec<f32>,
    /// Hidden→output weights `[C, h]`.
    pub w2: Tensor<f32>,
    /// Output biases `[C]`.
    pub b2: Vec<f32>,
    /// Number of classes.
    pub n_classes: usize,
}

impl MlpModel {
    /// Class probabilities `[n, C]`.
    pub fn predict_proba(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let b1 = Tensor::from_vec(self.b1.clone(), &[1, self.b1.len()]);
        let b2 = Tensor::from_vec(self.b2.clone(), &[1, self.b2.len()]);
        let h = x.matmul(&self.w1.transpose(0, 1)).add(&b1).relu();
        h.matmul(&self.w2.transpose(0, 1)).add(&b2).softmax_axis(1)
    }

    /// Hard predictions `[n]`.
    pub fn predict(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.predict_proba(x)
            .argmax_axis(1, false)
            .map(|v| v as f32)
    }
}

/// Mini-batch SGD trainer for [`MlpModel`].
#[derive(Debug, Clone, Default)]
pub struct MlpClassifier {
    /// Training settings.
    pub config: MlpConfig,
}

impl MlpClassifier {
    /// Creates a trainer with the given settings.
    pub fn new(config: MlpConfig) -> MlpClassifier {
        MlpClassifier { config }
    }

    /// Trains on labels `0..C`.
    pub fn fit(&self, x: &Tensor<f32>, y: &[i64]) -> MlpModel {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        assert_eq!(n, y.len(), "x/y length mismatch");
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        let c = ((*y.iter().max().expect("empty labels") as usize) + 1).max(2);
        let h = self.config.hidden;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut w1 = vec![0.0f32; h * d];
        let mut w2 = vec![0.0f32; c * h];
        let scale1 = (2.0 / d as f32).sqrt();
        let scale2 = (2.0 / h as f32).sqrt();
        w1.iter_mut()
            .for_each(|v| *v = rng.gen_range(-scale1..scale1));
        w2.iter_mut()
            .for_each(|v| *v = rng.gen_range(-scale2..scale2));
        let mut b1 = vec![0.0f32; h];
        let mut b2 = vec![0.0f32; c];
        let (mut vw1, mut vb1) = (vec![0.0f32; h * d], vec![0.0f32; h]);
        let (mut vw2, mut vb2) = (vec![0.0f32; c * h], vec![0.0f32; c]);

        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let mut order: Vec<usize> = (0..n).collect();
        let bs = self.config.batch_size.max(1);
        let mut hid = vec![0.0f32; h];
        let mut probs = vec![0.0f32; c];
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(bs) {
                let (mut gw1, mut gb1) = (vec![0.0f32; h * d], vec![0.0f32; h]);
                let (mut gw2, mut gb2) = (vec![0.0f32; c * h], vec![0.0f32; c]);
                for &r in chunk {
                    let row = &xv[r * d..(r + 1) * d];
                    // Forward.
                    for j in 0..h {
                        let z = b1[j]
                            + row
                                .iter()
                                .zip(&w1[j * d..(j + 1) * d])
                                .map(|(a, b)| a * b)
                                .sum::<f32>();
                        hid[j] = z.max(0.0);
                    }
                    let mut m = f32::NEG_INFINITY;
                    for k in 0..c {
                        probs[k] = b2[k]
                            + hid
                                .iter()
                                .zip(&w2[k * h..(k + 1) * h])
                                .map(|(a, b)| a * b)
                                .sum::<f32>();
                        m = m.max(probs[k]);
                    }
                    let mut s = 0.0f32;
                    for p in probs.iter_mut().take(c) {
                        *p = (*p - m).exp();
                        s += *p;
                    }
                    probs.iter_mut().for_each(|p| *p /= s);
                    // Backward.
                    for k in 0..c {
                        let err = probs[k] - f32::from(y[r] as usize == k);
                        gb2[k] += err;
                        for j in 0..h {
                            gw2[k * h + j] += err * hid[j];
                        }
                    }
                    for j in 0..h {
                        if hid[j] <= 0.0 {
                            continue;
                        }
                        let mut g = 0.0f32;
                        for k in 0..c {
                            g += (probs[k] - f32::from(y[r] as usize == k)) * w2[k * h + j];
                        }
                        gb1[j] += g;
                        for (gv, &v) in gw1[j * d..(j + 1) * d].iter_mut().zip(row.iter()) {
                            *gv += g * v;
                        }
                    }
                }
                // Momentum update.
                let lr = self.config.lr / chunk.len() as f32;
                let mo = self.config.momentum;
                for (set, grad, vel) in [(&mut w1, &gw1, &mut vw1), (&mut w2, &gw2, &mut vw2)] {
                    for i in 0..set.len() {
                        vel[i] = mo * vel[i] - lr * grad[i];
                        set[i] += vel[i];
                    }
                }
                for (set, grad, vel) in [(&mut b1, &gb1, &mut vb1), (&mut b2, &gb2, &mut vb2)] {
                    for i in 0..set.len() {
                        vel[i] = mo * vel[i] - lr * grad[i];
                        set[i] += vel[i];
                    }
                }
            }
        }
        MlpModel {
            w1: Tensor::from_vec(w1, &[h, d]),
            b1,
            w2: Tensor::from_vec(w2, &[c, h]),
            b2,
            n_classes: c,
        }
    }
}

// JSON artifact impls (replacing the former serde derives).
hb_json::json_struct!(MlpModel {
    w1,
    b1,
    w2,
    b2,
    n_classes
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn mlp_learns_xor() {
        let n = 200;
        let x = Tensor::from_fn(&[n, 2], |i| {
            let a = (i[0] % 2) as f32;
            let b = ((i[0] / 2) % 2) as f32;
            if i[1] == 0 {
                a + 0.01 * (i[0] % 7) as f32
            } else {
                b + 0.01 * (i[0] % 5) as f32
            }
        });
        let y: Vec<i64> = (0..n)
            .map(|i| (((i % 2) ^ ((i / 2) % 2)) != 0) as i64)
            .collect();
        let m = MlpClassifier::new(MlpConfig {
            epochs: 150,
            hidden: 16,
            ..Default::default()
        })
        .fit(&x, &y);
        let acc = accuracy(&m.predict(&x), &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn proba_normalizes() {
        let x = Tensor::from_fn(&[50, 3], |i| (i[0] * 3 + i[1]) as f32 * 0.01);
        let y: Vec<i64> = (0..50).map(|i| (i % 3) as i64).collect();
        let m = MlpClassifier::new(MlpConfig {
            epochs: 5,
            ..Default::default()
        })
        .fit(&x, &y);
        let p = m.predict_proba(&x);
        assert_eq!(p.shape(), &[50, 3]);
        let s = p.get(&[0, 0]) + p.get(&[0, 1]) + p.get(&[0, 2]);
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = Tensor::from_fn(&[40, 2], |i| (i[0] + i[1]) as f32 * 0.1);
        let y: Vec<i64> = (0..40).map(|i| (i % 2) as i64).collect();
        let cfg = MlpConfig {
            epochs: 3,
            seed: 5,
            ..Default::default()
        };
        let a = MlpClassifier::new(cfg.clone()).fit(&x, &y);
        let b = MlpClassifier::new(cfg).fit(&x, &y);
        assert_eq!(a.w1.to_vec(), b.w1.to_vec());
        assert_eq!(a.w2.to_vec(), b.w2.to_vec());
    }
}
