//! Featurizers of paper Table 1: scalers, binarizer, normalizer,
//! imputers, discretizer, polynomial features, one-hot and label
//! encoders, and a feature hasher.
//!
//! Every featurizer has a `fit` constructor and an imperative `transform`
//! that serves as the scikit-learn baseline; the Hummingbird converters
//! in `hb-core` compile the same fitted state into tensor operators.

use hb_tensor::Tensor;

/// Norm used by [`Normalizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Norm {
    /// Divide rows by their L1 norm.
    L1,
    /// Divide rows by their L2 norm.
    L2,
    /// Divide rows by their max-abs element.
    Max,
}

/// Column statistics helper: per-column values of `x [n, d]`.
fn columns(x: &Tensor<f32>) -> (usize, usize, Vec<f32>) {
    let (n, d) = (x.shape()[0], x.shape()[1]);
    let xs = x.to_contiguous();
    (n, d, xs.as_slice().to_vec())
}

/// `StandardScaler`: `(x − mean) / std`.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    /// Per-column means.
    pub mean: Vec<f32>,
    /// Per-column standard deviations (zeroes replaced by 1).
    pub scale: Vec<f32>,
}

impl StandardScaler {
    /// Fits per-column mean and standard deviation.
    pub fn fit(x: &Tensor<f32>) -> StandardScaler {
        let (n, d, xv) = columns(x);
        let mut mean = vec![0.0f64; d];
        for r in 0..n {
            for f in 0..d {
                mean[f] += xv[r * d + f] as f64;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n.max(1) as f64);
        let mut var = vec![0.0f64; d];
        for r in 0..n {
            for f in 0..d {
                let diff = xv[r * d + f] as f64 - mean[f];
                var[f] += diff * diff;
            }
        }
        let scale: Vec<f32> = var
            .iter()
            .map(|v| {
                let s = (v / n.max(1) as f64).sqrt() as f32;
                if s == 0.0 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        StandardScaler {
            mean: mean.iter().map(|&m| m as f32).collect(),
            scale,
        }
    }

    /// Applies the scaling.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let m = Tensor::from_vec(self.mean.clone(), &[1, self.mean.len()]);
        let s = Tensor::from_vec(self.scale.clone(), &[1, self.scale.len()]);
        x.sub(&m).div(&s)
    }
}

/// `MinMaxScaler`: `(x − min) / (max − min)`.
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    /// Per-column minima.
    pub data_min: Vec<f32>,
    /// Per-column `1 / (max − min)` (degenerate ranges map to 1).
    pub inv_range: Vec<f32>,
}

impl MinMaxScaler {
    /// Fits per-column min/max.
    pub fn fit(x: &Tensor<f32>) -> MinMaxScaler {
        let (n, d, xv) = columns(x);
        let mut lo = vec![f32::INFINITY; d];
        let mut hi = vec![f32::NEG_INFINITY; d];
        for r in 0..n {
            for f in 0..d {
                lo[f] = lo[f].min(xv[r * d + f]);
                hi[f] = hi[f].max(xv[r * d + f]);
            }
        }
        let inv_range = lo
            .iter()
            .zip(hi.iter())
            .map(|(&l, &h)| if h > l { 1.0 / (h - l) } else { 1.0 })
            .collect();
        MinMaxScaler {
            data_min: lo,
            inv_range,
        }
    }

    /// Applies the scaling.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let m = Tensor::from_vec(self.data_min.clone(), &[1, self.data_min.len()]);
        let s = Tensor::from_vec(self.inv_range.clone(), &[1, self.inv_range.len()]);
        x.sub(&m).mul(&s)
    }
}

/// `MaxAbsScaler`: `x / max|x|`.
#[derive(Debug, Clone)]
pub struct MaxAbsScaler {
    /// Per-column `1 / max|x|`.
    pub inv_scale: Vec<f32>,
}

impl MaxAbsScaler {
    /// Fits per-column max absolute value.
    pub fn fit(x: &Tensor<f32>) -> MaxAbsScaler {
        let (n, d, xv) = columns(x);
        let mut m = vec![0.0f32; d];
        for r in 0..n {
            for f in 0..d {
                m[f] = m[f].max(xv[r * d + f].abs());
            }
        }
        MaxAbsScaler {
            inv_scale: m
                .iter()
                .map(|&v| if v > 0.0 { 1.0 / v } else { 1.0 })
                .collect(),
        }
    }

    /// Applies the scaling.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let s = Tensor::from_vec(self.inv_scale.clone(), &[1, self.inv_scale.len()]);
        x.mul(&s)
    }
}

/// `RobustScaler`: `(x − median) / IQR`.
#[derive(Debug, Clone)]
pub struct RobustScaler {
    /// Per-column medians.
    pub center: Vec<f32>,
    /// Per-column `1 / IQR` (degenerate IQRs map to 1).
    pub inv_scale: Vec<f32>,
}

impl RobustScaler {
    /// Fits per-column median and inter-quartile range.
    pub fn fit(x: &Tensor<f32>) -> RobustScaler {
        let (n, d, xv) = columns(x);
        let mut center = vec![0.0f32; d];
        let mut inv_scale = vec![1.0f32; d];
        let mut col = vec![0.0f32; n];
        for f in 0..d {
            for r in 0..n {
                col[r] = xv[r * d + f];
            }
            col.sort_by(|a, b| a.total_cmp(b));
            center[f] = col[n / 2];
            let iqr = col[(3 * n) / 4] - col[n / 4];
            if iqr > 0.0 {
                inv_scale[f] = 1.0 / iqr;
            }
        }
        RobustScaler { center, inv_scale }
    }

    /// Applies the scaling.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let c = Tensor::from_vec(self.center.clone(), &[1, self.center.len()]);
        let s = Tensor::from_vec(self.inv_scale.clone(), &[1, self.inv_scale.len()]);
        x.sub(&c).mul(&s)
    }
}

/// `Binarizer`: indicator of `x > threshold`.
#[derive(Debug, Clone)]
pub struct Binarizer {
    /// Threshold.
    pub threshold: f32,
}

impl Binarizer {
    /// Applies the thresholding.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let t = self.threshold;
        x.map(move |v| f32::from(v > t))
    }
}

/// `Normalizer`: row-wise norm scaling (stateless).
#[derive(Debug, Clone)]
pub struct Normalizer {
    /// Which norm to divide by.
    pub norm: Norm,
}

impl Normalizer {
    /// Applies row normalization.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let denom = match self.norm {
            Norm::L1 => x.abs_t().sum_axis(1, true),
            Norm::L2 => x.mul(x).sum_axis(1, true).sqrt_t(),
            Norm::Max => x.abs_t().max_axis(1, true),
        };
        let safe = denom.map(|v| if v == 0.0 { 1.0 } else { v });
        x.div(&safe)
    }
}

/// Fill strategy of [`SimpleImputer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImputeStrategy {
    /// Column mean of non-missing values.
    Mean,
    /// Column median of non-missing values.
    Median,
    /// A fixed constant.
    Constant(f32),
}

/// `SimpleImputer`: replaces NaNs with fitted statistics.
#[derive(Debug, Clone)]
pub struct SimpleImputer {
    /// Per-column fill values.
    pub statistics: Vec<f32>,
}

impl SimpleImputer {
    /// Fits fill values over non-NaN entries.
    pub fn fit(x: &Tensor<f32>, strategy: ImputeStrategy) -> SimpleImputer {
        let (n, d, xv) = columns(x);
        let mut statistics = vec![0.0f32; d];
        let mut col: Vec<f32> = Vec::with_capacity(n);
        for f in 0..d {
            col.clear();
            col.extend((0..n).map(|r| xv[r * d + f]).filter(|v| !v.is_nan()));
            statistics[f] = match strategy {
                ImputeStrategy::Constant(c) => c,
                ImputeStrategy::Mean => {
                    if col.is_empty() {
                        0.0
                    } else {
                        col.iter().sum::<f32>() / col.len() as f32
                    }
                }
                ImputeStrategy::Median => {
                    if col.is_empty() {
                        0.0
                    } else {
                        col.sort_by(|a, b| a.total_cmp(b));
                        col[col.len() / 2]
                    }
                }
            };
        }
        SimpleImputer { statistics }
    }

    /// Replaces NaNs with the fitted statistics.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let fill = Tensor::from_vec(self.statistics.clone(), &[1, self.statistics.len()]);
        x.isnan().where_select(&fill.expand(x.shape()), x)
    }
}

/// `MissingIndicator`: per-cell NaN mask as 0/1 features.
#[derive(Debug, Clone, Default)]
pub struct MissingIndicator;

impl MissingIndicator {
    /// Produces the indicator matrix.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        x.map(|v| f32::from(v.is_nan()))
    }
}

/// Output encoding of [`KBinsDiscretizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinEncode {
    /// Bin index as a float feature.
    Ordinal,
    /// One-hot over bins, concatenated per column.
    OneHot,
}

/// `KBinsDiscretizer`: quantile binning of continuous columns.
#[derive(Debug, Clone)]
pub struct KBinsDiscretizer {
    /// Ascending interior bin edges per column.
    pub edges: Vec<Vec<f32>>,
    /// Output encoding.
    pub encode: BinEncode,
}

impl KBinsDiscretizer {
    /// Fits `n_bins` quantile bins per column.
    pub fn fit(x: &Tensor<f32>, n_bins: usize, encode: BinEncode) -> KBinsDiscretizer {
        let (n, d, xv) = columns(x);
        let mut edges = Vec::with_capacity(d);
        let mut col = vec![0.0f32; n];
        for f in 0..d {
            for r in 0..n {
                col[r] = xv[r * d + f];
            }
            col.sort_by(|a, b| a.total_cmp(b));
            let mut e = Vec::new();
            for q in 1..n_bins {
                let v = col[q * (n - 1) / n_bins];
                if e.last().is_none_or(|&last| v > last) {
                    e.push(v);
                }
            }
            edges.push(e);
        }
        KBinsDiscretizer { edges, encode }
    }

    /// Bin index of `v` in column `f`.
    fn bin(&self, f: usize, v: f32) -> usize {
        self.edges[f].partition_point(|&e| e <= v)
    }

    /// Discretizes the matrix.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let (n, d, xv) = columns(x);
        match self.encode {
            BinEncode::Ordinal => {
                let mut out = vec![0.0f32; n * d];
                for r in 0..n {
                    for f in 0..d {
                        out[r * d + f] = self.bin(f, xv[r * d + f]) as f32;
                    }
                }
                Tensor::from_vec(out, &[n, d])
            }
            BinEncode::OneHot => {
                let widths: Vec<usize> = self.edges.iter().map(|e| e.len() + 1).collect();
                let total: usize = widths.iter().sum();
                let mut out = vec![0.0f32; n * total];
                for r in 0..n {
                    let mut off = 0;
                    for f in 0..d {
                        out[r * total + off + self.bin(f, xv[r * d + f])] = 1.0;
                        off += widths[f];
                    }
                }
                Tensor::from_vec(out, &[n, total])
            }
        }
    }
}

/// `PolynomialFeatures` of degree 2 in scikit-learn's ordering:
/// `[1?, x_1..x_d, x_1², x_1x_2, …, x_d²]`.
#[derive(Debug, Clone)]
pub struct PolynomialFeatures {
    /// Include the constant-1 bias column.
    pub include_bias: bool,
    /// Drop pure squares, keeping only cross terms.
    pub interaction_only: bool,
}

impl PolynomialFeatures {
    /// Output width for input dimensionality `d`.
    pub fn out_width(&self, d: usize) -> usize {
        let pairs = if self.interaction_only {
            d * (d - 1) / 2
        } else {
            d * (d + 1) / 2
        };
        usize::from(self.include_bias) + d + pairs
    }

    /// Expands the feature matrix.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let (n, d, xv) = columns(x);
        let w = self.out_width(d);
        let mut out = vec![0.0f32; n * w];
        for r in 0..n {
            let row = &xv[r * d..(r + 1) * d];
            let mut o = r * w;
            if self.include_bias {
                out[o] = 1.0;
                o += 1;
            }
            out[o..o + d].copy_from_slice(row);
            o += d;
            for i in 0..d {
                let j0 = if self.interaction_only { i + 1 } else { i };
                for j in j0..d {
                    out[o] = row[i] * row[j];
                    o += 1;
                }
            }
        }
        Tensor::from_vec(out, &[n, w])
    }
}

/// `OneHotEncoder` over numeric categorical columns: categories are the
/// sorted unique training values per column; unknown values encode to all
/// zeros (`handle_unknown="ignore"`).
#[derive(Debug, Clone)]
pub struct OneHotEncoder {
    /// Sorted category values per column.
    pub categories: Vec<Vec<f32>>,
}

impl OneHotEncoder {
    /// Fits category vocabularies.
    pub fn fit(x: &Tensor<f32>) -> OneHotEncoder {
        let (n, d, xv) = columns(x);
        let mut categories = Vec::with_capacity(d);
        for f in 0..d {
            let mut vals: Vec<f32> = (0..n).map(|r| xv[r * d + f]).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            categories.push(vals);
        }
        OneHotEncoder { categories }
    }

    /// Total one-hot width.
    pub fn out_width(&self) -> usize {
        self.categories.iter().map(|c| c.len()).sum()
    }

    /// Encodes the matrix.
    pub fn transform(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let (n, d, xv) = columns(x);
        assert_eq!(d, self.categories.len(), "column count mismatch");
        let w = self.out_width();
        let mut out = vec![0.0f32; n * w];
        for r in 0..n {
            let mut off = 0;
            for f in 0..d {
                let cats = &self.categories[f];
                let v = xv[r * d + f];
                if let Ok(i) = cats.binary_search_by(|c| c.total_cmp(&v)) {
                    out[r * w + off + i] = 1.0;
                }
                off += cats.len();
            }
        }
        Tensor::from_vec(out, &[n, w])
    }

    /// Drops categories per column, keeping `keep[f]` (ascending indices
    /// into `categories[f]`) — the §5.2 vocabulary-pruning absorption of
    /// feature selection into a 1-to-m operator.
    pub fn prune(&self, keep: &[Vec<usize>]) -> OneHotEncoder {
        assert_eq!(keep.len(), self.categories.len(), "column count mismatch");
        OneHotEncoder {
            categories: self
                .categories
                .iter()
                .zip(keep.iter())
                .map(|(cats, k)| k.iter().map(|&i| cats[i]).collect())
                .collect(),
        }
    }
}

/// `LabelEncoder`: maps values to their index in the sorted vocabulary.
#[derive(Debug, Clone)]
pub struct LabelEncoder {
    /// Sorted distinct training values.
    pub classes: Vec<f32>,
}

impl LabelEncoder {
    /// Fits the vocabulary.
    pub fn fit(y: &[f32]) -> LabelEncoder {
        let mut classes = y.to_vec();
        classes.sort_by(|a, b| a.total_cmp(b));
        classes.dedup();
        LabelEncoder { classes }
    }

    /// Encodes values; unknown values map to -1.
    pub fn transform(&self, y: &[f32]) -> Vec<i64> {
        y.iter()
            .map(|v| {
                self.classes
                    .binary_search_by(|c| c.total_cmp(v))
                    .map(|i| i as i64)
                    .unwrap_or(-1)
            })
            .collect()
    }
}

/// Fixed-length byte packing of strings (paper §4.2): strings truncate or
/// zero-pad to `width` bytes.
pub fn pack_strings(values: &[String], width: usize) -> Vec<u8> {
    let mut out = vec![0u8; values.len() * width];
    for (i, s) in values.iter().enumerate() {
        let b = s.as_bytes();
        let k = b.len().min(width);
        out[i * width..i * width + k].copy_from_slice(&b[..k]);
    }
    out
}

/// One-hot encoder over string columns using fixed-length byte-packed
/// vocabularies, reproducing the paper's string-feature technique.
#[derive(Debug, Clone)]
pub struct StringOneHotEncoder {
    /// Sorted vocabulary per column.
    pub vocab: Vec<Vec<String>>,
    /// Fixed byte width (max string length in the vocabulary).
    pub width: usize,
}

impl StringOneHotEncoder {
    /// Fits vocabularies over column-major string data.
    pub fn fit(columns: &[Vec<String>]) -> StringOneHotEncoder {
        let mut vocab = Vec::with_capacity(columns.len());
        let mut width = 1usize;
        for col in columns {
            let mut v = col.clone();
            v.sort();
            v.dedup();
            for s in &v {
                width = width.max(s.len());
            }
            vocab.push(v);
        }
        StringOneHotEncoder { vocab, width }
    }

    /// Total one-hot width.
    pub fn out_width(&self) -> usize {
        self.vocab.iter().map(|v| v.len()).sum()
    }

    /// Encodes column-major string data into `[n, out_width]`.
    pub fn transform(&self, columns: &[Vec<String>]) -> Tensor<f32> {
        assert_eq!(columns.len(), self.vocab.len(), "column count mismatch");
        let n = columns.first().map_or(0, |c| c.len());
        let w = self.out_width();
        let mut out = vec![0.0f32; n * w];
        for r in 0..n {
            let mut off = 0;
            for (f, col) in columns.iter().enumerate() {
                if let Ok(i) = self.vocab[f].binary_search(&col[r]) {
                    out[r * w + off + i] = 1.0;
                }
                off += self.vocab[f].len();
            }
        }
        Tensor::from_vec(out, &[n, w])
    }

    /// Byte-packed vocabulary of column `f` (`[len, width]` u8 rows),
    /// consumed by the tensor converter.
    pub fn packed_vocab(&self, f: usize) -> Vec<u8> {
        pack_strings(&self.vocab[f], self.width)
    }
}

/// `FeatureHasher`: signed hashing of string tokens into `n_features`
/// buckets (FNV-1a based).
#[derive(Debug, Clone)]
pub struct FeatureHasher {
    /// Output dimensionality.
    pub n_features: usize,
}

/// FNV-1a hash of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl FeatureHasher {
    /// Hashes row-major token lists into a fixed-width matrix.
    pub fn transform(&self, rows: &[Vec<String>]) -> Tensor<f32> {
        let n = rows.len();
        let k = self.n_features;
        let mut out = vec![0.0f32; n * k];
        for (r, tokens) in rows.iter().enumerate() {
            for t in tokens {
                let h = fnv1a(t.as_bytes());
                let idx = (h % k as u64) as usize;
                let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
                out[r * k + idx] += sign;
            }
        }
        Tensor::from_vec(out, &[n, k])
    }
}

// JSON artifact impls (replacing the former serde derives).
hb_json::json_enum!(Norm { L1, L2, Max });
hb_json::json_struct!(StandardScaler { mean, scale });
hb_json::json_struct!(MinMaxScaler {
    data_min,
    inv_range
});
hb_json::json_struct!(MaxAbsScaler { inv_scale });
hb_json::json_struct!(RobustScaler { center, inv_scale });
hb_json::json_struct!(Binarizer { threshold });
hb_json::json_struct!(Normalizer { norm });
hb_json::json_enum!(ImputeStrategy { Mean, Median, Constant(f32) });
hb_json::json_struct!(SimpleImputer { statistics });
hb_json::json_struct!(MissingIndicator {});
hb_json::json_enum!(BinEncode { Ordinal, OneHot });
hb_json::json_struct!(KBinsDiscretizer { edges, encode });
hb_json::json_struct!(PolynomialFeatures {
    include_bias,
    interaction_only
});
hb_json::json_struct!(OneHotEncoder { categories });
hb_json::json_struct!(LabelEncoder { classes });
hb_json::json_struct!(StringOneHotEncoder { vocab, width });
hb_json::json_struct!(FeatureHasher { n_features });

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor<f32> {
        Tensor::from_vec(vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0], &[4, 2])
    }

    #[test]
    fn standard_scaler_zero_mean_unit_var() {
        let s = StandardScaler::fit(&sample());
        let t = s.transform(&sample());
        for f in 0..2 {
            let col: Vec<f32> = (0..4).map(|r| t.get(&[r, f])).collect();
            let mean: f32 = col.iter().sum::<f32>() / 4.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-6);
            assert!((var - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn standard_scaler_constant_column_safe() {
        let x = Tensor::from_vec(vec![5.0; 6], &[6, 1]);
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        assert!(t.iter().all(|v| v == 0.0));
    }

    #[test]
    fn minmax_scaler_unit_interval() {
        let s = MinMaxScaler::fit(&sample());
        let t = s.transform(&sample());
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[3, 0]), 1.0);
        assert!((t.get(&[1, 1]) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn maxabs_scaler() {
        let x = Tensor::from_vec(vec![-2.0, 4.0, 1.0, -8.0], &[2, 2]);
        let s = MaxAbsScaler::fit(&x);
        let t = s.transform(&x);
        assert_eq!(t.to_vec(), vec![-1.0, 0.5, 0.5, -1.0]);
    }

    #[test]
    fn robust_scaler_centers_on_median() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 100.0], &[5, 1]);
        let s = RobustScaler::fit(&x);
        let t = s.transform(&x);
        // Median 3 maps to 0 regardless of the outlier.
        assert_eq!(t.get(&[2, 0]), 0.0);
    }

    #[test]
    fn binarizer_thresholds() {
        let b = Binarizer { threshold: 2.5 };
        let t = b.transform(&sample());
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[3, 0]), 1.0);
        assert_eq!(t.get(&[0, 1]), 1.0);
    }

    #[test]
    fn normalizer_l2_rows() {
        let x = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2]);
        let t = Normalizer { norm: Norm::L2 }.transform(&x);
        assert!((t.get(&[0, 0]) - 0.6).abs() < 1e-6);
        assert!((t.get(&[0, 1]) - 0.8).abs() < 1e-6);
        // Zero rows stay zero instead of NaN.
        assert_eq!(t.get(&[1, 0]), 0.0);
    }

    #[test]
    fn normalizer_l1_and_max() {
        let x = Tensor::from_vec(vec![1.0, -3.0], &[1, 2]);
        let l1 = Normalizer { norm: Norm::L1 }.transform(&x);
        assert!((l1.get(&[0, 1]) + 0.75).abs() < 1e-6);
        let mx = Normalizer { norm: Norm::Max }.transform(&x);
        assert!((mx.get(&[0, 0]) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn imputer_mean_fills_nans() {
        let x = Tensor::from_vec(vec![1.0, f32::NAN, 3.0, f32::NAN], &[4, 1]);
        let imp = SimpleImputer::fit(&x, ImputeStrategy::Mean);
        assert_eq!(imp.statistics, vec![2.0]);
        let t = imp.transform(&x);
        assert_eq!(t.to_vec(), vec![1.0, 2.0, 3.0, 2.0]);
    }

    #[test]
    fn imputer_median_and_constant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 9.0, f32::NAN], &[4, 1]);
        let med = SimpleImputer::fit(&x, ImputeStrategy::Median);
        assert_eq!(med.statistics, vec![2.0]);
        let c = SimpleImputer::fit(&x, ImputeStrategy::Constant(-5.0));
        assert_eq!(c.transform(&x).get(&[3, 0]), -5.0);
    }

    #[test]
    fn missing_indicator_masks() {
        let x = Tensor::from_vec(vec![1.0, f32::NAN], &[1, 2]);
        let t = MissingIndicator.transform(&x);
        assert_eq!(t.to_vec(), vec![0.0, 1.0]);
    }

    #[test]
    fn kbins_ordinal_monotone() {
        let x = Tensor::from_fn(&[100, 1], |i| i[0] as f32);
        let kb = KBinsDiscretizer::fit(&x, 4, BinEncode::Ordinal);
        let t = kb.transform(&x);
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[99, 0]), 3.0);
        // Non-decreasing along the sorted input.
        for r in 1..100 {
            assert!(t.get(&[r, 0]) >= t.get(&[r - 1, 0]));
        }
    }

    #[test]
    fn kbins_onehot_one_per_column() {
        let x = Tensor::from_fn(&[50, 2], |i| (i[0] * (i[1] + 1)) as f32);
        let kb = KBinsDiscretizer::fit(&x, 3, BinEncode::OneHot);
        let t = kb.transform(&x);
        for r in 0..50 {
            let s: f32 = (0..t.shape()[1]).map(|c| t.get(&[r, c])).sum();
            assert_eq!(s, 2.0, "each column contributes exactly one hot bit");
        }
    }

    #[test]
    fn polynomial_degree2_ordering() {
        let x = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]);
        let p = PolynomialFeatures {
            include_bias: true,
            interaction_only: false,
        };
        let t = p.transform(&x);
        assert_eq!(t.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 6.0, 9.0]);
        let p2 = PolynomialFeatures {
            include_bias: false,
            interaction_only: true,
        };
        assert_eq!(p2.transform(&x).to_vec(), vec![2.0, 3.0, 6.0]);
    }

    #[test]
    fn onehot_roundtrip_and_unknowns() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 5.0, 1.0, 7.0], &[3, 2]);
        let enc = OneHotEncoder::fit(&x);
        assert_eq!(enc.categories, vec![vec![1.0, 2.0], vec![5.0, 7.0]]);
        let t = enc.transform(&x);
        assert_eq!(t.shape(), &[3, 4]);
        assert_eq!(t.to_vec()[..4], [1.0, 0.0, 1.0, 0.0]);
        // Unknown category encodes to zeros.
        let u = enc.transform(&Tensor::from_vec(vec![9.0, 9.0], &[1, 2]));
        assert_eq!(u.to_vec(), vec![0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn onehot_prune_drops_categories() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]);
        let enc = OneHotEncoder::fit(&x);
        let pruned = enc.prune(&[vec![0, 2]]);
        assert_eq!(pruned.categories, vec![vec![1.0, 3.0]]);
        let t = pruned.transform(&x);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.to_vec(), vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn label_encoder_maps_sorted() {
        let enc = LabelEncoder::fit(&[30.0, 10.0, 20.0, 10.0]);
        assert_eq!(enc.classes, vec![10.0, 20.0, 30.0]);
        assert_eq!(enc.transform(&[20.0, 10.0, 99.0]), vec![1, 0, -1]);
    }

    #[test]
    fn string_onehot_fixed_width() {
        let cols = vec![vec!["red".into(), "green".into(), "red".into()]];
        let enc = StringOneHotEncoder::fit(&cols);
        assert_eq!(enc.width, 5); // "green"
        let t = enc.transform(&cols);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.to_vec(), vec![0.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let packed = enc.packed_vocab(0);
        assert_eq!(packed.len(), 2 * 5);
        assert_eq!(&packed[0..5], b"green");
        assert_eq!(&packed[5..8], b"red");
    }

    #[test]
    fn feature_hasher_deterministic_and_signed() {
        let h = FeatureHasher { n_features: 8 };
        let rows = vec![
            vec!["a".to_string(), "b".to_string()],
            vec!["a".to_string()],
        ];
        let t1 = h.transform(&rows);
        let t2 = h.transform(&rows);
        assert_eq!(t1.to_vec(), t2.to_vec());
        // Sum of absolute values equals token count per row.
        let s0: f32 = (0..8).map(|c| t1.get(&[0, c]).abs()).sum();
        assert_eq!(s0, 2.0);
    }
}
