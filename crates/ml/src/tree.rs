//! Decision trees: the flat-array [`Tree`] representation and a
//! histogram-based CART trainer.
//!
//! Trees are stored structure-of-arrays style so that the Hummingbird
//! extractor functions (paper §3.2) and the ONNX-like baseline can read
//! them directly. The trainer supports:
//!
//! * **depth-wise growth** — every node at depth *d* splits before any at
//!   *d+1*, producing the balanced trees XGBoost generates;
//! * **leaf-wise growth** — always split the leaf with the highest gain,
//!   producing the "skinny tall" trees the paper attributes to LightGBM
//!   (§6.1.1).
//!
//! Split finding uses 8-bit feature binning with gradient/hessian
//! histograms, the same technique as LightGBM's histogram algorithm.

use rand::prelude::*;

use hb_tensor::Tensor;

/// How new nodes are chosen during growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Growth {
    /// Split all frontier nodes level by level (XGBoost-style, balanced).
    DepthWise,
    /// Split the highest-gain leaf first (LightGBM-style, deep/narrow).
    LeafWise,
}

/// Training hyper-parameters shared by trees, forests, and boosters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum records per leaf.
    pub min_samples_leaf: usize,
    /// Minimum gain for a split to happen.
    pub min_gain: f64,
    /// Maximum number of leaves (primarily for leaf-wise growth).
    pub max_leaves: usize,
    /// Growth policy.
    pub growth: Growth,
    /// Features sampled per split (`0` = all features).
    pub max_features: usize,
    /// Histogram bins per feature (≤ 255).
    pub n_bins: usize,
    /// L2 regularization added to leaf hessians.
    pub lambda: f64,
    /// Evaluate one random bin per candidate feature instead of scanning
    /// all bins (ExtraTrees-style extremely randomized splits).
    pub random_splits: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_samples_leaf: 1,
            min_gain: 1e-7,
            max_leaves: usize::MAX,
            growth: Growth::DepthWise,
            max_features: 0,
            n_bins: 64,
            lambda: 1.0,
            random_splits: false,
        }
    }
}

/// A fitted binary decision tree in structure-of-arrays form.
///
/// Node 0 is the root. For internal nodes, records with
/// `x[feature] < threshold` go to `left`, others to `right` (the paper's
/// §4.1 convention that all decision nodes perform `<` comparisons).
/// Leaves have `left == -1` and carry a `values` payload: a class
/// distribution for classification trees or a single score for
/// regression/boosting trees.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    /// Left child index, or -1 for leaves.
    pub left: Vec<i32>,
    /// Right child index, or -1 for leaves.
    pub right: Vec<i32>,
    /// Feature evaluated at each internal node (0 for leaves).
    pub feature: Vec<u32>,
    /// Threshold compared at each internal node (0.0 for leaves).
    pub threshold: Vec<f32>,
    /// Per-node payload of `value_width` floats (meaningful at leaves).
    pub values: Vec<f32>,
    /// Number of floats per node in `values`.
    pub value_width: usize,
}

impl Tree {
    /// Creates a single-leaf tree with the given payload.
    pub fn leaf(value: Vec<f32>) -> Tree {
        Tree {
            left: vec![-1],
            right: vec![-1],
            feature: vec![0],
            threshold: vec![0.0],
            value_width: value.len(),
            values: value,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.left.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.left.iter().filter(|&&l| l < 0).count()
    }

    /// True if node `i` is a leaf.
    pub fn is_leaf(&self, i: usize) -> bool {
        self.left[i] < 0
    }

    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn rec(t: &Tree, i: usize) -> usize {
            if t.is_leaf(i) {
                0
            } else {
                1 + rec(t, t.left[i] as usize).max(rec(t, t.right[i] as usize))
            }
        }
        rec(self, 0)
    }

    /// Payload slice of node `i`.
    pub fn value(&self, i: usize) -> &[f32] {
        &self.values[i * self.value_width..(i + 1) * self.value_width]
    }

    /// Scores one row, returning the reached leaf's payload.
    pub fn predict_row(&self, row: &[f32]) -> &[f32] {
        let mut i = 0usize;
        while !self.is_leaf(i) {
            i = if row[self.feature[i] as usize] < self.threshold[i] {
                self.left[i] as usize
            } else {
                self.right[i] as usize
            };
        }
        self.value(i)
    }

    /// Sorted list of distinct features used by internal nodes (for the
    /// paper's §5.2 feature-selection injection).
    pub fn used_features(&self) -> Vec<usize> {
        let mut f: Vec<usize> = (0..self.n_nodes())
            .filter(|&i| !self.is_leaf(i))
            .map(|i| self.feature[i] as usize)
            .collect();
        f.sort_unstable();
        f.dedup();
        f
    }

    /// Rewrites feature indices through `remap` (old → new), for
    /// feature-selection push-down.
    ///
    /// # Panics
    ///
    /// Panics if an internal node uses a feature not present in `remap`.
    pub fn remap_features(&mut self, remap: &std::collections::HashMap<usize, usize>) {
        for i in 0..self.n_nodes() {
            if !self.is_leaf(i) {
                let old = self.feature[i] as usize;
                self.feature[i] = *remap
                    .get(&old)
                    .unwrap_or_else(|| panic!("feature {old} missing from remap"))
                    as u32;
            }
        }
    }
}

/// Quantile feature binner shared by all histogram-trained trees.
#[derive(Debug, Clone)]
pub struct Binner {
    /// Ascending bin upper edges per feature; a value `v` falls in the
    /// first bin whose edge is `> v`.
    pub edges: Vec<Vec<f32>>,
}

impl Binner {
    /// Builds quantile bins from `x` (shape `[n, d]`).
    pub fn fit(x: &Tensor<f32>, n_bins: usize) -> Binner {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let mut edges = Vec::with_capacity(d);
        for f in 0..d {
            let mut col: Vec<f32> = (0..n)
                .map(|r| xv[r * d + f])
                .filter(|v| !v.is_nan())
                .collect();
            col.sort_by(|a, b| a.total_cmp(b));
            col.dedup();
            let mut e = Vec::new();
            if col.len() > 1 {
                let k = n_bins.min(col.len());
                for q in 1..k {
                    let idx = q * (col.len() - 1) / k;
                    // Midpoint between adjacent distinct values keeps the
                    // `<` comparison faithful to the training data.
                    let edge = (col[idx] + col[(idx + 1).min(col.len() - 1)]) / 2.0;
                    if e.last().is_none_or(|&last| edge > last) {
                        e.push(edge);
                    }
                }
            }
            edges.push(e);
        }
        Binner { edges }
    }

    /// Bin index of value `v` for feature `f`.
    pub fn bin(&self, f: usize, v: f32) -> u8 {
        let e = &self.edges[f];
        // NaN sorts into bin 0 (missing values are out of scope for tree
        // compilation, matching the paper's stated limitation).
        if v.is_nan() {
            return 0;
        }
        e.partition_point(|&edge| edge <= v) as u8
    }

    /// Bins a whole matrix into row-major `u8` codes.
    pub fn bin_matrix(&self, x: &Tensor<f32>) -> Vec<u8> {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let mut out = vec![0u8; n * d];
        for r in 0..n {
            for f in 0..d {
                out[r * d + f] = self.bin(f, xv[r * d + f]);
            }
        }
        out
    }

    /// The threshold value separating bins `b` and `b+1` of feature `f`.
    pub fn threshold(&self, f: usize, b: u8) -> f32 {
        self.edges[f][b as usize]
    }

    /// Number of usable bins for feature `f`.
    pub fn n_bins(&self, f: usize) -> usize {
        self.edges[f].len() + 1
    }
}

/// Per-node training state during growth.
struct Frontier {
    node: usize,
    depth: usize,
    /// Row indices belonging to this node.
    rows: Vec<u32>,
    gain: f64,
    /// Best split found (feature, bin).
    split: Option<(usize, u8)>,
}

/// Targets for gradient-based tree growth: one (gradient, hessian) pair
/// per row. Plain regression uses `g = y, h = 1` so leaves become means.
pub struct GradPair {
    /// Per-row gradients.
    pub grad: Vec<f32>,
    /// Per-row hessians.
    pub hess: Vec<f32>,
}

/// Trains one regression tree on gradient pairs over pre-binned features.
///
/// Returns leaf values of `sign * Σg / (Σh + λ)`; boosters pass
/// `sign = -1` (Newton step), plain regression passes `sign = +1` with
/// `g = y, h = 1` (leaf = mean).
#[allow(clippy::too_many_arguments)]
pub fn train_regression_tree(
    binned: &[u8],
    n_rows: usize,
    n_features: usize,
    binner: &Binner,
    targets: &GradPair,
    cfg: &TreeConfig,
    sign: f32,
    rng: &mut StdRng,
    row_subset: Option<&[u32]>,
) -> Tree {
    let leaf_value = |rows: &[u32]| -> Vec<f32> {
        let mut g = 0.0f64;
        let mut h = 0.0f64;
        for &r in rows {
            g += targets.grad[r as usize] as f64;
            h += targets.hess[r as usize] as f64;
        }
        vec![sign * (g / (h + cfg.lambda)) as f32]
    };
    let score = |rows: &[u32]| -> f64 {
        let mut g = 0.0f64;
        let mut h = 0.0f64;
        for &r in rows {
            g += targets.grad[r as usize] as f64;
            h += targets.hess[r as usize] as f64;
        }
        g * g / (h + cfg.lambda)
    };
    grow_tree(
        binned,
        n_rows,
        n_features,
        binner,
        cfg,
        rng,
        row_subset,
        &score,
        &leaf_value,
        &|rows, f, forced| {
            // Histogram of (Σg, Σh) per bin for feature `f`.
            let nb = binner.n_bins(f);
            let mut hg = vec![0.0f64; nb];
            let mut hh = vec![0.0f64; nb];
            for &r in rows {
                let b = binned[r as usize * n_features + f] as usize;
                hg[b] += targets.grad[r as usize] as f64;
                hh[b] += targets.hess[r as usize] as f64;
            }
            let tg: f64 = hg.iter().sum();
            let th: f64 = hh.iter().sum();
            let parent = tg * tg / (th + cfg.lambda);
            let mut best: Option<(u8, f64)> = None;
            let mut lg = 0.0f64;
            let mut lh = 0.0f64;
            for b in 0..nb.saturating_sub(1) {
                lg += hg[b];
                lh += hh[b];
                if forced.is_some_and(|fb| fb as usize != b) {
                    continue;
                }
                let rg = tg - lg;
                let rh = th - lh;
                if lh == 0.0 || rh == 0.0 {
                    continue;
                }
                let gain = lg * lg / (lh + cfg.lambda) + rg * rg / (rh + cfg.lambda) - parent;
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some((b as u8, gain));
                }
            }
            best
        },
    )
}

/// Trains one classification tree with Gini impurity; leaves hold class
/// probability distributions.
#[allow(clippy::too_many_arguments)]
pub fn train_classification_tree(
    binned: &[u8],
    n_rows: usize,
    n_features: usize,
    binner: &Binner,
    labels: &[i64],
    n_classes: usize,
    cfg: &TreeConfig,
    rng: &mut StdRng,
    row_subset: Option<&[u32]>,
) -> Tree {
    let leaf_value = |rows: &[u32]| -> Vec<f32> {
        let mut counts = vec![0.0f32; n_classes];
        for &r in rows {
            counts[labels[r as usize] as usize] += 1.0;
        }
        let total = rows.len().max(1) as f32;
        counts.iter_mut().for_each(|c| *c /= total);
        counts
    };
    // Negative weighted Gini: higher is better, so split gain is positive.
    let node_score = |counts: &[f64], total: f64| -> f64 {
        if total == 0.0 {
            return 0.0;
        }
        let sq: f64 = counts.iter().map(|c| c * c).sum();
        sq / total
    };
    let score = |rows: &[u32]| -> f64 {
        let mut counts = vec![0.0f64; n_classes];
        for &r in rows {
            counts[labels[r as usize] as usize] += 1.0;
        }
        node_score(&counts, rows.len() as f64)
    };
    grow_tree(
        binned,
        n_rows,
        n_features,
        binner,
        cfg,
        rng,
        row_subset,
        &score,
        &leaf_value,
        &|rows, f, forced| {
            let nb = binner.n_bins(f);
            let mut hist = vec![0.0f64; nb * n_classes];
            let mut bin_count = vec![0.0f64; nb];
            for &r in rows {
                let b = binned[r as usize * n_features + f] as usize;
                hist[b * n_classes + labels[r as usize] as usize] += 1.0;
                bin_count[b] += 1.0;
            }
            let total = rows.len() as f64;
            let mut tot_counts = vec![0.0f64; n_classes];
            for b in 0..nb {
                for c in 0..n_classes {
                    tot_counts[c] += hist[b * n_classes + c];
                }
            }
            let parent = node_score(&tot_counts, total);
            let mut best: Option<(u8, f64)> = None;
            let mut lcounts = vec![0.0f64; n_classes];
            let mut ln = 0.0f64;
            for b in 0..nb.saturating_sub(1) {
                for c in 0..n_classes {
                    lcounts[c] += hist[b * n_classes + c];
                }
                ln += bin_count[b];
                if forced.is_some_and(|fb| fb as usize != b) {
                    continue;
                }
                let rn = total - ln;
                if ln == 0.0 || rn == 0.0 {
                    continue;
                }
                let rcounts: Vec<f64> = tot_counts
                    .iter()
                    .zip(lcounts.iter())
                    .map(|(t, l)| t - l)
                    .collect();
                let gain = node_score(&lcounts, ln) + node_score(&rcounts, rn) - parent;
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some((b as u8, gain));
                }
            }
            best
        },
    )
}

/// Split finder: `(rows, feature, forced bin)` → best `(bin, gain)`.
type SplitFinder<'a> = dyn Fn(&[u32], usize, Option<u8>) -> Option<(u8, f64)> + 'a;

/// Shared growth loop parameterized by split finding and leaf payloads.
#[allow(clippy::too_many_arguments)]
fn grow_tree(
    binned: &[u8],
    n_rows: usize,
    n_features: usize,
    binner: &Binner,
    cfg: &TreeConfig,
    rng: &mut StdRng,
    row_subset: Option<&[u32]>,
    _score: &dyn Fn(&[u32]) -> f64,
    leaf_value: &dyn Fn(&[u32]) -> Vec<f32>,
    find_split: &SplitFinder,
) -> Tree {
    let all_rows: Vec<u32> = match row_subset {
        Some(rs) => rs.to_vec(),
        None => (0..n_rows as u32).collect(),
    };
    let root_value = leaf_value(&all_rows);
    let value_width = root_value.len();
    let mut tree = Tree {
        left: vec![-1],
        right: vec![-1],
        feature: vec![0],
        threshold: vec![0.0],
        values: root_value,
        value_width,
    };

    // Evaluate the best split for a node's rows over (sampled) features.
    let eval = |rows: &[u32], rng: &mut StdRng| -> (f64, Option<(usize, u8)>) {
        if rows.len() < 2 * cfg.min_samples_leaf {
            return (0.0, None);
        }
        let features: Vec<usize> = if cfg.max_features > 0 && cfg.max_features < n_features {
            rand::seq::index::sample(rng, n_features, cfg.max_features).into_vec()
        } else {
            (0..n_features).collect()
        };
        let mut best_gain = 0.0f64;
        let mut best = None;
        for f in features {
            // ExtraTrees: evaluate a single random bin per feature.
            let forced = if cfg.random_splits {
                let nb = binner.n_bins(f);
                if nb < 2 {
                    continue;
                }
                Some(rng.gen_range(0..nb - 1) as u8)
            } else {
                None
            };
            if let Some((bin, gain)) = find_split(rows, f, forced) {
                if gain > best_gain {
                    best_gain = gain;
                    best = Some((f, bin));
                }
            }
        }
        (best_gain, best)
    };

    let (g, s) = eval(&all_rows, rng);
    let mut frontier = vec![Frontier {
        node: 0,
        depth: 0,
        rows: all_rows,
        gain: g,
        split: s,
    }];
    let mut n_leaves = 1usize;

    while !frontier.is_empty() && n_leaves < cfg.max_leaves {
        // Pick the next node to split.
        let pick = match cfg.growth {
            Growth::DepthWise => 0,
            Growth::LeafWise => {
                let mut best_i = 0;
                for (i, f) in frontier.iter().enumerate() {
                    if f.gain > frontier[best_i].gain {
                        best_i = i;
                    }
                }
                best_i
            }
        };
        let cand = frontier.swap_remove(pick);
        let Some((feat, bin)) = cand.split else {
            continue;
        };
        if cand.gain < cfg.min_gain || cand.depth >= cfg.max_depth {
            continue;
        }
        // Partition rows on the chosen split.
        let mut lrows = Vec::new();
        let mut rrows = Vec::new();
        for &r in &cand.rows {
            if binned[r as usize * n_features + feat] <= bin {
                lrows.push(r);
            } else {
                rrows.push(r);
            }
        }
        if lrows.len() < cfg.min_samples_leaf || rrows.len() < cfg.min_samples_leaf {
            continue;
        }
        // Materialize the two children.
        let li = tree.n_nodes();
        let ri = li + 1;
        for (rows_child, _) in [(&lrows, li), (&rrows, ri)] {
            tree.left.push(-1);
            tree.right.push(-1);
            tree.feature.push(0);
            tree.threshold.push(0.0);
            tree.values.extend_from_slice(&leaf_value(rows_child));
        }
        tree.left[cand.node] = li as i32;
        tree.right[cand.node] = ri as i32;
        tree.feature[cand.node] = feat as u32;
        tree.threshold[cand.node] = binner.threshold(feat, bin);
        n_leaves += 1;

        for (node, rows) in [(li, lrows), (ri, rrows)] {
            let (g, s) = eval(&rows, rng);
            if s.is_some() {
                frontier.push(Frontier {
                    node,
                    depth: cand.depth + 1,
                    rows,
                    gain: g,
                    split: s,
                });
            }
        }
    }
    tree
}

// JSON artifact impls (replacing the former serde derive).
hb_json::json_struct!(Tree {
    left,
    right,
    feature,
    threshold,
    values,
    value_width
});

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Tensor<f32>, Vec<i64>) {
        // Two-feature AND dataset: needs depth-2 splits but, unlike pure
        // XOR, has non-zero marginal gain for the greedy CART criterion.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let a = f32::from(i % 2 == 0);
            let b = f32::from((i / 2) % 2 == 0);
            xs.push(a + (i as f32) * 1e-4);
            xs.push(b + (i as f32) * 1e-4);
            ys.push(((a != 0.0) && (b != 0.0)) as i64);
        }
        (Tensor::from_vec(xs, &[40, 2]), ys)
    }

    fn fit_cls(cfg: TreeConfig) -> (Tree, Tensor<f32>, Vec<i64>) {
        let (x, y) = xor_data();
        let binner = Binner::fit(&x, cfg.n_bins);
        let binned = binner.bin_matrix(&x);
        let mut rng = StdRng::seed_from_u64(7);
        let t = train_classification_tree(&binned, 40, 2, &binner, &y, 2, &cfg, &mut rng, None);
        (t, x, y)
    }

    #[test]
    fn classification_tree_learns_xor() {
        let (t, x, y) = fit_cls(TreeConfig {
            max_depth: 3,
            ..TreeConfig::default()
        });
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let mut correct = 0;
        for r in 0..40 {
            let p = t.predict_row(&xv[r * 2..(r + 1) * 2]);
            let pred = if p[1] > p[0] { 1 } else { 0 };
            correct += i32::from(pred == y[r] as i32);
        }
        assert!(
            correct >= 38,
            "only {correct}/40 correct; depth={}",
            t.depth()
        );
    }

    #[test]
    fn depth_limit_respected() {
        let (t, _, _) = fit_cls(TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        });
        assert!(t.depth() <= 1);
    }

    #[test]
    fn leaf_payloads_are_distributions() {
        let (t, _, _) = fit_cls(TreeConfig::default());
        for i in 0..t.n_nodes() {
            if t.is_leaf(i) {
                let v = t.value(i);
                let s: f32 = v.iter().sum();
                assert!((s - 1.0).abs() < 1e-5, "leaf {i} sums to {s}");
            }
        }
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let n = 100;
        let x = Tensor::from_fn(&[n, 1], |i| i[0] as f32);
        let y: Vec<f32> = (0..n).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let binner = Binner::fit(&x, 64);
        let binned = binner.bin_matrix(&x);
        let targets = GradPair {
            grad: y.clone(),
            hess: vec![1.0; n],
        };
        let cfg = TreeConfig {
            max_depth: 2,
            lambda: 0.0,
            ..TreeConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let t = train_regression_tree(&binned, n, 1, &binner, &targets, &cfg, 1.0, &mut rng, None);
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        for r in 0..n {
            let p = t.predict_row(&xv[r..r + 1])[0];
            let want = if r < 50 { 1.0 } else { 5.0 };
            assert!((p - want).abs() < 0.6, "row {r}: {p} vs {want}");
        }
    }

    #[test]
    fn leafwise_growth_is_deeper_than_depthwise_at_leaf_parity() {
        // With a leaf budget, leaf-wise growth should reach greater depth.
        let n = 400;
        let x = Tensor::from_fn(&[n, 1], |i| (i[0] as f32) / n as f32);
        let y: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.07).sin()).collect();
        let binner = Binner::fit(&x, 128);
        let binned = binner.bin_matrix(&x);
        let targets = GradPair {
            grad: y,
            hess: vec![1.0; n],
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mk = |growth| TreeConfig {
            max_depth: 12,
            max_leaves: 16,
            growth,
            lambda: 0.0,
            ..TreeConfig::default()
        };
        let dw = train_regression_tree(
            &binned,
            n,
            1,
            &binner,
            &targets,
            &mk(Growth::DepthWise),
            1.0,
            &mut rng,
            None,
        );
        let lw = train_regression_tree(
            &binned,
            n,
            1,
            &binner,
            &targets,
            &mk(Growth::LeafWise),
            1.0,
            &mut rng,
            None,
        );
        assert!(lw.n_leaves() <= 16 && dw.n_leaves() <= 16);
        assert!(
            lw.depth() >= dw.depth(),
            "leafwise {} < depthwise {}",
            lw.depth(),
            dw.depth()
        );
    }

    #[test]
    fn binner_respects_lt_semantics() {
        let x = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], &[4, 1]);
        let b = Binner::fit(&x, 4);
        // Every training value must land strictly on one side of each edge.
        for edge in &b.edges[0] {
            for v in [1.0f32, 2.0, 3.0, 4.0] {
                assert_ne!(v, *edge, "edge collides with data value");
            }
        }
    }

    #[test]
    fn used_features_and_remap() {
        let (mut t, _, _) = fit_cls(TreeConfig {
            max_depth: 3,
            ..TreeConfig::default()
        });
        let used = t.used_features();
        assert!(!used.is_empty());
        let remap: std::collections::HashMap<usize, usize> = used
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        t.remap_features(&remap);
        let after = t.used_features();
        assert!(after.iter().all(|&f| f < used.len()));
    }

    #[test]
    fn single_leaf_tree() {
        let t = Tree::leaf(vec![0.25, 0.75]);
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict_row(&[123.0]), &[0.25, 0.75]);
    }

    #[test]
    fn constant_labels_give_single_leaf() {
        let x = Tensor::from_fn(&[20, 3], |i| (i[0] * 3 + i[1]) as f32);
        let y = vec![1i64; 20];
        let binner = Binner::fit(&x, 16);
        let binned = binner.bin_matrix(&x);
        let mut rng = StdRng::seed_from_u64(3);
        let t = train_classification_tree(
            &binned,
            20,
            3,
            &binner,
            &y,
            2,
            &TreeConfig::default(),
            &mut rng,
            None,
        );
        assert_eq!(t.n_leaves(), 1, "pure node should not split");
        assert_eq!(t.predict_row(&[0.0, 0.0, 0.0]), &[0.0, 1.0]);
    }
}
