//! Small evaluation metrics used by tests and the bench harness.

use hb_tensor::Tensor;

/// Fraction of predictions (f32-encoded class ids) equal to the labels.
pub fn accuracy(pred: &Tensor<f32>, y: &[i64]) -> f64 {
    let p = pred.to_vec();
    assert_eq!(p.len(), y.len(), "prediction/label length mismatch");
    let correct = p
        .iter()
        .zip(y.iter())
        .filter(|(p, y)| **p as i64 == **y)
        .count();
    correct as f64 / y.len().max(1) as f64
}

/// Mean squared error between predictions and targets.
pub fn mse(pred: &Tensor<f32>, y: &[f32]) -> f64 {
    let p = pred.to_vec();
    assert_eq!(p.len(), y.len(), "prediction/label length mismatch");
    p.iter()
        .zip(y.iter())
        .map(|(a, b)| ((a - b) as f64).powi(2))
        .sum::<f64>()
        / y.len().max(1) as f64
}

/// Largest absolute element-wise difference between two equally-shaped
/// tensors (the paper's output-validation metric, §6.1.1).
pub fn max_abs_diff(a: &Tensor<f32>, b: &Tensor<f32>) -> f32 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Fraction of rows whose argmax class differs between two `[n, C]`
/// probability tensors — the paper's "% of records differing" measure.
pub fn label_mismatch_rate(a: &Tensor<f32>, b: &Tensor<f32>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    let la = a.argmax_axis(1, false).to_vec();
    let lb = b.argmax_axis(1, false).to_vec();
    let diff = la.iter().zip(lb.iter()).filter(|(x, y)| x != y).count();
    diff as f64 / la.len().max(1) as f64
}

/// True when every element pair satisfies
/// `|a - b| <= atol + rtol * |b|` — mirrors
/// `numpy.testing.assert_allclose`, which the paper uses with
/// `rtol = atol = 1e-5`.
pub fn allclose(a: &Tensor<f32>, b: &Tensor<f32>, rtol: f32, atol: f32) -> bool {
    if a.shape() != b.shape() {
        return false;
    }
    a.iter()
        .zip(b.iter())
        .all(|(x, y)| (x.is_nan() && y.is_nan()) || (x - y).abs() <= atol + rtol * y.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let p = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[4]);
        assert_eq!(accuracy(&p, &[0, 1, 0, 0]), 0.75);
    }

    #[test]
    fn mse_is_mean_of_squares() {
        let p = Tensor::from_vec(vec![1.0, 3.0], &[2]);
        assert_eq!(mse(&p, &[0.0, 0.0]), 5.0);
    }

    #[test]
    fn allclose_tolerances() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0 + 5e-6, 2.0], &[2]);
        assert!(allclose(&a, &b, 1e-5, 1e-5));
        let c = Tensor::from_vec(vec![1.1, 2.0], &[2]);
        assert!(!allclose(&a, &c, 1e-5, 1e-5));
    }

    #[test]
    fn mismatch_rate_on_argmax() {
        let a = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2]);
        let b = Tensor::from_vec(vec![0.6, 0.4, 0.7, 0.3], &[2, 2]);
        assert_eq!(label_mismatch_rate(&a, &b), 0.5);
    }

    #[test]
    fn max_abs_diff_finds_worst() {
        let a = Tensor::from_vec(vec![1.0, 5.0], &[2]);
        let b = Tensor::from_vec(vec![1.5, 4.0], &[2]);
        assert_eq!(max_abs_diff(&a, &b), 1.0);
    }
}
