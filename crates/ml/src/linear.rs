//! Linear models: logistic regression (L1/L2), linear SVM, and an
//! SGD-trained classifier, mirroring scikit-learn's
//! `LogisticRegression`, `LinearSVC`, and `SGDClassifier`.
//!
//! The fitted form of every model here is `(weights [k, d], bias [k],
//! link)` — exactly the parameters Hummingbird's extractor functions pull
//! out and compile into a `GEMM → link` tensor graph. L1-regularized
//! logistic regression additionally matters for the paper's §5.2
//! *feature-selection injection*: zero-weight columns are prunable.

use hb_tensor::Tensor;

/// Regularization penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Penalty {
    /// No regularization.
    None,
    /// Ridge penalty with strength `alpha`.
    L2(f32),
    /// Lasso penalty with strength `alpha` (drives weights to exact
    /// zero via proximal soft-thresholding).
    L1(f32),
}

/// Output link of a fitted linear model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearLink {
    /// Binary logistic: `[1-p, p]` via sigmoid.
    Sigmoid,
    /// Multiclass softmax.
    Softmax,
    /// Raw margins (SVM decision function).
    Margin,
}

/// Gradient-descent settings shared by the linear trainers.
#[derive(Debug, Clone)]
pub struct LinearConfig {
    /// Full-batch epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Penalty.
    pub penalty: Penalty,
    /// RNG-free: training is deterministic.
    pub seed: u64,
}

impl Default for LinearConfig {
    fn default() -> Self {
        LinearConfig {
            epochs: 200,
            lr: 0.5,
            penalty: Penalty::L2(1e-4),
            seed: 0,
        }
    }
}

/// A fitted linear classifier: weights, bias, and link.
#[derive(Debug, Clone)]
pub struct LinearModel {
    /// Weight matrix `[k, d]`; `k = 1` for binary models.
    pub weights: Tensor<f32>,
    /// Bias per output.
    pub bias: Vec<f32>,
    /// Output link.
    pub link: LinearLink,
    /// Number of classes.
    pub n_classes: usize,
}

impl LinearModel {
    /// Raw decision scores `[n, k]`.
    pub fn decision(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let b = Tensor::from_vec(self.bias.clone(), &[1, self.bias.len()]);
        x.matmul(&self.weights.transpose(0, 1)).add(&b)
    }

    /// Class probabilities `[n, C]` (margins pass through a pseudo-1/0
    /// encoding for `Margin` models).
    pub fn predict_proba(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let z = self.decision(x);
        match self.link {
            LinearLink::Sigmoid => {
                let p = z.sigmoid();
                let one_minus = p.map(|v| 1.0 - v);
                Tensor::concat(&[&one_minus, &p], 1)
            }
            LinearLink::Softmax => z.softmax_axis(1),
            LinearLink::Margin => z,
        }
    }

    /// Hard class predictions `[n]`.
    pub fn predict(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let z = self.decision(x);
        if z.shape()[1] == 1 {
            z.map(|v| f32::from(v > 0.0))
        } else {
            z.argmax_axis(1, false).map(|v| v as f32)
        }
    }

    /// Indices of features with a non-zero weight in any output — the
    /// survivor set for feature-selection injection (§5.2).
    pub fn nonzero_features(&self) -> Vec<usize> {
        let (k, d) = (self.weights.shape()[0], self.weights.shape()[1]);
        (0..d)
            .filter(|&f| (0..k).any(|c| self.weights.get(&[c, f]).abs() > 1e-12))
            .collect()
    }

    /// Drops all columns except `keep` (ascending), returning a model over
    /// the reduced feature space.
    pub fn restrict_features(&self, keep: &[usize]) -> LinearModel {
        LinearModel {
            weights: self.weights.index_select(1, keep),
            bias: self.bias.clone(),
            link: self.link,
            n_classes: self.n_classes,
        }
    }
}

/// Applies a proximal step for the penalty.
fn apply_penalty(w: &mut [f32], penalty: Penalty, lr: f32) {
    match penalty {
        Penalty::None => {}
        Penalty::L2(a) => w.iter_mut().for_each(|v| *v *= 1.0 - lr * a),
        Penalty::L1(a) => {
            let t = lr * a;
            w.iter_mut()
                .for_each(|v| *v = v.signum() * (v.abs() - t).max(0.0));
        }
    }
}

/// Shared full-batch gradient-descent loop over the softmax/logistic loss.
fn fit_logistic(x: &Tensor<f32>, y: &[i64], n_classes: usize, cfg: &LinearConfig) -> LinearModel {
    let (n, d) = (x.shape()[0], x.shape()[1]);
    assert_eq!(n, y.len(), "x/y length mismatch");
    let k = if n_classes == 2 { 1 } else { n_classes };
    let mut w = vec![0.0f32; k * d];
    let mut b = vec![0.0f32; k];
    let xs = x.to_contiguous();
    let xv = xs.as_slice();
    let inv_n = 1.0 / n as f32;
    let mut z = vec![0.0f32; k];
    for _ in 0..cfg.epochs {
        let mut gw = vec![0.0f32; k * d];
        let mut gb = vec![0.0f32; k];
        for r in 0..n {
            let row = &xv[r * d..(r + 1) * d];
            for c in 0..k {
                z[c] = b[c]
                    + row
                        .iter()
                        .zip(&w[c * d..(c + 1) * d])
                        .map(|(a, b)| a * b)
                        .sum::<f32>();
            }
            if k == 1 {
                let p = 1.0 / (1.0 + (-z[0]).exp());
                let err = p - y[r] as f32;
                gb[0] += err;
                for (g, &v) in gw.iter_mut().zip(row.iter()) {
                    *g += err * v;
                }
            } else {
                let m = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let mut s = 0.0f32;
                for zc in z.iter_mut().take(k) {
                    *zc = (*zc - m).exp();
                    s += *zc;
                }
                for c in 0..k {
                    let err = z[c] / s - f32::from(y[r] as usize == c);
                    gb[c] += err;
                    for (g, &v) in gw[c * d..(c + 1) * d].iter_mut().zip(row.iter()) {
                        *g += err * v;
                    }
                }
            }
        }
        for (wv, gv) in w.iter_mut().zip(gw.iter()) {
            *wv -= cfg.lr * gv * inv_n;
        }
        for (bv, gv) in b.iter_mut().zip(gb.iter()) {
            *bv -= cfg.lr * gv * inv_n;
        }
        apply_penalty(&mut w, cfg.penalty, cfg.lr);
    }
    LinearModel {
        weights: Tensor::from_vec(w, &[k, d]),
        bias: b,
        link: if k == 1 {
            LinearLink::Sigmoid
        } else {
            LinearLink::Softmax
        },
        n_classes,
    }
}

/// scikit-learn `LogisticRegression` stand-in.
#[derive(Debug, Clone, Default)]
pub struct LogisticRegression {
    /// Training settings.
    pub config: LinearConfig,
}

impl LogisticRegression {
    /// Creates a trainer with the given settings.
    pub fn new(config: LinearConfig) -> Self {
        LogisticRegression { config }
    }

    /// Trains on labels `0..C`.
    pub fn fit(&self, x: &Tensor<f32>, y: &[i64]) -> LinearModel {
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        let n_classes = (*y.iter().max().expect("empty labels") as usize) + 1;
        fit_logistic(x, y, n_classes.max(2), &self.config)
    }
}

/// scikit-learn `SGDClassifier` stand-in: logistic loss trained with
/// per-sample stochastic steps and an inverse-scaling learning rate.
#[derive(Debug, Clone, Default)]
pub struct SgdClassifier {
    /// Training settings (`epochs` = passes over the data).
    pub config: LinearConfig,
}

impl SgdClassifier {
    /// Creates a trainer with the given settings.
    pub fn new(config: LinearConfig) -> Self {
        SgdClassifier { config }
    }

    /// Trains a binary or multiclass model with SGD.
    pub fn fit(&self, x: &Tensor<f32>, y: &[i64]) -> LinearModel {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        let n_classes = (*y.iter().max().expect("empty labels") as usize + 1).max(2);
        let k = if n_classes == 2 { 1 } else { n_classes };
        let mut w = vec![0.0f32; k * d];
        let mut b = vec![0.0f32; k];
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let mut t = 1.0f32;
        let mut z = vec![0.0f32; k];
        for _ in 0..self.config.epochs.max(1) {
            for r in 0..n {
                let lr = self.config.lr / t.sqrt();
                t += 1.0;
                let row = &xv[r * d..(r + 1) * d];
                for c in 0..k {
                    z[c] = b[c]
                        + row
                            .iter()
                            .zip(&w[c * d..(c + 1) * d])
                            .map(|(a, b)| a * b)
                            .sum::<f32>();
                }
                if k == 1 {
                    let p = 1.0 / (1.0 + (-z[0]).exp());
                    let err = p - y[r] as f32;
                    b[0] -= lr * err;
                    for (wv, &v) in w.iter_mut().zip(row.iter()) {
                        *wv -= lr * err * v;
                    }
                } else {
                    let m = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let s: f32 = z.iter().map(|v| (v - m).exp()).sum();
                    for c in 0..k {
                        let err = ((z[c] - m).exp()) / s - f32::from(y[r] as usize == c);
                        b[c] -= lr * err;
                        for (wv, &v) in w[c * d..(c + 1) * d].iter_mut().zip(row.iter()) {
                            *wv -= lr * err * v;
                        }
                    }
                }
                apply_penalty(&mut w, self.config.penalty, self.config.lr * 1e-3);
            }
        }
        LinearModel {
            weights: Tensor::from_vec(w, &[k, d]),
            bias: b,
            link: if k == 1 {
                LinearLink::Sigmoid
            } else {
                LinearLink::Softmax
            },
            n_classes,
        }
    }
}

/// scikit-learn `LinearSVC` stand-in: L2-regularized hinge loss via
/// subgradient descent (one-vs-rest for multiclass).
#[derive(Debug, Clone)]
pub struct LinearSvc {
    /// Training settings.
    pub config: LinearConfig,
}

impl Default for LinearSvc {
    fn default() -> Self {
        LinearSvc {
            config: LinearConfig {
                lr: 0.5,
                epochs: 500,
                ..LinearConfig::default()
            },
        }
    }
}

impl LinearSvc {
    /// Creates a trainer with the given settings.
    pub fn new(config: LinearConfig) -> Self {
        LinearSvc { config }
    }

    /// Trains a margin classifier on labels `0..C`.
    pub fn fit(&self, x: &Tensor<f32>, y: &[i64]) -> LinearModel {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        let n_classes = (*y.iter().max().expect("empty labels") as usize + 1).max(2);
        let k = if n_classes == 2 { 1 } else { n_classes };
        let mut w = vec![0.0f32; k * d];
        let mut b = vec![0.0f32; k];
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let inv_n = 1.0 / n as f32;
        for _ in 0..self.config.epochs {
            let mut gw = vec![0.0f32; k * d];
            let mut gb = vec![0.0f32; k];
            for r in 0..n {
                let row = &xv[r * d..(r + 1) * d];
                for c in 0..k {
                    // One-vs-rest target in {-1, +1}.
                    let t = if k == 1 {
                        if y[r] == 1 {
                            1.0
                        } else {
                            -1.0
                        }
                    } else if y[r] as usize == c {
                        1.0
                    } else {
                        -1.0
                    };
                    let z: f32 = b[c]
                        + row
                            .iter()
                            .zip(&w[c * d..(c + 1) * d])
                            .map(|(a, b)| a * b)
                            .sum::<f32>();
                    if t * z < 1.0 {
                        gb[c] -= t;
                        for (g, &v) in gw[c * d..(c + 1) * d].iter_mut().zip(row.iter()) {
                            *g -= t * v;
                        }
                    }
                }
            }
            for (wv, gv) in w.iter_mut().zip(gw.iter()) {
                *wv -= self.config.lr * gv * inv_n;
            }
            for (bv, gv) in b.iter_mut().zip(gb.iter()) {
                *bv -= self.config.lr * gv * inv_n;
            }
            apply_penalty(&mut w, self.config.penalty, self.config.lr);
        }
        LinearModel {
            weights: Tensor::from_vec(w, &[k, d]),
            bias: b,
            link: LinearLink::Margin,
            n_classes,
        }
    }
}

// JSON artifact impls (replacing the former serde derives).
hb_json::json_enum!(LinearLink {
    Sigmoid,
    Softmax,
    Margin
});
hb_json::json_struct!(LinearModel {
    weights,
    bias,
    link,
    n_classes
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn linearly_separable(n: usize) -> (Tensor<f32>, Vec<i64>) {
        // y = 1 iff x0 + x1 > 1.
        let x = Tensor::from_fn(&[n, 2], |i| {
            let v = ((i[0] * 31 + i[1] * 17) % 100) as f32 / 100.0;
            v * 2.0 - 0.5
        });
        let xs = x.to_contiguous();
        let xv = xs.as_slice().to_vec();
        let y: Vec<i64> = (0..n)
            .map(|r| i64::from(xv[r * 2] + xv[r * 2 + 1] > 1.0))
            .collect();
        (x, y)
    }

    #[test]
    fn logistic_regression_separates() {
        let (x, y) = linearly_separable(200);
        let m = LogisticRegression::default().fit(&x, &y);
        assert!(accuracy(&m.predict(&x), &y) > 0.97);
        // Probabilities normalize.
        let p = m.predict_proba(&x);
        assert!((p.get(&[0, 0]) + p.get(&[0, 1]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn l1_penalty_zeroes_irrelevant_features() {
        // Feature 2 is pure noise; L1 should null it.
        let n = 300;
        let x = Tensor::from_fn(&[n, 3], |i| match i[1] {
            0 => (i[0] % 10) as f32 / 10.0,
            1 => ((i[0] * 7) % 10) as f32 / 10.0,
            _ => ((i[0] * 131) % 97) as f32 / 97.0,
        });
        let xs = x.to_contiguous();
        let xv = xs.as_slice().to_vec();
        let y: Vec<i64> = (0..n)
            .map(|r| i64::from(xv[r * 3] + xv[r * 3 + 1] > 1.0))
            .collect();
        let m = LogisticRegression::new(LinearConfig {
            penalty: Penalty::L1(0.02),
            epochs: 400,
            ..LinearConfig::default()
        })
        .fit(&x, &y);
        let nz = m.nonzero_features();
        assert!(
            !nz.contains(&2),
            "noise feature survived: weights {:?}",
            m.weights.to_vec()
        );
        assert!(nz.contains(&0) && nz.contains(&1));
    }

    #[test]
    fn restrict_features_matches_manual_selection() {
        let (x, y) = linearly_separable(100);
        let m = LogisticRegression::default().fit(&x, &y);
        let r = m.restrict_features(&[1]);
        assert_eq!(r.weights.shape(), &[1, 1]);
        assert_eq!(r.weights.get(&[0, 0]), m.weights.get(&[0, 1]));
    }

    #[test]
    fn multiclass_softmax() {
        let n = 300;
        let x = Tensor::from_fn(&[n, 2], |i| {
            let c = (i[0] % 3) as f32;
            if i[1] == 0 {
                c * 3.0
            } else {
                -c + ((i[0] / 3) % 5) as f32 * 0.01
            }
        });
        let y: Vec<i64> = (0..n).map(|i| (i % 3) as i64).collect();
        let m = LogisticRegression::default().fit(&x, &y);
        assert_eq!(m.weights.shape(), &[3, 2]);
        assert!(accuracy(&m.predict(&x), &y) > 0.95);
    }

    #[test]
    fn sgd_classifier_learns() {
        let (x, y) = linearly_separable(200);
        let m = SgdClassifier::new(LinearConfig {
            epochs: 20,
            lr: 0.5,
            ..Default::default()
        })
        .fit(&x, &y);
        assert!(accuracy(&m.predict(&x), &y) > 0.95);
    }

    #[test]
    fn linear_svc_margins() {
        let (x, y) = linearly_separable(200);
        let m = LinearSvc::default().fit(&x, &y);
        assert_eq!(m.link, LinearLink::Margin);
        assert!(accuracy(&m.predict(&x), &y) > 0.95);
    }
}
