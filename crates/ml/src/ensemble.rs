//! The unified fitted tree-ensemble representation consumed by the
//! baselines and by the Hummingbird tree-compilation strategies.

use hb_tensor::Tensor;

use crate::tree::Tree;

/// Output link applied after summing boosted tree scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Link {
    /// Raw score (regression).
    Identity,
    /// Binary classification: score → `[1-p, p]`.
    Sigmoid,
    /// Multiclass classification: per-class scores → softmax.
    Softmax,
}

/// How per-tree leaf payloads combine into a model output.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregation {
    /// Random-forest classification: leaves are class distributions,
    /// averaged over trees (the paper's `ReduceMean` over the batched
    /// tree dimension).
    AverageProba,
    /// Random-forest / plain regression: scalar leaves, averaged.
    AverageValue,
    /// Gradient boosting: scalar leaves summed per class group. Tree `t`
    /// contributes to group `t % n_groups` (round-major layout); the
    /// summed scores plus `base` pass through `link`.
    SumWithLink {
        /// Initial score per group.
        base: Vec<f32>,
        /// Output link function.
        link: Link,
        /// Number of class groups (1 for binary/regression).
        n_groups: usize,
    },
}

impl Aggregation {
    /// Length of the per-row accumulator the scorers need.
    pub fn acc_len(&self, value_width: usize) -> usize {
        match self {
            Aggregation::AverageProba => value_width,
            Aggregation::AverageValue => 1,
            Aggregation::SumWithLink { n_groups, .. } => *n_groups,
        }
    }

    /// Adds one tree's leaf payload into the accumulator.
    #[inline]
    pub fn accumulate(&self, acc: &mut [f32], tree_idx: usize, leaf: &[f32]) {
        match self {
            Aggregation::AverageProba => {
                for (a, &v) in acc.iter_mut().zip(leaf.iter()) {
                    *a += v;
                }
            }
            Aggregation::AverageValue => acc[0] += leaf[0],
            Aggregation::SumWithLink { n_groups, .. } => {
                acc[tree_idx % n_groups] += leaf[0];
            }
        }
    }

    /// Converts an accumulator into the final per-row output.
    pub fn finish(&self, acc: &[f32], n_trees: usize, out: &mut [f32]) {
        match self {
            Aggregation::AverageProba => {
                let inv = 1.0 / n_trees.max(1) as f32;
                for (o, &a) in out.iter_mut().zip(acc.iter()) {
                    *o = a * inv;
                }
            }
            Aggregation::AverageValue => out[0] = acc[0] / n_trees.max(1) as f32,
            Aggregation::SumWithLink {
                base,
                link,
                n_groups,
            } => {
                let z: Vec<f32> = (0..*n_groups)
                    .map(|g| acc[g] + base.get(g).copied().unwrap_or(0.0))
                    .collect();
                match link {
                    Link::Identity => out[0] = z[0],
                    Link::Sigmoid => {
                        let p = 1.0 / (1.0 + (-z[0]).exp());
                        out[0] = 1.0 - p;
                        out[1] = p;
                    }
                    Link::Softmax => {
                        let m = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                        let mut s = 0.0f32;
                        for (o, &v) in out.iter_mut().zip(z.iter()) {
                            *o = (v - m).exp();
                            s += *o;
                        }
                        out.iter_mut().for_each(|o| *o /= s);
                    }
                }
            }
        }
    }

    /// Width of the per-row model output (class count, or 1 for
    /// regression).
    pub fn n_outputs(&self, value_width: usize) -> usize {
        match self {
            Aggregation::AverageProba => value_width,
            Aggregation::AverageValue => 1,
            Aggregation::SumWithLink { link, n_groups, .. } => match link {
                Link::Identity => 1,
                Link::Sigmoid => 2,
                Link::Softmax => *n_groups,
            },
        }
    }
}

/// A fitted tree ensemble: trees plus aggregation semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeEnsemble {
    /// The member trees. For grouped boosting, tree `t` belongs to class
    /// group `t % n_groups`.
    pub trees: Vec<Tree>,
    /// Feature dimensionality the trees index into.
    pub n_features: usize,
    /// Classes predicted (1 for regression).
    pub n_classes: usize,
    /// Aggregation semantics.
    pub agg: Aggregation,
}

impl TreeEnsemble {
    /// Width of the per-row output (`n_classes` for classification, 1 for
    /// regression).
    pub fn n_outputs(&self) -> usize {
        let vw = self.trees.first().map_or(1, |t| t.value_width);
        self.agg.n_outputs(vw)
    }

    /// Maximum depth over member trees.
    pub fn max_depth(&self) -> usize {
        self.trees.iter().map(|t| t.depth()).max().unwrap_or(0)
    }

    /// Maximum node count over member trees.
    pub fn max_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.n_nodes()).max().unwrap_or(0)
    }

    /// Reference imperative scorer: probabilities/values, `[n, outputs]`.
    ///
    /// This is the semantic ground truth the compiled strategies and both
    /// baselines are validated against (the paper's output-validation
    /// experiment, §6.1.1).
    pub fn predict_proba(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let k = self.n_outputs();
        let vw = self.trees.first().map_or(1, |t| t.value_width);
        let mut out = vec![0.0f32; n * k];
        let mut acc = vec![0.0f32; self.agg.acc_len(vw)];
        for r in 0..n {
            acc.iter_mut().for_each(|a| *a = 0.0);
            let row = &xv[r * d..(r + 1) * d];
            for (ti, t) in self.trees.iter().enumerate() {
                self.agg.accumulate(&mut acc, ti, t.predict_row(row));
            }
            self.agg
                .finish(&acc, self.trees.len(), &mut out[r * k..(r + 1) * k]);
        }
        Tensor::from_vec(out, &[n, k])
    }

    /// Hard predictions: argmax class (classification) or value
    /// (regression), as f32.
    pub fn predict(&self, x: &Tensor<f32>) -> Tensor<f32> {
        let proba = self.predict_proba(x);
        if self.n_classes <= 1 {
            return proba.reshape(&[proba.shape()[0]]);
        }
        proba.argmax_axis(1, false).map(|v| v as f32)
    }

    /// Union of features used by any tree (for §5.2 injection).
    pub fn used_features(&self) -> Vec<usize> {
        let mut f: Vec<usize> = self.trees.iter().flat_map(|t| t.used_features()).collect();
        f.sort_unstable();
        f.dedup();
        f
    }
}

// JSON artifact impls (replacing the former serde derives).
hb_json::json_enum!(Link {
    Identity,
    Sigmoid,
    Softmax
});
hb_json::json_enum!(Aggregation {
    AverageProba,
    AverageValue,
    SumWithLink { base, link, n_groups },
});
hb_json::json_struct!(TreeEnsemble {
    trees,
    n_features,
    n_classes,
    agg
});

#[cfg(test)]
mod tests {
    use super::*;

    fn stump(feature: u32, threshold: f32, lv: Vec<f32>, rv: Vec<f32>) -> Tree {
        let vw = lv.len();
        let mut values = vec![0.0; vw];
        values.extend(lv);
        values.extend(rv);
        Tree {
            left: vec![1, -1, -1],
            right: vec![2, -1, -1],
            feature: vec![feature, 0, 0],
            threshold: vec![threshold, 0.0, 0.0],
            values,
            value_width: vw,
        }
    }

    #[test]
    fn softmax_grouping_assigns_trees_round_major() {
        // 2 rounds × 3 classes = 6 trees; class c trees are indices c, c+3.
        let mut trees = Vec::new();
        for round in 0..2 {
            for class in 0..3 {
                // Each tree outputs class+round regardless of input.
                trees.push(Tree::leaf(vec![(class + round) as f32]));
            }
        }
        let e = TreeEnsemble {
            trees,
            n_features: 1,
            n_classes: 3,
            agg: Aggregation::SumWithLink {
                base: vec![0.0; 3],
                link: Link::Softmax,
                n_groups: 3,
            },
        };
        let x = Tensor::from_vec(vec![0.0], &[1, 1]);
        let p = e.predict_proba(&x);
        // Group scores: class0 = 0+1, class1 = 1+2, class2 = 2+3.
        // Softmax is increasing in the score.
        assert!(p.get(&[0, 2]) > p.get(&[0, 1]));
        assert!(p.get(&[0, 1]) > p.get(&[0, 0]));
        let s: f32 = p.to_vec().iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn predict_argmax_matches_proba() {
        let e = TreeEnsemble {
            trees: vec![stump(0, 0.5, vec![0.9, 0.1], vec![0.2, 0.8])],
            n_features: 1,
            n_classes: 2,
            agg: Aggregation::AverageProba,
        };
        let x = Tensor::from_vec(vec![0.0, 1.0], &[2, 1]);
        let y = e.predict(&x);
        assert_eq!(y.to_vec(), vec![0.0, 1.0]);
    }

    #[test]
    fn regression_predict_returns_values() {
        let e = TreeEnsemble {
            trees: vec![stump(0, 0.0, vec![-1.0], vec![4.0])],
            n_features: 1,
            n_classes: 1,
            agg: Aggregation::AverageValue,
        };
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[2, 1]);
        assert_eq!(e.predict(&x).to_vec(), vec![-1.0, 4.0]);
    }

    #[test]
    fn max_depth_and_nodes() {
        let e = TreeEnsemble {
            trees: vec![Tree::leaf(vec![1.0]), stump(0, 0.0, vec![0.0], vec![1.0])],
            n_features: 1,
            n_classes: 1,
            agg: Aggregation::AverageValue,
        };
        assert_eq!(e.max_depth(), 1);
        assert_eq!(e.max_nodes(), 3);
    }
}
