//! Imperative baseline scorers standing in for scikit-learn and ONNX-ML.
//!
//! The paper benchmarks Hummingbird against the frameworks' own native
//! scorers. Those comparators are reproduced here with the performance
//! profiles §6.1.1 reports:
//!
//! * [`SklearnLikeForest`] — each tree is a heap of boxed nodes traversed
//!   recursively; batches parallelize across rows. Like scikit-learn it
//!   has healthy batch throughput but high per-call overhead, so it loses
//!   badly at batch size 1 (Table 8).
//! * [`OnnxLikeForest`] — all trees flattened into contiguous
//!   structure-of-arrays buffers walked iteratively on a single core,
//!   like ONNX Runtime's ONNX-ML kernels circa v1.0: best-in-class at
//!   batch size 1, flat scaling as the batch grows (Figure 4a).

use rayon::prelude::*;

use hb_tensor::Tensor;

use crate::ensemble::{Aggregation, TreeEnsemble};
use crate::tree::Tree;

/// Emulated per-call dispatch overhead of the scikit-learn stack, in
/// microseconds (Python validation + estimator dispatch).
///
/// The paper's scikit-learn latencies — e.g. 1688 s to score the Fraud
/// test set one record at a time (Table 8) — are dominated by Python-side
/// per-call overhead, not tree traversal. A pure-Rust reimplementation
/// has none of that overhead, which would silently flip the paper's
/// request/response ordering. When enabled (bench harness only; off by
/// default so unit tests measure pure kernels), each `predict_batch`
/// call spins for `SKLEARN_CALL_OVERHEAD_US +
/// SKLEARN_PER_TREE_OVERHEAD_US × n_trees` before scoring. Constants are
/// calibrated in DESIGN.md against the paper's per-call latencies.
pub const SKLEARN_CALL_OVERHEAD_US: f64 = 150.0;
/// Per-tree component of the emulated scikit-learn dispatch overhead.
pub const SKLEARN_PER_TREE_OVERHEAD_US: f64 = 8.0;
/// Emulated per-call overhead of the ONNX Runtime C++ session (input
/// validation + session dispatch) — small, which is exactly why ONNX-ML
/// wins the paper's request/response experiments.
pub const ONNX_CALL_OVERHEAD_US: f64 = 15.0;
/// Emulated per-operator dispatch overhead of a scikit-learn `Pipeline`
/// `predict` call (Python attribute lookups, input validation, array
/// wrapping per step). Applied by the bench harness to end-to-end
/// pipeline baselines (Figures 9 and 12).
pub const SKLEARN_PER_OP_OVERHEAD_US: f64 = 80.0;

/// Spins for the emulated scikit-learn pipeline dispatch overhead of a
/// `n_ops`-operator pipeline call. Bench-harness use only.
pub fn emulate_sklearn_pipeline_dispatch(n_ops: usize) {
    spin_us(SKLEARN_CALL_OVERHEAD_US + SKLEARN_PER_OP_OVERHEAD_US * n_ops as f64);
}

/// Busy-waits for `us` microseconds (sleep granularity is too coarse).
fn spin_us(us: f64) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs_f64(us * 1e-6);
    while std::time::Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// One node of a pointer-linked tree.
enum BoxNode {
    /// Terminal node carrying the leaf payload.
    Leaf(Vec<f32>),
    /// Internal `x[feature] < threshold` decision.
    Split {
        feature: usize,
        threshold: f32,
        left: Box<BoxNode>,
        right: Box<BoxNode>,
    },
}

impl BoxNode {
    fn from_tree(t: &Tree, i: usize) -> BoxNode {
        if t.is_leaf(i) {
            BoxNode::Leaf(t.value(i).to_vec())
        } else {
            BoxNode::Split {
                feature: t.feature[i] as usize,
                threshold: t.threshold[i],
                left: Box::new(BoxNode::from_tree(t, t.left[i] as usize)),
                right: Box::new(BoxNode::from_tree(t, t.right[i] as usize)),
            }
        }
    }

    fn score<'a>(&'a self, row: &[f32]) -> &'a [f32] {
        match self {
            BoxNode::Leaf(v) => v,
            BoxNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] < *threshold {
                    left.score(row)
                } else {
                    right.score(row)
                }
            }
        }
    }
}

/// scikit-learn-profile ensemble scorer (recursive, row-parallel).
pub struct SklearnLikeForest {
    trees: Vec<BoxNode>,
    agg: Aggregation,
    n_outputs: usize,
    value_width: usize,
    emulate_dispatch: bool,
}

impl SklearnLikeForest {
    /// Builds the pointer-linked representation from a fitted ensemble.
    pub fn new(ensemble: &TreeEnsemble) -> SklearnLikeForest {
        SklearnLikeForest {
            trees: ensemble
                .trees
                .iter()
                .map(|t| BoxNode::from_tree(t, 0))
                .collect(),
            agg: ensemble.agg.clone(),
            n_outputs: ensemble.n_outputs(),
            value_width: ensemble.trees.first().map_or(1, |t| t.value_width),
            emulate_dispatch: false,
        }
    }

    /// Enables the documented per-call dispatch-overhead emulation
    /// ([`SKLEARN_CALL_OVERHEAD_US`]); used by the bench harness.
    pub fn with_dispatch_overhead(mut self) -> SklearnLikeForest {
        self.emulate_dispatch = true;
        self
    }

    /// Scores a batch, returning `[n, n_outputs]` (probabilities for
    /// classification, values for regression).
    pub fn predict_batch(&self, x: &Tensor<f32>) -> Tensor<f32> {
        if self.emulate_dispatch {
            spin_us(
                SKLEARN_CALL_OVERHEAD_US + SKLEARN_PER_TREE_OVERHEAD_US * self.trees.len() as f64,
            );
        }
        let (n, d) = (x.shape()[0], x.shape()[1]);
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let k = self.n_outputs;
        let mut out = vec![0.0f32; n * k];
        out.par_chunks_mut(k).enumerate().for_each(|(r, orow)| {
            // Mirror scikit-learn's per-call temporary buffers.
            let mut acc = vec![0.0f32; self.agg.acc_len(self.value_width)];
            let row = &xv[r * d..(r + 1) * d];
            for (ti, t) in self.trees.iter().enumerate() {
                self.agg.accumulate(&mut acc, ti, t.score(row));
            }
            self.agg.finish(&acc, self.trees.len(), orow);
        });
        Tensor::from_vec(out, &[n, k])
    }
}

/// ONNX-ML-profile ensemble scorer (flat arrays, iterative, single core).
pub struct OnnxLikeForest {
    /// Per-tree node offset into the flat arrays.
    tree_offset: Vec<usize>,
    left: Vec<i32>,
    right: Vec<i32>,
    feature: Vec<u32>,
    threshold: Vec<f32>,
    values: Vec<f32>,
    value_width: usize,
    agg: Aggregation,
    n_outputs: usize,
    emulate_dispatch: bool,
}

impl OnnxLikeForest {
    /// Flattens a fitted ensemble into contiguous buffers.
    pub fn new(ensemble: &TreeEnsemble) -> OnnxLikeForest {
        let mut tree_offset = Vec::with_capacity(ensemble.trees.len());
        let (mut left, mut right, mut feature, mut threshold, mut values) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        let value_width = ensemble.trees.first().map_or(1, |t| t.value_width);
        for t in &ensemble.trees {
            tree_offset.push(left.len());
            left.extend_from_slice(&t.left);
            right.extend_from_slice(&t.right);
            feature.extend_from_slice(&t.feature);
            threshold.extend_from_slice(&t.threshold);
            values.extend_from_slice(&t.values);
        }
        OnnxLikeForest {
            tree_offset,
            left,
            right,
            feature,
            threshold,
            values,
            value_width,
            agg: ensemble.agg.clone(),
            n_outputs: ensemble.n_outputs(),
            emulate_dispatch: false,
        }
    }

    /// Enables the documented per-call session-overhead emulation
    /// ([`ONNX_CALL_OVERHEAD_US`]); used by the bench harness.
    pub fn with_dispatch_overhead(mut self) -> OnnxLikeForest {
        self.emulate_dispatch = true;
        self
    }

    /// Scores a batch serially (the single-record-optimized profile).
    pub fn predict_batch(&self, x: &Tensor<f32>) -> Tensor<f32> {
        if self.emulate_dispatch {
            spin_us(ONNX_CALL_OVERHEAD_US);
        }
        let (n, d) = (x.shape()[0], x.shape()[1]);
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let k = self.n_outputs;
        let mut out = vec![0.0f32; n * k];
        let mut acc = vec![0.0f32; self.agg.acc_len(self.value_width)];
        for r in 0..n {
            let row = &xv[r * d..(r + 1) * d];
            acc.iter_mut().for_each(|a| *a = 0.0);
            for (ti, &off) in self.tree_offset.iter().enumerate() {
                let mut i = off;
                while self.left[i] >= 0 {
                    i = if row[self.feature[i] as usize] < self.threshold[i] {
                        off + self.left[i] as usize
                    } else {
                        off + self.right[i] as usize
                    };
                }
                let v = &self.values[i * self.value_width..(i + 1) * self.value_width];
                self.agg.accumulate(&mut acc, ti, v);
            }
            self.agg
                .finish(&acc, self.tree_offset.len(), &mut out[r * k..(r + 1) * k]);
        }
        Tensor::from_vec(out, &[n, k])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::Link;

    /// Hand-built two-tree binary RF ensemble.
    fn toy_rf() -> TreeEnsemble {
        // Tree A: x0 < 0.5 → [1,0] else [0,1]
        let a = Tree {
            left: vec![1, -1, -1],
            right: vec![2, -1, -1],
            feature: vec![0, 0, 0],
            threshold: vec![0.5, 0.0, 0.0],
            values: vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0],
            value_width: 2,
        };
        // Tree B: x1 < 1.0 → [0.8,0.2] else [0.2,0.8]
        let b = Tree {
            left: vec![1, -1, -1],
            right: vec![2, -1, -1],
            feature: vec![1, 0, 0],
            threshold: vec![1.0, 0.0, 0.0],
            values: vec![0.0, 0.0, 0.8, 0.2, 0.2, 0.8],
            value_width: 2,
        };
        TreeEnsemble {
            trees: vec![a, b],
            n_features: 2,
            n_classes: 2,
            agg: Aggregation::AverageProba,
        }
    }

    fn toy_x() -> Tensor<f32> {
        Tensor::from_vec(vec![0.0, 0.0, 1.0, 2.0, 0.0, 2.0, 1.0, 0.0], &[4, 2])
    }

    #[test]
    fn both_baselines_agree_with_reference() {
        let e = toy_rf();
        let x = toy_x();
        let want = e.predict_proba(&x);
        let sk = SklearnLikeForest::new(&e).predict_batch(&x);
        let ox = OnnxLikeForest::new(&e).predict_batch(&x);
        assert_eq!(want.to_vec(), sk.to_vec());
        assert_eq!(want.to_vec(), ox.to_vec());
    }

    #[test]
    fn rf_probabilities_average() {
        let e = toy_rf();
        let x = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
        let p = OnnxLikeForest::new(&e).predict_batch(&x);
        // Tree A → [1,0], tree B → [0.8,0.2]; mean = [0.9, 0.1].
        assert!((p.get(&[0, 0]) - 0.9).abs() < 1e-6);
        assert!((p.get(&[0, 1]) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn gbdt_link_applies_sigmoid() {
        // One regression tree, x0 < 0 → -2 else +2, base 0, sigmoid link.
        let t = Tree {
            left: vec![1, -1, -1],
            right: vec![2, -1, -1],
            feature: vec![0, 0, 0],
            threshold: vec![0.0, 0.0, 0.0],
            values: vec![0.0, -2.0, 2.0],
            value_width: 1,
        };
        let e = TreeEnsemble {
            trees: vec![t],
            n_features: 1,
            n_classes: 2,
            agg: Aggregation::SumWithLink {
                base: vec![0.0],
                link: Link::Sigmoid,
                n_groups: 1,
            },
        };
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[2, 1]);
        let p = SklearnLikeForest::new(&e).predict_batch(&x);
        let sig = |v: f32| 1.0 / (1.0 + (-v).exp());
        assert!((p.get(&[0, 1]) - sig(-2.0)).abs() < 1e-6);
        assert!((p.get(&[1, 1]) - sig(2.0)).abs() < 1e-6);
        assert!((p.get(&[0, 0]) + p.get(&[0, 1]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn regression_identity_link() {
        let t = Tree {
            left: vec![-1],
            right: vec![-1],
            feature: vec![0],
            threshold: vec![0.0],
            values: vec![3.5],
            value_width: 1,
        };
        let e = TreeEnsemble {
            trees: vec![t.clone(), t],
            n_features: 1,
            n_classes: 1,
            agg: Aggregation::AverageValue,
        };
        let x = Tensor::from_vec(vec![0.0], &[1, 1]);
        let p = OnnxLikeForest::new(&e).predict_batch(&x);
        assert!((p.get(&[0, 0]) - 3.5).abs() < 1e-6);
    }
}
