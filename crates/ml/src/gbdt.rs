//! Gradient-boosted decision trees with two growth policies.
//!
//! `Growth::DepthWise` reproduces XGBoost's balanced trees;
//! `Growth::LeafWise` reproduces LightGBM's deep narrow trees — the
//! structural difference the paper leans on when comparing strategies
//! across training algorithms (§6.1.1). Leaves store Newton steps
//! `-Σg / (Σh + λ)` scaled by the learning rate.

use rand::prelude::*;

use hb_tensor::Tensor;

use crate::ensemble::{Aggregation, Link, TreeEnsemble};
use crate::tree::{train_regression_tree, Binner, GradPair, Growth, TreeConfig};

/// Boosting hyper-parameters.
#[derive(Debug, Clone)]
pub struct GbdtConfig {
    /// Boosting rounds (trees per class group).
    pub n_rounds: usize,
    /// Shrinkage applied to each tree's leaf values.
    pub learning_rate: f32,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Maximum leaves per tree (effective with leaf-wise growth).
    pub max_leaves: usize,
    /// Growth policy.
    pub growth: Growth,
    /// Histogram bins per feature.
    pub n_bins: usize,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// RNG seed (feature sampling only; boosting itself is
    /// deterministic).
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_rounds: 100,
            learning_rate: 0.1,
            max_depth: 6,
            max_leaves: 31,
            growth: Growth::DepthWise,
            n_bins: 64,
            lambda: 1.0,
            seed: 0,
        }
    }
}

impl GbdtConfig {
    /// Depth-wise preset mirroring XGBoost defaults.
    pub fn xgboost_like() -> GbdtConfig {
        GbdtConfig {
            growth: Growth::DepthWise,
            max_leaves: usize::MAX,
            ..GbdtConfig::default()
        }
    }

    /// Leaf-wise preset mirroring LightGBM defaults.
    pub fn lightgbm_like() -> GbdtConfig {
        GbdtConfig {
            growth: Growth::LeafWise,
            max_depth: 16,
            max_leaves: 31,
            ..GbdtConfig::default()
        }
    }

    fn tree_config(&self) -> TreeConfig {
        TreeConfig {
            max_depth: self.max_depth,
            max_leaves: self.max_leaves,
            growth: self.growth,
            n_bins: self.n_bins,
            lambda: self.lambda,
            min_samples_leaf: 1,
            ..TreeConfig::default()
        }
    }
}

/// A fitted gradient-boosting classifier (binary or multiclass).
#[derive(Debug, Clone)]
pub struct GradientBoostingClassifier {
    /// The fitted ensemble: trees stored round-major
    /// (`round0 class0, round0 class1, …`), summed per class group with a
    /// sigmoid/softmax link.
    pub ensemble: TreeEnsemble,
    config: GbdtConfig,
}

impl GradientBoostingClassifier {
    /// Creates an untrained booster.
    pub fn new(config: GbdtConfig) -> GradientBoostingClassifier {
        GradientBoostingClassifier {
            ensemble: TreeEnsemble {
                trees: vec![],
                n_features: 0,
                n_classes: 0,
                agg: Aggregation::SumWithLink {
                    base: vec![],
                    link: Link::Sigmoid,
                    n_groups: 1,
                },
            },
            config,
        }
    }

    /// Trains on `x` and integer labels `0..C`.
    pub fn fit(mut self, x: &Tensor<f32>, y: &[i64]) -> GradientBoostingClassifier {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        assert_eq!(n, y.len(), "x/y length mismatch");
        #[allow(clippy::disallowed_methods)] // invariant, message documents it
        let n_classes = (*y.iter().max().expect("empty labels") as usize) + 1;
        let binner = Binner::fit(x, self.config.n_bins);
        let binned = binner.bin_matrix(x);
        let cfg = self.config.tree_config();
        let lr = self.config.learning_rate;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let xs = x.to_contiguous();
        let xv = xs.as_slice();

        if n_classes == 2 {
            // Binary: one tree per round on logistic gradients.
            let pos = y.iter().filter(|&&v| v == 1).count() as f32 / n as f32;
            let base = (pos.clamp(1e-6, 1.0 - 1e-6) / (1.0 - pos.clamp(1e-6, 1.0 - 1e-6))).ln();
            let mut score = vec![base; n];
            let mut trees = Vec::with_capacity(self.config.n_rounds);
            for _ in 0..self.config.n_rounds {
                let mut grad = vec![0.0f32; n];
                let mut hess = vec![0.0f32; n];
                for r in 0..n {
                    let p = 1.0 / (1.0 + (-score[r]).exp());
                    grad[r] = p - y[r] as f32;
                    hess[r] = (p * (1.0 - p)).max(1e-6);
                }
                let targets = GradPair { grad, hess };
                let mut tree = train_regression_tree(
                    &binned, n, d, &binner, &targets, &cfg, -1.0, &mut rng, None,
                );
                tree.values.iter_mut().for_each(|v| *v *= lr);
                for r in 0..n {
                    score[r] += tree.predict_row(&xv[r * d..(r + 1) * d])[0];
                }
                trees.push(tree);
            }
            self.ensemble = TreeEnsemble {
                trees,
                n_features: d,
                n_classes: 2,
                agg: Aggregation::SumWithLink {
                    base: vec![base],
                    link: Link::Sigmoid,
                    n_groups: 1,
                },
            };
        } else {
            // Multiclass: C trees per round on softmax gradients.
            let mut score = vec![0.0f32; n * n_classes];
            let mut trees = Vec::with_capacity(self.config.n_rounds * n_classes);
            for _ in 0..self.config.n_rounds {
                // Softmax probabilities for the current scores.
                let mut probs = vec![0.0f32; n * n_classes];
                for r in 0..n {
                    let row = &score[r * n_classes..(r + 1) * n_classes];
                    let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let mut s = 0.0;
                    for c in 0..n_classes {
                        let e = (row[c] - m).exp();
                        probs[r * n_classes + c] = e;
                        s += e;
                    }
                    for c in 0..n_classes {
                        probs[r * n_classes + c] /= s;
                    }
                }
                for c in 0..n_classes {
                    let mut grad = vec![0.0f32; n];
                    let mut hess = vec![0.0f32; n];
                    for r in 0..n {
                        let p = probs[r * n_classes + c];
                        grad[r] = p - f32::from(y[r] as usize == c);
                        hess[r] = (p * (1.0 - p)).max(1e-6);
                    }
                    let targets = GradPair { grad, hess };
                    let mut tree = train_regression_tree(
                        &binned, n, d, &binner, &targets, &cfg, -1.0, &mut rng, None,
                    );
                    tree.values.iter_mut().for_each(|v| *v *= lr);
                    for r in 0..n {
                        score[r * n_classes + c] += tree.predict_row(&xv[r * d..(r + 1) * d])[0];
                    }
                    trees.push(tree);
                }
            }
            self.ensemble = TreeEnsemble {
                trees,
                n_features: d,
                n_classes,
                agg: Aggregation::SumWithLink {
                    base: vec![0.0; n_classes],
                    link: Link::Softmax,
                    n_groups: n_classes,
                },
            };
        }
        self
    }

    /// Class probabilities `[n, C]`.
    pub fn predict_proba(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.ensemble.predict_proba(x)
    }

    /// Hard class predictions.
    pub fn predict(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.ensemble.predict(x)
    }
}

/// A fitted gradient-boosting regressor (squared loss).
#[derive(Debug, Clone)]
pub struct GradientBoostingRegressor {
    /// The fitted ensemble (identity link over summed leaves).
    pub ensemble: TreeEnsemble,
    config: GbdtConfig,
}

impl GradientBoostingRegressor {
    /// Creates an untrained booster.
    pub fn new(config: GbdtConfig) -> GradientBoostingRegressor {
        GradientBoostingRegressor {
            ensemble: TreeEnsemble {
                trees: vec![],
                n_features: 0,
                n_classes: 1,
                agg: Aggregation::SumWithLink {
                    base: vec![0.0],
                    link: Link::Identity,
                    n_groups: 1,
                },
            },
            config,
        }
    }

    /// Trains on `x` and real-valued targets.
    pub fn fit(mut self, x: &Tensor<f32>, y: &[f32]) -> GradientBoostingRegressor {
        let (n, d) = (x.shape()[0], x.shape()[1]);
        assert_eq!(n, y.len(), "x/y length mismatch");
        let binner = Binner::fit(x, self.config.n_bins);
        let binned = binner.bin_matrix(x);
        let cfg = self.config.tree_config();
        let lr = self.config.learning_rate;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let base = y.iter().sum::<f32>() / n as f32;
        let mut score = vec![base; n];
        let xs = x.to_contiguous();
        let xv = xs.as_slice();
        let mut trees = Vec::with_capacity(self.config.n_rounds);
        for _ in 0..self.config.n_rounds {
            let grad: Vec<f32> = (0..n).map(|r| score[r] - y[r]).collect();
            let targets = GradPair {
                grad,
                hess: vec![1.0; n],
            };
            let mut tree =
                train_regression_tree(&binned, n, d, &binner, &targets, &cfg, -1.0, &mut rng, None);
            tree.values.iter_mut().for_each(|v| *v *= lr);
            for r in 0..n {
                score[r] += tree.predict_row(&xv[r * d..(r + 1) * d])[0];
            }
            trees.push(tree);
        }
        self.ensemble = TreeEnsemble {
            trees,
            n_features: d,
            n_classes: 1,
            agg: Aggregation::SumWithLink {
                base: vec![base],
                link: Link::Identity,
                n_groups: 1,
            },
        };
        self
    }

    /// Predicted values `[n]`.
    pub fn predict(&self, x: &Tensor<f32>) -> Tensor<f32> {
        self.ensemble.predict(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn moons(n: usize, seed: u64) -> (Tensor<f32>, Vec<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let t = rng.gen_range(0.0..std::f32::consts::PI);
            let (mut px, mut py) = (t.cos(), t.sin());
            if c == 1 {
                px = 1.0 - px;
                py = 0.5 - py;
            }
            xs.push(px + rng.gen_range(-0.1..0.1));
            xs.push(py + rng.gen_range(-0.1..0.1));
            ys.push(c as i64);
        }
        (Tensor::from_vec(xs, &[n, 2]), ys)
    }

    #[test]
    fn binary_boosting_fits_moons() {
        let (x, y) = moons(400, 9);
        let m = GradientBoostingClassifier::new(GbdtConfig {
            n_rounds: 40,
            max_depth: 3,
            ..GbdtConfig::default()
        })
        .fit(&x, &y);
        let acc = accuracy(&m.predict(&x), &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn multiclass_boosting_three_blobs() {
        let n = 300;
        let x = Tensor::from_fn(&[n, 2], |i| {
            let c = (i[0] % 3) as f32;
            c * 2.0 + (i[1] as f32) * 0.1 + ((i[0] / 3) as f32 * 0.003)
        });
        let y: Vec<i64> = (0..n).map(|i| (i % 3) as i64).collect();
        let m = GradientBoostingClassifier::new(GbdtConfig {
            n_rounds: 15,
            max_depth: 3,
            ..GbdtConfig::default()
        })
        .fit(&x, &y);
        assert_eq!(m.ensemble.trees.len(), 15 * 3);
        let acc = accuracy(&m.predict(&x), &y);
        assert!(acc > 0.95, "accuracy {acc}");
        // Probabilities normalize.
        let p = m.predict_proba(&x);
        let s = p.get(&[0, 0]) + p.get(&[0, 1]) + p.get(&[0, 2]);
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn regressor_reduces_training_error_with_rounds() {
        let n = 300;
        let x = Tensor::from_fn(&[n, 1], |i| i[0] as f32 / n as f32);
        let y: Vec<f32> = (0..n).map(|i| (i as f32 / n as f32 * 6.0).sin()).collect();
        let mse = |rounds: usize| {
            let m = GradientBoostingRegressor::new(GbdtConfig {
                n_rounds: rounds,
                max_depth: 3,
                ..GbdtConfig::default()
            })
            .fit(&x, &y);
            let p = m.predict(&x).to_vec();
            p.iter()
                .zip(y.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                / n as f32
        };
        let short = mse(5);
        let long = mse(60);
        assert!(long < short * 0.5, "no improvement: {short} -> {long}");
        assert!(long < 0.01, "final mse {long}");
    }

    #[test]
    fn lightgbm_like_trees_are_deeper_than_xgboost_like() {
        let (x, y) = moons(400, 21);
        let xgb = GradientBoostingClassifier::new(GbdtConfig {
            n_rounds: 10,
            max_depth: 4,
            ..GbdtConfig::xgboost_like()
        })
        .fit(&x, &y);
        let lgbm = GradientBoostingClassifier::new(GbdtConfig {
            n_rounds: 10,
            max_leaves: 16,
            ..GbdtConfig::lightgbm_like()
        })
        .fit(&x, &y);
        assert!(
            lgbm.ensemble.max_depth() > xgb.ensemble.max_depth(),
            "lgbm {} !> xgb {}",
            lgbm.ensemble.max_depth(),
            xgb.ensemble.max_depth()
        );
    }
}
