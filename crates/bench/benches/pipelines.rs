//! Criterion benchmarks for end-to-end pipelines (paper Figure 12
//! sample): scikit-learn-style imperative scoring vs the compiled tensor
//! path on representative OpenML-CC18-like tasks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hb_core::{compile, CompileOptions};
use hb_data::openml_cc18_like;
use hb_pipeline::fit_pipeline;

fn bench_pipelines(c: &mut Criterion) {
    let tasks = openml_cc18_like(4, 2_000, 64, 33);
    let mut group = c.benchmark_group("fig12_pipelines");
    group.sample_size(10);
    for (i, task) in tasks.iter().enumerate() {
        let ds = &task.dataset;
        let pipe = fit_pipeline(&task.specs, &ds.x_train, &ds.y_train);
        group.bench_with_input(BenchmarkId::new("sklearn", i), &pipe, |b, p| {
            b.iter(|| p.predict_proba(&ds.x_test))
        });
        let model = compile(&pipe, &CompileOptions::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("hb-compiled", i), &model, |b, m| {
            b.iter(|| m.predict_proba(&ds.x_test).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
