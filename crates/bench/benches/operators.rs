//! Criterion micro-benchmarks for single operators (paper Tables 11–12):
//! imperative scikit-learn-style scoring vs the compiled tensor path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hb_core::{compile, CompileOptions};
use hb_data::iris_like;
use hb_ml::linear::LinearConfig;
use hb_pipeline::{fit_pipeline, OpSpec};

fn bench_operators(c: &mut Criterion) {
    let ds = iris_like(6_000, 11);
    let specs: Vec<(&str, OpSpec)> = vec![
        (
            "LogisticRegression",
            OpSpec::LogisticRegression(LinearConfig {
                epochs: 30,
                ..Default::default()
            }),
        ),
        (
            "BernoulliNB",
            OpSpec::BernoulliNb {
                alpha: 1.0,
                binarize: 0.0,
            },
        ),
        ("Binarizer", OpSpec::Binarizer { threshold: 0.0 }),
        ("MinMaxScaler", OpSpec::MinMaxScaler),
        (
            "Normalizer",
            OpSpec::Normalizer {
                norm: hb_ml::featurize::Norm::L2,
            },
        ),
        (
            "PolynomialFeatures",
            OpSpec::PolynomialFeatures {
                include_bias: true,
                interaction_only: false,
            },
        ),
        ("StandardScaler", OpSpec::StandardScaler),
        (
            "DecisionTreeClassifier",
            OpSpec::DecisionTreeClassifier { max_depth: 8 },
        ),
    ];
    let mut group = c.benchmark_group("table11_operators");
    group.sample_size(10);
    for (name, spec) in specs {
        let pipe = fit_pipeline(std::slice::from_ref(&spec), &ds.x_train, &ds.y_train);
        group.bench_with_input(BenchmarkId::new("sklearn", name), &pipe, |b, p| {
            b.iter(|| p.predict_proba(&ds.x_test))
        });
        let model = compile(&pipe, &CompileOptions::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("hb-compiled", name), &model, |b, m| {
            b.iter(|| m.predict_proba(&ds.x_test).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
