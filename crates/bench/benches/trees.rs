//! Criterion micro-benchmarks for tree-ensemble scoring (paper Tables
//! 7–8): baselines vs the compiled tensor backends at batch and
//! single-record granularity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hb_backend::{Backend, Device};
use hb_bench::measure::{hb_scorer, onnx_scorer, sklearn_scorer, train_algo, Algo};
use hb_core::TreeStrategy;
use hb_data::{tree_bench_dataset, TREE_BENCH_SPECS};

fn bench_batch(c: &mut Criterion) {
    let ds = tree_bench_dataset(&TREE_BENCH_SPECS[0], 4_000, 7); // fraud-like
    let mut group = c.benchmark_group("table7_batch_fraud");
    group.sample_size(10);
    for algo in Algo::ALL {
        let e = train_algo(&ds, algo, 10, 6);
        let batch = ds.n_test();
        let scorers = vec![
            sklearn_scorer(&e),
            onnx_scorer(&e),
            hb_scorer(
                &e,
                Backend::Script,
                Device::cpu(),
                TreeStrategy::Auto,
                batch,
            ),
            hb_scorer(
                &e,
                Backend::Compiled,
                Device::cpu(),
                TreeStrategy::Auto,
                batch,
            ),
        ];
        for s in scorers {
            group.bench_with_input(
                BenchmarkId::new(s.name.clone(), algo.label()),
                &s,
                |b, s| b.iter(|| s.score(&ds.x_test)),
            );
        }
    }
    group.finish();
}

fn bench_request_response(c: &mut Criterion) {
    let ds = tree_bench_dataset(&TREE_BENCH_SPECS[0], 2_000, 7);
    let e = train_algo(&ds, Algo::XgBoost, 10, 6);
    let one = ds.x_test.slice(0, 0, 1).to_contiguous();
    let mut group = c.benchmark_group("table8_request_response");
    group.sample_size(20);
    let scorers = vec![
        sklearn_scorer(&e),
        onnx_scorer(&e),
        hb_scorer(&e, Backend::Compiled, Device::cpu1(), TreeStrategy::Auto, 1),
    ];
    for s in scorers {
        group.bench_function(s.name.clone(), |b| b.iter(|| s.score(&one)));
    }
    group.finish();
}

fn bench_conversion(c: &mut Criterion) {
    // Table 10: conversion time per backend.
    let ds = tree_bench_dataset(&TREE_BENCH_SPECS[0], 2_000, 7);
    let e = train_algo(&ds, Algo::RandomForest, 20, 6);
    let mut group = c.benchmark_group("table10_conversion");
    group.sample_size(20);
    for backend in [Backend::Eager, Backend::Script, Backend::Compiled] {
        group.bench_function(format!("{backend:?}"), |b| {
            b.iter(|| hb_bench::measure::hb_model(&e, backend, Device::cpu(), 10_000))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch,
    bench_request_response,
    bench_conversion
);
criterion_main!(benches);
