//! Criterion benchmarks for the runtime-independent optimizations (paper
//! Figures 9–10): feature-selection push-down and injection on a
//! Nomao-like categorical pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hb_core::{compile, CompileOptions};
use hb_data::nomao_categorical;
use hb_ml::featurize::ImputeStrategy;
use hb_ml::linear::{LinearConfig, Penalty};
use hb_pipeline::{fit_pipeline, OpSpec};

fn bench_pushdown(c: &mut Criterion) {
    let ds = nomao_categorical(3_000, 21);
    let mut group = c.benchmark_group("fig9_pushdown");
    group.sample_size(10);
    for pct in [10usize, 50, 100] {
        let specs = vec![
            OpSpec::SimpleImputer {
                strategy: ImputeStrategy::Mean,
            },
            OpSpec::OneHotEncoder,
            OpSpec::StandardScaler,
            OpSpec::SelectPercentile { percentile: pct },
            OpSpec::LogisticRegression(LinearConfig {
                epochs: 20,
                ..Default::default()
            }),
        ];
        let pipe = fit_pipeline(&specs, &ds.x_train, &ds.y_train);
        for (label, optimize) in [("plain", false), ("pushdown", true)] {
            let model = compile(
                &pipe,
                &CompileOptions {
                    optimize_pipeline: optimize,
                    ..Default::default()
                },
            )
            .unwrap();
            group.bench_with_input(
                BenchmarkId::new(label, format!("pct{pct}")),
                &model,
                |b, m| b.iter(|| m.predict_proba(&ds.x_test).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_injection(c: &mut Criterion) {
    let ds = nomao_categorical(3_000, 22);
    let mut group = c.benchmark_group("fig10_injection");
    group.sample_size(10);
    for alpha in [0.03f32, 0.005] {
        let specs = vec![
            OpSpec::SimpleImputer {
                strategy: ImputeStrategy::Mean,
            },
            OpSpec::StandardScaler,
            OpSpec::LogisticRegression(LinearConfig {
                penalty: Penalty::L1(alpha),
                epochs: 60,
                ..Default::default()
            }),
        ];
        let pipe = fit_pipeline(&specs, &ds.x_train, &ds.y_train);
        for (label, optimize) in [("plain", false), ("injected", true)] {
            let model = compile(
                &pipe,
                &CompileOptions {
                    optimize_pipeline: optimize,
                    ..Default::default()
                },
            )
            .unwrap();
            group.bench_with_input(
                BenchmarkId::new(label, format!("l1_{alpha}")),
                &model,
                |b, m| b.iter(|| m.predict_proba(&ds.x_test).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pushdown, bench_injection);
criterion_main!(benches);
