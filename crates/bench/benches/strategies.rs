//! Criterion benchmarks for the tree-compilation strategies (paper
//! Figure 8): GEMM vs TreeTraversal vs PerfectTreeTraversal across tree
//! depth and batch size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hb_backend::{Backend, Device};
use hb_bench::measure::{hb_scorer, train_algo, Algo};
use hb_core::TreeStrategy;
use hb_data::strategy_dataset;

fn bench_strategies(c: &mut Criterion) {
    let ds = strategy_dataset(5);
    let mut group = c.benchmark_group("fig8_strategies");
    group.sample_size(10);
    for depth in [3usize, 7, 12] {
        let e = train_algo(&ds, Algo::RandomForest, 20, depth);
        for batch in [1usize, 1000] {
            let x = ds
                .x_test
                .slice(0, 0, batch.min(ds.n_test()))
                .to_contiguous();
            for strat in [
                TreeStrategy::Gemm,
                TreeStrategy::TreeTraversal,
                TreeStrategy::PerfectTreeTraversal,
            ] {
                if strat == TreeStrategy::PerfectTreeTraversal
                    && e.max_depth() > hb_core::strategies::traversal::PTT_MAX_DEPTH
                {
                    continue;
                }
                let s = hb_scorer(&e, Backend::Compiled, Device::cpu1(), strat, batch);
                group.bench_with_input(
                    BenchmarkId::new(format!("d{depth}_b{batch}"), strat.label()),
                    &s,
                    |b, s| b.iter(|| s.score(&x)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
