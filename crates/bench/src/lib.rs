//! Shared helpers for the bench harness (see `src/bin/tables.rs` and the
//! Criterion benches). The substantive code lives in the binary and bench
//! targets; this library hosts reusable measurement utilities.

pub mod measure;
