//! Shared helpers for the bench harness (see `src/bin/tables.rs` and the
//! Criterion benches). The substantive code lives in the binary and bench
//! targets; this library hosts reusable measurement utilities.

// Pure-safe-Rust policy: every crate in this workspace is 100% safe
// Rust; see DESIGN.md ("Unsafe-code policy").
#![forbid(unsafe_code)]

pub mod measure;
