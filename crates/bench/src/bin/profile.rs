//! Diagnostic per-op profiler for a compiled model (developer tool).
//!
//! ```text
//! cargo run --release -p hb-bench --bin profile
//! ```

use hb_backend::optimize::PassToggles;
use hb_backend::{Backend, Device, Executable};
use hb_core::{compile, CompileOptions, TreeStrategy};
use hb_pipeline::{fit_pipeline, OpSpec};

fn main() {
    let ds = hb_data::iris_like(40_000, 42);
    let specs = vec![
        OpSpec::StandardScaler,
        OpSpec::MinMaxScaler,
        OpSpec::GbdtClassifier(hb_ml::gbdt::GbdtConfig {
            n_rounds: 20,
            max_depth: 3,
            ..Default::default()
        }),
    ];
    let pipe = fit_pipeline(&specs, &ds.x_train, &ds.y_train);
    let raw = compile(
        &pipe,
        &CompileOptions {
            backend: Backend::Eager,
            tree_strategy: TreeStrategy::Gemm,
            optimize_pipeline: false,
            ..Default::default()
        },
    )
    .unwrap();
    let graph = raw.executable().graph().clone();
    let x = hb_tensor::DynTensor::F32(ds.x_test.clone());
    for (label, toggles) in [
        (
            "none",
            PassToggles {
                fold: false,
                cse: false,
                value_rewrites: false,
                fuse: false,
            },
        ),
        ("all", PassToggles::default()),
    ] {
        let exe = Executable::with_toggles(graph.clone(), toggles, Device::cpu());
        exe.run(std::slice::from_ref(&x)).unwrap(); // warm-up
        println!("--- {label} ---");
        for (op, d) in exe.profile(std::slice::from_ref(&x)) {
            if d.as_micros() > 200 {
                println!("{:>10.2?}  {op}", d);
            }
        }
    }
}
