//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! cargo run -p hb-bench --release --bin tables -- <experiment> [--scale S]
//! ```
//!
//! Experiments: `table7` `table8` `table9` `table10` `table11` `table12`
//! `fig4` `fig6` `fig7` `fig8` `fig9` `fig10` `fig12` `memplan` `lir`
//! `cost` `ablation` `sparse` `soak` `store` `validate` `all`.
//!
//! Sizes are scaled to laptop budgets (synthetic datasets, fewer/shallower
//! trees than the paper's 500×8) — `--scale` multiplies dataset rows, and
//! `--trees`/`--depth` override the ensemble size. Columns marked `(sim)`
//! report *modeled* latency on simulated GPUs (see DESIGN.md). JSON copies
//! of every table land in `bench_results/`.

use std::collections::HashMap;
use std::time::Instant;

use hb_backend::device::{CPU_VM_HOURLY_USD, K80, P100, V100};
use hb_backend::{Backend, Device};
use hb_bench::measure::{
    fil_scorer, fmt_secs, hb_model, hb_scorer, lir_profiles, memplan_profiles, onnx_scorer,
    sklearn_scorer, sklearn_scorer_1core, train_algo, truncated_mean_secs, wall, Algo, Scorer,
};
use hb_core::{compile, CompileOptions, TreeStrategy};
use hb_data::{
    iris_like, nomao_categorical, openml_cc18_like, strategy_dataset, tree_bench_dataset, Dataset,
    TreeBenchSpec, TREE_BENCH_SPECS,
};
use hb_ml::ensemble::TreeEnsemble;
use hb_ml::featurize::ImputeStrategy;
use hb_ml::linear::{LinearConfig, Penalty};
use hb_ml::metrics::{allclose, label_mismatch_rate, max_abs_diff};

use hb_pipeline::{fit_pipeline, OpSpec, Pipeline, Targets};
use hb_tensor::Tensor;

/// Harness configuration derived from CLI flags.
#[derive(Clone)]
struct Config {
    scale: f64,
    trees: usize,
    depth: usize,
    seed: u64,
    reps: usize,
    /// Wall-clock budget per `soak` scenario (seconds).
    soak_secs: f64,
    /// Concurrent client threads for the `soak` experiment.
    clients: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: 1.0,
            trees: 20,
            depth: 6,
            seed: 42,
            reps: 3,
            soak_secs: 5.0,
            clients: 8,
        }
    }
}

/// Rows for each gbm-bench stand-in at scale 1.0 (the paper's relative
/// ordering is preserved; absolute counts are laptop-sized).
fn dataset_rows(spec: &TreeBenchSpec, scale: f64) -> usize {
    let base = match spec.name {
        "fraud" => 10_000,
        "epsilon" => 3_000,
        "year" => 10_000,
        "covtype" => 10_000,
        "higgs" => 12_000,
        "airline" => 16_000,
        _ => 5_000,
    };
    ((base as f64 * scale) as usize).max(200)
}

/// Caches trained ensembles across experiments in one invocation.
struct Zoo {
    cfg: Config,
    datasets: HashMap<&'static str, Dataset>,
    models: HashMap<(&'static str, &'static str), TreeEnsemble>,
}

impl Zoo {
    fn new(cfg: Config) -> Zoo {
        Zoo {
            cfg,
            datasets: HashMap::new(),
            models: HashMap::new(),
        }
    }

    fn dataset(&mut self, spec: &TreeBenchSpec) -> &Dataset {
        let cfg = &self.cfg;
        self.datasets
            .entry(spec.name)
            .or_insert_with(|| tree_bench_dataset(spec, dataset_rows(spec, cfg.scale), cfg.seed))
    }

    fn model(&mut self, spec: &TreeBenchSpec, algo: Algo) -> TreeEnsemble {
        let key = (spec.name, algo.label());
        if !self.models.contains_key(&key) {
            let (trees, depth) = (self.cfg.trees, self.cfg.depth);
            let ds = self.dataset(spec).clone();
            let (m, secs) = wall(|| train_algo(&ds, algo, trees, depth));
            eprintln!(
                "  [train] {} / {}: {} trees, depth {} ({:.1}s)",
                spec.name,
                algo.label(),
                m.trees.len(),
                m.max_depth(),
                secs
            );
            self.models.insert(key, m);
        }
        self.models[&key].clone()
    }
}

/// Pretty-prints one table and mirrors it into `bench_results/<id>.json`.
struct Table {
    id: String,
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    fn new(id: &str, title: &str, header: &[&str]) -> Table {
        Table {
            id: id.into(),
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    fn print_and_save(&self) {
        println!("\n=== {} — {} ===", self.id, self.title);
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for r in &self.rows {
            println!("{}", fmt_row(r));
        }
        // JSON mirror for EXPERIMENTS.md provenance.
        let _ = std::fs::create_dir_all("bench_results");
        let json = hb_json::Json::Obj(vec![
            ("id".to_string(), hb_json::ToJson::to_json(&self.id)),
            ("title".to_string(), hb_json::ToJson::to_json(&self.title)),
            ("header".to_string(), hb_json::ToJson::to_json(&self.header)),
            ("rows".to_string(), hb_json::ToJson::to_json(&self.rows)),
        ]);
        let _ = std::fs::write(
            format!("bench_results/{}.json", self.id),
            hb_json::to_string_pretty(&json),
        );
    }
}

/// Scores the full test matrix in `batch`-sized chunks, truncated-mean
/// over `reps` repetitions.
fn timed(s: &Scorer, x: &Tensor<f32>, batch: usize, reps: usize) -> f64 {
    truncated_mean_secs(reps, || s.score_in_batches(x, batch))
}

/// The scorer line-up for batch experiments (Table 7).
fn batch_scorers(e: &TreeEnsemble, batch: usize) -> (Vec<Scorer>, Vec<Option<Scorer>>) {
    let cpu = vec![
        sklearn_scorer(e),
        onnx_scorer(e),
        hb_scorer(e, Backend::Eager, Device::cpu(), TreeStrategy::Auto, batch),
        hb_scorer(e, Backend::Script, Device::cpu(), TreeStrategy::Auto, batch),
        hb_scorer(
            e,
            Backend::Compiled,
            Device::cpu(),
            TreeStrategy::Auto,
            batch,
        ),
    ];
    // RAPIDS FIL 0.9 supported neither random forests nor multiclass
    // tasks (paper Table 7 "not supported"); mirror that.
    let fil_supported = e.n_classes == 1 || (e.n_classes == 2 && !is_forest(e));
    let gpu = vec![
        if fil_supported {
            Some(fil_scorer(e, P100))
        } else {
            None
        },
        Some(hb_scorer(
            e,
            Backend::Script,
            Device::Sim(P100),
            TreeStrategy::Auto,
            batch,
        )),
        Some(hb_scorer(
            e,
            Backend::Compiled,
            Device::Sim(P100),
            TreeStrategy::Auto,
            batch,
        )),
    ];
    (cpu, gpu)
}

fn is_forest(e: &TreeEnsemble) -> bool {
    matches!(
        e.agg,
        hb_ml::ensemble::Aggregation::AverageProba | hb_ml::ensemble::Aggregation::AverageValue
    )
}

/// Table 7: batch inference, CPU and (simulated) GPU.
fn table7(zoo: &mut Zoo) {
    let mut t = Table::new(
        "table7",
        "Batch inference (10K-record batches; GPU columns simulated)",
        &[
            "Algorithm",
            "Dataset",
            "Sklearn",
            "ONNX-ML",
            "HB-Eager",
            "HB-Script",
            "HB-Compiled",
            "FIL@P100",
            "Script@P100",
            "Compiled@P100",
        ],
    );
    for algo in Algo::ALL {
        for spec in &TREE_BENCH_SPECS {
            let e = zoo.model(spec, algo);
            let ds = zoo.dataset(spec).clone();
            let batch = 10_000.min(ds.n_test());
            let (cpu, gpu) = batch_scorers(&e, batch);
            let mut cells = vec![algo.label().to_string(), spec.name.to_string()];
            for s in &cpu {
                cells.push(fmt_secs(timed(s, &ds.x_test, batch, zoo.cfg.reps)));
            }
            for s in &gpu {
                cells.push(match s {
                    Some(s) => fmt_secs(timed(s, &ds.x_test, batch, zoo.cfg.reps)),
                    None => "n/s".to_string(),
                });
            }
            t.row(cells);
        }
    }
    t.print_and_save();
}

/// Table 8: request/response (batch = 1, one core; Airline omitted as in
/// the paper).
fn table8(zoo: &mut Zoo) {
    let mut t = Table::new(
        "table8",
        "Request/response: one record at a time, single core",
        &[
            "Algorithm",
            "Dataset",
            "Sklearn",
            "ONNX-ML",
            "HB-Eager",
            "HB-Script",
            "HB-Compiled",
        ],
    );
    for algo in Algo::ALL {
        for spec in TREE_BENCH_SPECS.iter().filter(|s| s.name != "airline") {
            let e = zoo.model(spec, algo);
            let ds = zoo.dataset(spec).clone();
            // Score a capped number of single records; report the total
            // extrapolated to the full test set (paper scores the whole
            // set one record at a time).
            let n1 = 300.min(ds.n_test());
            let sub = ds.x_test.slice(0, 0, n1).to_contiguous();
            let factor = ds.n_test() as f64 / n1 as f64;
            let scorers = vec![
                sklearn_scorer_1core(&e),
                onnx_scorer(&e),
                hb_scorer(&e, Backend::Eager, Device::cpu1(), TreeStrategy::Auto, 1),
                hb_scorer(&e, Backend::Script, Device::cpu1(), TreeStrategy::Auto, 1),
                hb_scorer(&e, Backend::Compiled, Device::cpu1(), TreeStrategy::Auto, 1),
            ];
            let mut cells = vec![algo.label().to_string(), spec.name.to_string()];
            for s in &scorers {
                cells.push(fmt_secs(timed(s, &sub, 1, 1) * factor));
            }
            t.row(cells);
        }
    }
    t.print_and_save();
}

/// Table 9: peak memory for Fraud (tracked tensor bytes for HB; sized
/// structures for the baselines).
fn table9(zoo: &mut Zoo) {
    let mut t = Table::new(
        "table9",
        "Peak memory (MB), Fraud, batch 1K",
        &["Framework", "RandomForest", "LightGBM-like", "XGBoost-like"],
    );
    let spec = &TREE_BENCH_SPECS[0];
    let ds = zoo.dataset(spec).clone();
    let batch = 1000.min(ds.n_test());
    let x = ds.x_test.slice(0, 0, batch).to_contiguous();
    let mb = |b: f64| format!("{:.1}", b / (1024.0 * 1024.0));

    let mut rows: Vec<Vec<String>> = vec![
        vec!["Sklearn (est)".into()],
        vec!["ONNX-ML (est)".into()],
        vec!["HB-Script".into()],
        vec!["HB-Compiled".into()],
    ];
    for algo in Algo::ALL {
        let e = zoo.model(spec, algo);
        let nodes: usize = e.trees.iter().map(|t| t.n_nodes()).sum();
        let vw = e.trees[0].value_width;
        // Boxed-node representation: ~56 bytes/node + payload vec.
        rows[0].push(mb((nodes * (56 + vw * 4)) as f64 + (batch * 4 * 28) as f64));
        // Flat SoA: 4+4+4+4 bytes/node + payload.
        rows[1].push(mb((nodes * (16 + vw * 4)) as f64 + (batch * 4 * 28) as f64));
        for (i, backend) in [(2usize, Backend::Script), (3, Backend::Compiled)] {
            let m = hb_model(&e, backend, Device::cpu(), batch);
            let params = m.executable().graph().const_bytes() as f64;
            let (_, stats) = m.predict_with_stats(&x).expect("scoring failed");
            rows[i].push(mb(params + stats.peak_tensor_bytes as f64));
        }
    }
    for r in rows {
        t.row(r);
    }
    t.print_and_save();
}

/// Table 10: conversion (compilation) times per backend.
fn table10(zoo: &mut Zoo) {
    let mut t = Table::new(
        "table10",
        "Conversion times (one model -> target backend)",
        &[
            "Algorithm",
            "Dataset",
            "ONNX-ML",
            "HB-Eager",
            "HB-Script",
            "HB-Compiled",
        ],
    );
    for algo in Algo::ALL {
        for spec in &TREE_BENCH_SPECS {
            let e = zoo.model(spec, algo);
            // ONNX-ML conversion = flattening into the node-array format.
            let onnx = truncated_mean_secs(zoo.cfg.reps, || {
                wall(|| hb_ml::baselines::OnnxLikeForest::new(&e)).1
            });
            let mut cells = vec![
                algo.label().to_string(),
                spec.name.to_string(),
                fmt_secs(onnx),
            ];
            for backend in Backend::ALL {
                let secs = truncated_mean_secs(zoo.cfg.reps, || {
                    hb_model(&e, backend, Device::cpu(), 10_000)
                        .compile_time()
                        .as_secs_f64()
                });
                cells.push(fmt_secs(secs));
            }
            t.row(cells);
        }
    }
    t.print_and_save();
}

/// Output validation (§6.1.1): compiled outputs vs the imperative
/// reference at rtol/atol 1e-5.
fn validate(zoo: &mut Zoo) {
    let mut t = Table::new(
        "validate",
        "Output validation vs imperative reference (rtol=atol=1e-5)",
        &[
            "Algorithm",
            "Dataset",
            "allclose",
            "max |diff|",
            "label mismatch %",
        ],
    );
    for algo in Algo::ALL {
        for spec in &TREE_BENCH_SPECS {
            let e = zoo.model(spec, algo);
            let ds = zoo.dataset(spec).clone();
            let want = e.predict_proba(&ds.x_test);
            let s = hb_scorer(
                &e,
                Backend::Compiled,
                Device::cpu(),
                TreeStrategy::Auto,
                10_000,
            );
            let (got, _) = s.score(&ds.x_test);
            let ok = allclose(&got, &want, 1e-5, 1e-5);
            let mad = max_abs_diff(&got, &want);
            let mm = if want.shape().len() == 2 && want.shape()[1] > 1 {
                format!("{:.3}", 100.0 * label_mismatch_rate(&got, &want))
            } else {
                "-".into()
            };
            t.row(vec![
                algo.label().into(),
                spec.name.into(),
                ok.to_string(),
                format!("{mad:.2e}"),
                mm,
            ]);
        }
    }
    t.print_and_save();
}

/// The 13 operators of §6.1.2 (Tables 11–12).
fn operator_specs(n_train: usize) -> Vec<(&'static str, OpSpec)> {
    let lin = LinearConfig {
        epochs: 60,
        ..Default::default()
    };
    let svc_rows = n_train.min(800);
    let _ = svc_rows;
    vec![
        (
            "LogisticRegression",
            OpSpec::LogisticRegression(lin.clone()),
        ),
        (
            "SGDClassifier",
            OpSpec::SgdClassifier(LinearConfig {
                epochs: 5,
                ..lin.clone()
            }),
        ),
        ("LinearSVC", OpSpec::LinearSvc(lin)),
        (
            "NuSVC",
            OpSpec::NuSvc {
                nu: 0.5,
                config: Default::default(),
            },
        ),
        ("SVC", OpSpec::Svc(Default::default())),
        (
            "BernoulliNB",
            OpSpec::BernoulliNb {
                alpha: 1.0,
                binarize: 0.0,
            },
        ),
        (
            "MLPClassifier",
            OpSpec::Mlp(hb_ml::mlp::MlpConfig {
                epochs: 10,
                ..Default::default()
            }),
        ),
        (
            "DecisionTreeClassifier",
            OpSpec::DecisionTreeClassifier { max_depth: 8 },
        ),
        ("Binarizer", OpSpec::Binarizer { threshold: 0.0 }),
        ("MinMaxScaler", OpSpec::MinMaxScaler),
        (
            "Normalizer",
            OpSpec::Normalizer {
                norm: hb_ml::featurize::Norm::L2,
            },
        ),
        (
            "PolynomialFeatures",
            OpSpec::PolynomialFeatures {
                include_bias: true,
                interaction_only: false,
            },
        ),
        ("StandardScaler", OpSpec::StandardScaler),
    ]
}

/// Fits each operator pipeline on an SVC-sized subsample where needed.
fn fit_operator(name: &str, spec: &OpSpec, ds: &Dataset) -> Pipeline {
    // Kernel SVMs train O(n²); fit them on a subsample like the paper's
    // Iris-sized data, then score the full matrix.
    let cap = if matches!(name, "NuSVC" | "SVC") {
        600
    } else {
        usize::MAX
    };
    let n = ds.n_train().min(cap);
    let x = ds.x_train.slice(0, 0, n).to_contiguous();
    let y = match &ds.y_train {
        Targets::Classes(c) => Targets::Classes(c[..n].to_vec()),
        Targets::Values(v) => Targets::Values(v[..n].to_vec()),
    };
    // SVC stand-ins are binary; collapse multiclass labels.
    let y = match (&y, name) {
        (Targets::Classes(c), "NuSVC" | "SVC") => {
            Targets::Classes(c.iter().map(|&v| i64::from(v > 0)).collect())
        }
        _ => y,
    };
    fit_pipeline(std::slice::from_ref(spec), &x, &y)
}

/// Operator scorers: imperative single-core baseline + HB backends.
fn operator_scorers(
    pipe: &Pipeline,
    batch: usize,
) -> Vec<(String, Box<dyn Fn(&Tensor<f32>) -> f64>)> {
    let skl = {
        let p = pipe.clone();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        Box::new(move |x: &Tensor<f32>| pool.install(|| wall(|| p.predict_proba(x)).1))
            as Box<dyn Fn(&Tensor<f32>) -> f64>
    };
    let mut out: Vec<(String, Box<dyn Fn(&Tensor<f32>) -> f64>)> = vec![("Sklearn".into(), skl)];
    for (label, backend, device) in [
        ("HB-Script", Backend::Script, Device::cpu1()),
        ("HB-Compiled", Backend::Compiled, Device::cpu1()),
        ("Script@P100", Backend::Script, Device::Sim(P100)),
        ("Compiled@P100", Backend::Compiled, Device::Sim(P100)),
    ] {
        let opts = CompileOptions {
            backend,
            device,
            expected_batch: batch,
            optimize_pipeline: false,
            ..Default::default()
        };
        let model = compile(pipe, &opts).expect("operator compiles");
        let sim = device.is_simulated();
        out.push((
            label.to_string(),
            Box::new(move |x: &Tensor<f32>| {
                let t = Instant::now();
                let (_, stats) = model.predict_with_stats(x).expect("scoring failed");
                if sim {
                    stats.simulated.unwrap().as_secs_f64()
                } else {
                    t.elapsed().as_secs_f64()
                }
            }),
        ));
    }
    out
}

/// Table 11: operator batch inference.
fn table11(cfg: &Config) {
    let rows = ((60_000.0 * cfg.scale) as usize).max(2_000);
    let ds = iris_like(rows, cfg.seed);
    let mut t = Table::new(
        "table11",
        &format!(
            "Operators, batch inference over {} records (1 CPU core + sim GPU)",
            ds.n_test()
        ),
        &[
            "Operator",
            "Sklearn",
            "HB-Script",
            "HB-Compiled",
            "Script@P100",
            "Compiled@P100",
        ],
    );
    for (name, spec) in operator_specs(ds.n_train()) {
        let pipe = fit_operator(name, &spec, &ds);
        let scorers = operator_scorers(&pipe, ds.n_test());
        let mut cells = vec![name.to_string()];
        for (_, f) in &scorers {
            cells.push(fmt_secs(truncated_mean_secs(cfg.reps, || f(&ds.x_test))));
        }
        t.row(cells);
        eprintln!("  [table11] {name} done");
    }
    t.print_and_save();
}

/// Table 12: operator request/response (single records).
fn table12(cfg: &Config) {
    let ds = iris_like(4_000, cfg.seed);
    let n1 = 200.min(ds.n_test());
    let mut t = Table::new(
        "table12",
        "Operators, request/response (per-record latency, single core)",
        &["Operator", "Sklearn", "HB-Script", "HB-Compiled"],
    );
    for (name, spec) in operator_specs(ds.n_train()) {
        let pipe = fit_operator(name, &spec, &ds);
        let scorers = operator_scorers(&pipe, 1);
        let mut cells = vec![name.to_string()];
        for (label, f) in &scorers {
            if label.contains("P100") {
                continue;
            }
            let total = truncated_mean_secs(cfg.reps.min(2), || {
                let mut acc = 0.0;
                for r in 0..n1 {
                    let row = ds.x_test.slice(0, r, r + 1).to_contiguous();
                    acc += f(&row);
                }
                acc
            });
            cells.push(fmt_secs(total / n1 as f64));
        }
        t.row(cells);
        eprintln!("  [table12] {name} done");
    }
    t.print_and_save();
}

/// Figure 4: latency vs batch size (CPU and simulated GPU).
fn fig4(zoo: &mut Zoo) {
    let spec = &TREE_BENCH_SPECS[4]; // higgs-like
    let e = zoo.model(spec, Algo::LightGbm);
    let ds = zoo.dataset(spec).clone();
    let n = ds.n_test();
    let mut t = Table::new(
        "fig4",
        &format!("Total time to score {n} records vs batch size (higgs, LightGBM-like)"),
        &[
            "Batch",
            "Sklearn",
            "ONNX-ML",
            "HB-Script",
            "HB-Compiled",
            "Script@P100(sim)",
            "Compiled@P100(sim)",
            "FIL@P100(sim)",
        ],
    );
    for batch in [1usize, 10, 100, 1_000, 10_000] {
        let batch = batch.min(n);
        let scorers = vec![
            sklearn_scorer(&e),
            onnx_scorer(&e),
            hb_scorer(
                &e,
                Backend::Script,
                Device::cpu(),
                TreeStrategy::Auto,
                batch,
            ),
            hb_scorer(
                &e,
                Backend::Compiled,
                Device::cpu(),
                TreeStrategy::Auto,
                batch,
            ),
            hb_scorer(
                &e,
                Backend::Script,
                Device::Sim(P100),
                TreeStrategy::Auto,
                batch,
            ),
            hb_scorer(
                &e,
                Backend::Compiled,
                Device::Sim(P100),
                TreeStrategy::Auto,
                batch,
            ),
            fil_scorer(&e, P100),
        ];
        // Cap the record count for tiny batches so the sweep stays fast,
        // then extrapolate to the full test set.
        let cap = if batch < 100 { 300.min(n) } else { n };
        let sub = ds.x_test.slice(0, 0, cap).to_contiguous();
        let factor = n as f64 / cap as f64;
        let mut cells = vec![batch.to_string()];
        for s in &scorers {
            cells.push(fmt_secs(timed(s, &sub, batch, 1) * factor));
        }
        t.row(cells);
        eprintln!("  [fig4] batch {batch} done");
    }
    t.print_and_save();
}

/// Figure 6: scaling across GPU generations (simulated K80/P100/V100).
fn fig6(zoo: &mut Zoo) {
    let spec = &TREE_BENCH_SPECS[5]; // airline-like
    let e = zoo.model(spec, Algo::LightGbm);
    let ds = zoo.dataset(spec).clone();
    for (label, batch) in [("large", ds.n_test()), ("small", 1_000.min(ds.n_test()))] {
        let mut t = Table::new(
            &format!("fig6_{label}"),
            &format!("GPU generations (simulated), airline, LightGBM-like, batch={batch}"),
            &["Device", "HB-Script", "HB-Compiled", "FIL"],
        );
        for dev in [K80, P100, V100] {
            let mut cells = vec![format!("{} ({})", dev.name, dev.year)];
            for backend in [Backend::Script, Backend::Compiled] {
                let s = hb_scorer(&e, backend, Device::Sim(dev), TreeStrategy::Auto, batch);
                cells.push(fmt_secs(timed(&s, &ds.x_test, batch, 1)));
            }
            let fil = fil_scorer(&e, dev);
            cells.push(fmt_secs(timed(&fil, &ds.x_test, batch, 1)));
            t.row(cells);
        }
        t.print_and_save();
    }
}

/// Memory-planner study: arena-planned vs refcount execution of the
/// fig6 airline model on the host CPU, per tree strategy. Reports
/// latency, peak tensor bytes, steady-state allocation counts, and the
/// planner's arena footprint / reuse ratio.
fn memplan(zoo: &mut Zoo) {
    let spec = &TREE_BENCH_SPECS[5]; // airline-like
    let e = zoo.model(spec, Algo::LightGbm);
    let ds = zoo.dataset(spec).clone();
    let batch = 1_000.min(ds.n_test());
    let x = ds.x_test.slice(0, 0, batch).to_contiguous();
    let mut t = Table::new(
        "memplan",
        &format!("Memory planner vs refcount, airline, LightGBM-like, batch={batch}"),
        &[
            "Strategy",
            "Planned",
            "Refcount",
            "PlanPeakMB",
            "RefPeakMB",
            "PeakDrop",
            "WarmAllocs",
            "ArenaMB",
            "Reuse",
        ],
    );
    for strategy in [
        TreeStrategy::Gemm,
        TreeStrategy::TreeTraversal,
        TreeStrategy::PerfectTreeTraversal,
    ] {
        let pipe = Pipeline::from_op(e.clone());
        let opts = CompileOptions {
            backend: Backend::Compiled,
            tree_strategy: strategy,
            expected_batch: batch,
            optimize_pipeline: false,
            ..Default::default()
        };
        let model = compile(&pipe, &opts).expect("tree ensembles always compile");
        let (planned, refcount) = memplan_profiles(&model, &x, 3);
        let peak_drop = if refcount.peak_tensor_bytes > 0 {
            100.0 * (1.0 - planned.peak_tensor_bytes as f64 / refcount.peak_tensor_bytes as f64)
        } else {
            0.0
        };
        let reuse = model
            .executable()
            .plan_for_batch(batch)
            .ok()
            .and_then(|p| p.reuse_ratio());
        t.row(vec![
            strategy.label().to_string(),
            fmt_secs(planned.secs),
            fmt_secs(refcount.secs),
            format!("{:.2}", planned.peak_tensor_bytes as f64 / 1e6),
            format!("{:.2}", refcount.peak_tensor_bytes as f64 / 1e6),
            format!("{peak_drop:.0}%"),
            planned.allocations.to_string(),
            format!("{:.2}", planned.arena_bytes as f64 / 1e6),
            reuse.map_or("-".to_string(), |r| format!("{r:.2}")),
        ]);
        eprintln!("  [memplan] {} done", strategy.label());
    }
    t.print_and_save();
}

/// Register-LIR dispatch study: fused kernels through the verified
/// register VM (the default dispatcher) vs the legacy stack interpreter
/// on the fig6 airline model, per tree strategy, on both the
/// arena-planned and the refcount executor. All four paths are asserted
/// bit-identical inside `lir_profiles`; the table adds the kernels'
/// aggregate LIR statistics (instruction counts, peak live registers,
/// optimizer eliminations) from the verification certificates, plus the
/// codegen kernel classes each strategy's kernels resolved to and the
/// rayon thread count the run executed under.
fn lir_table(zoo: &mut Zoo) {
    let spec = &TREE_BENCH_SPECS[5]; // airline-like
    let e = zoo.model(spec, Algo::LightGbm);
    let ds = zoo.dataset(spec).clone();
    let batch = 1_000.min(ds.n_test());
    let x = ds.x_test.slice(0, 0, batch).to_contiguous();
    let mut t = Table::new(
        "lir",
        &format!("Register-LIR vs stack dispatch, airline, LightGBM-like, batch={batch}"),
        &[
            "Strategy",
            "LIR-Planned",
            "LIR-Refcount",
            "Stack-Planned",
            "Stack-Refcount",
            "Kernels",
            "Classes",
            "Threads",
            "LIRInstrs",
            "StackInstrs",
            "MaxLive",
            "Eliminated",
        ],
    );
    let threads = rayon::current_num_threads();
    for strategy in [
        TreeStrategy::Gemm,
        TreeStrategy::TreeTraversal,
        TreeStrategy::PerfectTreeTraversal,
    ] {
        let pipe = Pipeline::from_op(e.clone());
        let opts = CompileOptions {
            backend: Backend::Compiled,
            tree_strategy: strategy,
            expected_batch: batch,
            optimize_pipeline: false,
            ..Default::default()
        };
        let model = compile(&pipe, &opts).expect("tree ensembles always compile");
        let (lir, stack) = lir_profiles(&model, &x, 3);
        let certs = hb_backend::Artifact::lir_certs_of(model.executable().graph());
        let lir_instrs: usize = certs.iter().map(|c| c.lir_len).sum();
        let stack_instrs: usize = certs.iter().map(|c| c.stack_len).sum();
        let max_live = certs.iter().map(|c| c.max_live).max().unwrap_or(0);
        let eliminated: usize = certs.iter().map(|c| c.eliminated).sum();
        // Which codegen kernel classes this strategy's fused kernels
        // resolved to, with multiplicity (e.g. `chain2*2+bin2`).
        let mut class_counts: Vec<(String, usize)> = Vec::new();
        for c in &certs {
            match class_counts.iter_mut().find(|(name, _)| *name == c.class) {
                Some((_, n)) => *n += 1,
                None => class_counts.push((c.class.clone(), 1)),
            }
        }
        let classes = class_counts
            .iter()
            .map(|(name, n)| {
                if *n > 1 {
                    format!("{name}*{n}")
                } else {
                    name.clone()
                }
            })
            .collect::<Vec<_>>()
            .join("+");
        t.row(vec![
            strategy.label().to_string(),
            fmt_secs(lir.planned_secs),
            fmt_secs(lir.refcount_secs),
            fmt_secs(stack.planned_secs),
            fmt_secs(stack.refcount_secs),
            certs.len().to_string(),
            classes,
            threads.to_string(),
            lir_instrs.to_string(),
            stack_instrs.to_string(),
            max_live.to_string(),
            eliminated.to_string(),
        ]);
        eprintln!("  [lir] {} done", strategy.label());
    }
    t.print_and_save();
}

/// Cost-certification audit: per tree strategy and per certification
/// bucket, re-run the compiled pipeline and hold the static `CostCert`
/// to the honesty rule — the measured roofline counters (flops,
/// element traversals, bytes, kernel launches) must equal the certified
/// polynomials *exactly* (both are the same integer sums, below 2^53),
/// the planner's arena must equal the certified footprint, and the
/// measured wall-clock must land inside the calibrated envelope widened
/// by eps = 0.5: `lo*(1-eps) <= wall <= hi*(1+eps)`. Any violation
/// aborts the bench; the table mirrors into `bench_results/cost.json`.
fn cost_table(zoo: &mut Zoo) {
    const EPS: f64 = 0.5;
    let spec = &TREE_BENCH_SPECS[0]; // fraud-like: 28 features, binary
    let e = zoo.model(spec, Algo::LightGbm);
    let ds = zoo.dataset(spec).clone();
    let mut t = Table::new(
        "cost",
        "Static cost certification vs measured execution (eps = 0.5 envelope gate)",
        &[
            "Strategy",
            "Batch",
            "CertFlops",
            "CertBytes",
            "CertArena",
            "Launches",
            "EnvLo",
            "EnvHi",
            "Wall",
            "Counters",
            "Envelope",
        ],
    );
    let mut sound = true;
    for strategy in [
        TreeStrategy::Gemm,
        TreeStrategy::TreeTraversal,
        TreeStrategy::PerfectTreeTraversal,
    ] {
        let pipe = Pipeline::from_op(e.clone());
        let opts = CompileOptions {
            backend: Backend::Compiled,
            tree_strategy: strategy,
            expected_batch: *hb_backend::COST_BUCKETS.last().unwrap_or(&1),
            optimize_pipeline: false,
            ..Default::default()
        };
        let model = compile(&pipe, &opts).expect("tree ensembles always compile");
        let exec = model.executable();
        let certs = hb_backend::cost_certs(exec.graph(), &hb_backend::COST_BUCKETS)
            .expect("tree pipelines have fully batched shapes");
        for cert in &certs {
            let b = cert.batch.min(ds.n_test());
            assert_eq!(b, cert.batch, "test split smaller than a cost bucket");
            let xb = hb_tensor::DynTensor::F32(ds.x_test.slice(0, 0, b).to_contiguous());
            let env = hb_backend::envelope_for(cert);
            // Warm once (plans, tuner) then take the median of five runs
            // so a single scheduler hiccup cannot fail the floor check.
            let (_, stats) = exec
                .run_with_stats(std::slice::from_ref(&xb))
                .expect("certified pipeline executes");
            let mut walls = Vec::new();
            let mut last = stats;
            for _ in 0..5 {
                let (_, s) = exec
                    .run_with_stats(std::slice::from_ref(&xb))
                    .expect("certified pipeline executes");
                walls.push(s.wall);
                last = s;
            }
            walls.sort();
            let wall = walls[walls.len() / 2];
            let counters_exact = last.flops == cert.flops
                && last.traversals == cert.traversals
                && last.bytes == cert.bytes
                && last.kernel_launches == cert.kernel_launches;
            let arena = exec.plan_for_batch(cert.batch).ok().map(|p| p.arena_bytes);
            let arena_exact = arena == Some(cert.arena_bytes);
            let lo = env.lo.mul_f64(1.0 - EPS);
            let hi = env.hi.mul_f64(1.0 + EPS);
            let within = wall >= lo && wall <= hi;
            sound &= counters_exact && arena_exact && within;
            t.row(vec![
                strategy.label().to_string(),
                cert.batch.to_string(),
                format!("{:.0}", cert.flops),
                format!("{:.0}", cert.bytes),
                cert.arena_bytes.to_string(),
                cert.kernel_launches.to_string(),
                fmt_secs(env.lo.as_secs_f64()),
                fmt_secs(env.hi.as_secs_f64()),
                fmt_secs(wall.as_secs_f64()),
                if counters_exact && arena_exact {
                    "exact".into()
                } else if counters_exact {
                    "FAIL (arena)".into()
                } else {
                    format!(
                        "FAIL ({:.0}/{:.0}/{:.0}/{} measured)",
                        last.flops, last.traversals, last.bytes, last.kernel_launches
                    )
                },
                if within {
                    "within".into()
                } else {
                    "FAIL".into()
                },
            ]);
        }
        eprintln!("  [cost] {} done", strategy.label());
    }
    t.print_and_save();
    assert!(
        sound,
        "cost: a certificate failed its soundness gate (see FAIL rows above)"
    );
}

/// Figure 7: amortized dollar cost per 100K predictions.
fn fig7(zoo: &mut Zoo) {
    let mut t = Table::new(
        "fig7",
        "Cost (USD) per 100K predictions, random forest, batch 1K",
        &[
            "Dataset",
            "CPU(E8v3)+Sklearn",
            "K80+Compiled",
            "P100+Compiled",
            "V100+Compiled",
        ],
    );
    for spec in &TREE_BENCH_SPECS {
        let e = zoo.model(spec, Algo::RandomForest);
        let ds = zoo.dataset(spec).clone();
        let batch = 1_000.min(ds.n_test());
        let n = ds.n_test() as f64;
        let per_100k = |secs: f64, hourly: f64| (secs / n) * 100_000.0 * hourly / 3600.0;
        let mut cells = vec![spec.name.to_string()];
        let skl = sklearn_scorer(&e);
        cells.push(format!(
            "{:.2e}",
            per_100k(timed(&skl, &ds.x_test, batch, 1), CPU_VM_HOURLY_USD)
        ));
        for dev in [K80, P100, V100] {
            let s = hb_scorer(
                &e,
                Backend::Compiled,
                Device::Sim(dev),
                TreeStrategy::Auto,
                batch,
            );
            cells.push(format!(
                "{:.2e}",
                per_100k(timed(&s, &ds.x_test, batch, 1), dev.hourly_usd)
            ));
        }
        t.row(cells);
    }
    t.print_and_save();
}

/// Figure 8: strategy comparison over depth × batch (1 CPU core).
fn fig8(cfg: &Config) {
    let ds = strategy_dataset(cfg.seed);
    let n_trees = (100.0 * cfg.scale).max(10.0) as usize;
    let mut t = Table::new(
        "fig8",
        &format!("Tree strategies (synthetic 5000x200, {n_trees} trees, 1 core)"),
        &["Depth", "Batch", "Sklearn", "ONNX-ML", "GEMM", "TT", "PTT"],
    );
    for depth in [3usize, 7, 12] {
        let e = train_algo(&ds, Algo::RandomForest, n_trees, depth);
        eprintln!("  [fig8] depth {depth}: actual max depth {}", e.max_depth());
        for batch in [1usize, 1_000] {
            // Score a fixed 1000-record slice so rows are comparable.
            let nscore = if batch == 1 {
                200
            } else {
                1_000.min(ds.n_test())
            };
            let sub = ds
                .x_test
                .slice(0, 0, nscore.min(ds.n_test()))
                .to_contiguous();
            let mut cells = vec![depth.to_string(), batch.to_string()];
            let skl = sklearn_scorer_1core(&e);
            cells.push(fmt_secs(timed(&skl, &sub, batch, 1)));
            let onnx = onnx_scorer(&e);
            cells.push(fmt_secs(timed(&onnx, &sub, batch, 1)));
            for strat in [
                TreeStrategy::Gemm,
                TreeStrategy::TreeTraversal,
                TreeStrategy::PerfectTreeTraversal,
            ] {
                if strat == TreeStrategy::PerfectTreeTraversal
                    && e.max_depth() > hb_core::strategies::traversal::PTT_MAX_DEPTH
                {
                    cells.push("fails".into());
                    continue;
                }
                let s = hb_scorer(&e, Backend::Compiled, Device::cpu1(), strat, batch);
                cells.push(fmt_secs(timed(&s, &sub, batch, 1)));
            }
            t.row(cells);
        }
    }
    t.print_and_save();
}

/// Figure 9: feature-selection push-down sweep.
fn fig9(cfg: &Config) {
    let rows = ((6_000.0 * cfg.scale) as usize).max(1_000);
    let ds = nomao_categorical(rows, cfg.seed);
    let mut t = Table::new(
        "fig9",
        "Feature-selection push-down (Nomao-like pipeline, seconds per full test scan)",
        &[
            "SelectPercentile",
            "Sklearn",
            "HB (no pushdown)",
            "HB (pushdown)",
        ],
    );
    for pct in [10usize, 25, 50, 75, 100] {
        let specs = vec![
            OpSpec::SimpleImputer {
                strategy: ImputeStrategy::Mean,
            },
            OpSpec::OneHotEncoder,
            OpSpec::StandardScaler,
            OpSpec::SelectPercentile { percentile: pct },
            OpSpec::LogisticRegression(LinearConfig {
                epochs: 40,
                ..Default::default()
            }),
        ];
        let pipe = fit_pipeline(&specs, &ds.x_train, &ds.y_train);
        let n_ops = pipe.len();
        let skl = truncated_mean_secs(cfg.reps, || {
            wall(|| {
                hb_ml::baselines::emulate_sklearn_pipeline_dispatch(n_ops);
                pipe.predict_proba(&ds.x_test)
            })
            .1
        });
        let run = |optimize: bool| {
            let opts = CompileOptions {
                optimize_pipeline: optimize,
                expected_batch: ds.n_test(),
                ..Default::default()
            };
            let model = compile(&pipe, &opts).expect("pipeline compiles");
            truncated_mean_secs(cfg.reps, || {
                wall(|| model.predict_proba(&ds.x_test).unwrap()).1
            })
        };
        let plain = run(false);
        let pushed = run(true);
        t.row(vec![
            format!("{pct}%"),
            fmt_secs(skl),
            fmt_secs(plain),
            fmt_secs(pushed),
        ]);
        eprintln!("  [fig9] {pct}% done");
    }
    t.print_and_save();
}

/// Figure 10: feature-selection injection sweep over L1 strength.
fn fig10(cfg: &Config) {
    let rows = ((6_000.0 * cfg.scale) as usize).max(1_000);
    let ds = nomao_categorical(rows, cfg.seed);
    let mut t = Table::new(
        "fig10",
        "Feature-selection injection (L1 logistic regression, seconds per full test scan)",
        &[
            "L1 strength",
            "nonzero feats",
            "HB (no injection)",
            "HB (injection)",
        ],
    );
    for alpha in [0.05f32, 0.02, 0.008, 0.002, 0.0] {
        let penalty = if alpha > 0.0 {
            Penalty::L1(alpha)
        } else {
            Penalty::L2(1e-4)
        };
        let specs = vec![
            OpSpec::SimpleImputer {
                strategy: ImputeStrategy::Mean,
            },
            OpSpec::OneHotEncoder,
            OpSpec::StandardScaler,
            OpSpec::LogisticRegression(LinearConfig {
                penalty,
                epochs: 80,
                ..Default::default()
            }),
        ];
        let pipe = fit_pipeline(&specs, &ds.x_train, &ds.y_train);
        let nz = match pipe.ops.last().unwrap() {
            hb_pipeline::FittedOp::Linear(m) => m.nonzero_features().len(),
            _ => unreachable!(),
        };
        let run = |optimize: bool| {
            let opts = CompileOptions {
                optimize_pipeline: optimize,
                expected_batch: ds.n_test(),
                ..Default::default()
            };
            let model = compile(&pipe, &opts).expect("pipeline compiles");
            truncated_mean_secs(cfg.reps, || {
                wall(|| model.predict_proba(&ds.x_test).unwrap()).1
            })
        };
        let plain = run(false);
        let injected = run(true);
        t.row(vec![
            format!("{alpha}"),
            nz.to_string(),
            fmt_secs(plain),
            fmt_secs(injected),
        ]);
        eprintln!("  [fig10] alpha {alpha} done");
    }
    t.print_and_save();
}

/// Ablation of the Compiled backend's optimization passes (DESIGN.md
/// design-choice attribution): constant folding, CSE, and kernel fusion
/// toggled independently over a fusion-heavy compiled model.
fn ablation(cfg: &Config) {
    use hb_backend::optimize::PassToggles;
    use hb_backend::Executable;

    let ds = iris_like(((40_000.0 * cfg.scale) as usize).max(2_000), cfg.seed);
    // A pipeline whose graph has long element-wise chains (scaler →
    // scaler → logistic link) plus a GEMM-strategy booster: both fusion
    // and folding have material work.
    let specs = vec![
        OpSpec::StandardScaler,
        OpSpec::MinMaxScaler,
        OpSpec::GbdtClassifier(hb_ml::gbdt::GbdtConfig {
            n_rounds: 20,
            max_depth: 3,
            ..Default::default()
        }),
    ];
    let pipe = fit_pipeline(&specs, &ds.x_train, &ds.y_train);
    // Raw (Eager) graph as the ablation substrate.
    let raw = compile(
        &pipe,
        &CompileOptions {
            backend: Backend::Eager,
            tree_strategy: TreeStrategy::Gemm,
            optimize_pipeline: false,
            ..Default::default()
        },
    )
    .unwrap();
    let graph = raw.executable().graph().clone();
    let x = hb_tensor::DynTensor::F32(ds.x_test.clone());

    let mut t = Table::new(
        "ablation",
        "Compiled-backend pass ablation (GEMM-strategy booster + scaler chain)",
        &[
            "Passes",
            "kernels",
            "folded",
            "cse",
            "fused",
            "CPU time/scan",
            "P100(sim)",
        ],
    );
    let variants: Vec<(&str, PassToggles)> = vec![
        (
            "none",
            PassToggles {
                fold: false,
                cse: false,
                value_rewrites: false,
                fuse: false,
            },
        ),
        (
            "fold",
            PassToggles {
                fold: true,
                cse: false,
                value_rewrites: false,
                fuse: false,
            },
        ),
        (
            "fold+cse",
            PassToggles {
                fold: true,
                cse: true,
                value_rewrites: false,
                fuse: false,
            },
        ),
        (
            "fuse only",
            PassToggles {
                fold: false,
                cse: false,
                value_rewrites: false,
                fuse: true,
            },
        ),
        ("all", PassToggles::default()),
    ];
    for (label, toggles) in variants {
        let exe = Executable::with_toggles(graph.clone(), toggles, Device::cpu());
        let stats = exe.opt_stats().unwrap();
        let secs = truncated_mean_secs(cfg.reps.max(5), || {
            wall(|| exe.run(std::slice::from_ref(&x)).unwrap()).1
        });
        // Simulated-GPU latency: fewer kernel launches is where fusion
        // pays, mirroring why TVM's fusion matters most on accelerators.
        let gpu = Executable::with_toggles(graph.clone(), toggles, Device::Sim(P100));
        let (_, gstats) = gpu.run_with_stats(std::slice::from_ref(&x)).unwrap();
        t.row(vec![
            label.to_string(),
            exe.graph().kernel_count().to_string(),
            stats.folded.to_string(),
            stats.cse_merged.to_string(),
            stats.fused_kernels.to_string(),
            fmt_secs(secs),
            fmt_secs(gstats.simulated.unwrap().as_secs_f64()),
        ]);
    }
    t.print_and_save();
}

/// Sparse prototype (paper §6.3): wide one-hot → linear pipelines served
/// through the CSR fast path vs the dense compiled graph.
fn sparse(cfg: &Config) {
    use hb_core::sparse::SparseOneHotLinear;
    let rows = ((8_000.0 * cfg.scale) as usize).max(1_000);
    let mut t = Table::new(
        "sparse",
        "Sparse one-hot fast path (CSR SpMM) vs dense compiled graph",
        &[
            "columns",
            "vocab",
            "one-hot width",
            "Sklearn",
            "HB dense",
            "HB sparse",
        ],
    );
    for (d, vocab) in [(20usize, 8usize), (40, 20), (60, 40)] {
        let x = Tensor::from_fn(&[rows, d], |i| {
            ((i[0].wrapping_mul(31).wrapping_add(i[1] * 7)) % vocab) as f32
        });
        let y = Targets::Classes((0..rows).map(|i| (i % 2) as i64).collect());
        let split = rows * 4 / 5;
        let (xtr, xte) = (
            x.slice(0, 0, split).to_contiguous(),
            x.slice(0, split, rows).to_contiguous(),
        );
        let ytr = Targets::Classes(y.classes()[..split].to_vec());
        let pipe = fit_pipeline(
            &[
                OpSpec::OneHotEncoder,
                OpSpec::LogisticRegression(LinearConfig {
                    epochs: 20,
                    ..Default::default()
                }),
            ],
            &xtr,
            &ytr,
        );
        let width = match &pipe.ops[0] {
            hb_pipeline::FittedOp::OneHotEncoder(e) => e.out_width(),
            _ => unreachable!(),
        };
        let skl = truncated_mean_secs(cfg.reps, || wall(|| pipe.predict_proba(&xte)).1);
        let dense = compile(
            &pipe,
            &CompileOptions {
                expected_batch: xte.shape()[0],
                ..Default::default()
            },
        )
        .unwrap();
        let dense_s =
            truncated_mean_secs(cfg.reps, || wall(|| dense.predict_proba(&xte).unwrap()).1);
        let sp = SparseOneHotLinear::try_lower(&pipe).expect("pattern applies");
        // Validate before timing.
        assert!(hb_ml::metrics::allclose(
            &sp.predict_proba(&xte),
            &pipe.predict_proba(&xte),
            1e-4,
            1e-4
        ));
        let sparse_s = truncated_mean_secs(cfg.reps, || wall(|| sp.predict_proba(&xte)).1);
        t.row(vec![
            d.to_string(),
            vocab.to_string(),
            width.to_string(),
            fmt_secs(skl),
            fmt_secs(dense_s),
            fmt_secs(sparse_s),
        ]);
        eprintln!("  [sparse] {d} cols done");
    }
    t.print_and_save();
}

/// Figure 12: end-to-end speedups over the OpenML-CC18-like suite.
fn fig12(cfg: &Config) {
    let n_tasks = ((40.0 * cfg.scale) as usize).clamp(10, 200);
    let tasks = openml_cc18_like(n_tasks, 4_000, 256, cfg.seed);
    let mut speedups_cpu = Vec::new();
    let mut speedups_gpu = Vec::new();
    let mut failures = 0usize;
    for (i, task) in tasks.iter().enumerate() {
        let ds = &task.dataset;
        let pipe = fit_pipeline(&task.specs, &ds.x_train, &ds.y_train);
        let n_ops = pipe.len();
        let skl = truncated_mean_secs(2, || {
            wall(|| {
                hb_ml::baselines::emulate_sklearn_pipeline_dispatch(n_ops);
                pipe.predict_proba(&ds.x_test)
            })
            .1
        });
        let run = |device: Device| -> Option<f64> {
            let opts = CompileOptions {
                device,
                expected_batch: ds.n_test(),
                ..Default::default()
            };
            let model = compile(&pipe, &opts).ok()?;
            Some(truncated_mean_secs(2, || {
                let t = Instant::now();
                let (_, stats) = model.predict_with_stats(&ds.x_test).expect("scoring");
                stats
                    .simulated
                    .map(|d| d.as_secs_f64())
                    .unwrap_or(t.elapsed().as_secs_f64())
            }))
        };
        match run(Device::cpu()) {
            Some(hb) => speedups_cpu.push(skl / hb),
            None => failures += 1,
        }
        if let Some(hb) = run(Device::Sim(P100)) {
            speedups_gpu.push(skl / hb);
        }
        if (i + 1) % 10 == 0 {
            eprintln!("  [fig12] {}/{} pipelines", i + 1, tasks.len());
        }
    }
    let summarize = |v: &mut Vec<f64>| -> Vec<String> {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| v[(p * (v.len() - 1) as f64) as usize];
        let faster = v.iter().filter(|&&s| s > 1.0).count() as f64 / v.len() as f64;
        vec![
            format!("{:.2}x", q(0.0)),
            format!("{:.2}x", q(0.1)),
            format!("{:.2}x", q(0.5)),
            format!("{:.2}x", q(0.9)),
            format!("{:.2}x", q(1.0)),
            format!("{:.0}%", faster * 100.0),
        ]
    };
    let mut t = Table::new(
        "fig12",
        &format!(
            "End-to-end speedup over {} OpenML-CC18-like pipelines ({} failed to compile)",
            tasks.len(),
            failures
        ),
        &["Target", "min", "p10", "median", "p90", "max", "% sped up"],
    );
    let mut cpu_row = vec!["CPU".to_string()];
    cpu_row.extend(summarize(&mut speedups_cpu));
    t.row(cpu_row);
    let mut gpu_row = vec!["P100 (sim)".to_string()];
    gpu_row.extend(summarize(&mut speedups_gpu));
    t.row(gpu_row);
    t.print_and_save();
}

/// Concurrent serving soak: `--clients` threads hammer a supervised
/// worker pool for `--soak-secs` per fault scenario. The run *gates* on
/// the supervisor's invariants — zero worker deaths, strictly monotonic
/// incident sequence numbers, non-deadlocking drain, and no silently
/// wrong answer — and reports throughput, outcome counts, and
/// queue-wait / end-to-end latency quantiles in
/// `bench_results/soak.json`.
///
/// Two overload scenarios close the run, driving single-record traffic
/// from 2x-queue-capacity client pools: `overload-1rec` (the
/// uncoalesced baseline) and `overload-coalesce` (the micro-batching
/// front door). The coalesced scenario gates on the tentpole claims:
/// >= 2x the baseline's ok-req/s, end-to-end p99 within the deadline
/// budget, zero worker panics, no successful answer past its deadline,
/// and per-record outputs bit-identical to uncoalesced execution.
fn soak(cfg: &Config) {
    use hb_serve::{
        BreakerConfig, CoalesceConfig, FaultPlan, FaultScope, IncidentKind, Rung, ServeConfig,
        ServeError, ServingModel, Supervisor,
    };
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let x = Tensor::from_fn(&[96, 6], |i| ((i[0] * 7 + i[1] * 3) % 17) as f32 * 0.25);
    let y = Targets::Classes((0..96).map(|i| (i % 2) as i64).collect());
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::RandomForestClassifier(hb_ml::forest::ForestConfig {
                n_trees: cfg.trees.min(10),
                max_depth: cfg.depth.min(5),
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    let want = pipe.predict_proba(&x);

    let scenarios: Vec<(&str, ServeConfig)> = vec![
        (
            "clean",
            ServeConfig {
                queue_capacity: 512,
                ..ServeConfig::default()
            },
        ),
        (
            "kernel_error",
            ServeConfig {
                faults: FaultPlan {
                    kernel_error: true,
                    scope: FaultScope::FirstRuns(50),
                    ..FaultPlan::none()
                },
                queue_capacity: 512,
                max_retries: 1,
                ..ServeConfig::default()
            },
        ),
        (
            "nan_poison",
            ServeConfig {
                faults: FaultPlan {
                    nan_poison: true,
                    scope: FaultScope::FirstRuns(100),
                    ..FaultPlan::none()
                },
                queue_capacity: 512,
                canary_period: 4,
                watchdog_interval: Duration::from_millis(10),
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    cooldown: Duration::from_millis(10),
                },
                ..ServeConfig::default()
            },
        ),
        (
            "slow+deadline",
            ServeConfig {
                faults: FaultPlan {
                    slow_kernel: Some(Duration::from_millis(2)),
                    ..FaultPlan::none()
                },
                deadline: Some(Duration::from_millis(8)),
                queue_capacity: 512,
                watchdog_interval: Duration::from_millis(10),
                ..ServeConfig::default()
            },
        ),
    ];
    // Reproducible chaos: HB_CHAOS_SEED overrides every scenario's
    // fault-schedule seed for bit-exact reruns.
    let scenarios: Vec<(&str, ServeConfig)> = scenarios
        .into_iter()
        .map(|(name, mut sc)| {
            sc.faults = sc.faults.with_env_seed();
            (name, sc)
        })
        .collect();
    if let Some((_, first)) = scenarios.first() {
        eprintln!("  [soak] chaos seed = {:#x}", first.faults.seed);
    }

    let mut t = Table::new(
        "soak",
        &format!(
            "Concurrent soak: {} clients x {:.1}s per scenario, 4 workers",
            cfg.clients, cfg.soak_secs
        ),
        &[
            "Scenario",
            "reqs",
            "ok",
            "best-rung",
            "degraded",
            "overload",
            "deadline",
            "shed",
            "rejected",
            "batches",
            "req/s",
            "qw p50/p95/p99",
            "e2e p50/p95/p99",
            "workers",
            "incidents",
        ],
    );

    for (name, config) in scenarios {
        let model = ServingModel::new(&pipe, config).expect("soak pipeline must serve");
        let sup = Arc::new(Supervisor::spawn(model, 4));
        let ok = Arc::new(AtomicU64::new(0));
        let best_cnt = Arc::new(AtomicU64::new(0));
        let degraded = Arc::new(AtomicU64::new(0));
        let overloaded = Arc::new(AtomicU64::new(0));
        let deadline_miss = Arc::new(AtomicU64::new(0));
        let rejected = Arc::new(AtomicU64::new(0));
        let best = sup.model().best_compiled_rung().unwrap_or(Rung::Reference);
        let t_end = Instant::now() + Duration::from_secs_f64(cfg.soak_secs);
        let started = Instant::now();
        let clients: Vec<_> = (0..cfg.clients.max(1))
            .map(|_| {
                let sup = Arc::clone(&sup);
                let x = x.clone();
                let want = want.clone();
                let (ok, best_cnt, degraded, overloaded, deadline_miss, rejected) = (
                    Arc::clone(&ok),
                    Arc::clone(&best_cnt),
                    Arc::clone(&degraded),
                    Arc::clone(&overloaded),
                    Arc::clone(&deadline_miss),
                    Arc::clone(&rejected),
                );
                std::thread::spawn(move || {
                    while Instant::now() < t_end {
                        match sup.predict_detailed(&x) {
                            Ok(served) => {
                                assert!(
                                    hb_ml::metrics::allclose(&served.output, &want, 1e-5, 1e-5),
                                    "soak: silently wrong answer from {:?}",
                                    served.rung
                                );
                                ok.fetch_add(1, Ordering::Relaxed);
                                if served.rung == best {
                                    best_cnt.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    degraded.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(ServeError::Overloaded { .. }) => {
                                overloaded.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(ServeError::DeadlineExceeded { .. }) => {
                                deadline_miss.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("soak client panicked");
        }
        let elapsed = started.elapsed().as_secs_f64();

        // Invariant gates — these abort the bench (non-zero exit) when
        // violated, which is what scripts/ci.sh keys on.
        let health = sup.health();
        assert_eq!(health.workers_alive, 4, "soak[{name}]: a worker died");
        let incidents = sup.incidents();
        assert!(
            incidents.windows(2).all(|w| w[0].seq < w[1].seq),
            "soak[{name}]: incident sequence numbers must be strictly monotonic"
        );
        sup.drain(); // a deadlock here hangs the gate — failure by timeout
        let lat = sup.latency();
        let stats = sup.model().stats();
        let total = stats.total_served()
            + stats.rejected_overload
            + stats.deadline_misses
            + stats.all_rungs_failed;
        t.row(vec![
            name.to_string(),
            total.to_string(),
            ok.load(Ordering::Relaxed).to_string(),
            best_cnt.load(Ordering::Relaxed).to_string(),
            degraded.load(Ordering::Relaxed).to_string(),
            overloaded.load(Ordering::Relaxed).to_string(),
            deadline_miss.load(Ordering::Relaxed).to_string(),
            stats.shed_expired.to_string(),
            rejected.load(Ordering::Relaxed).to_string(),
            stats.coalesced_batches.to_string(),
            format!(
                "{:.0}",
                ok.load(Ordering::Relaxed) as f64 / elapsed.max(1e-9)
            ),
            lat.queue_wait.format_p50_p95_p99(),
            lat.end_to_end.format_p50_p95_p99(),
            format!("{}/4", health.workers_alive),
            sup.model().incidents().len().to_string(),
        ]);
        eprintln!("  [soak] {name} done");
    }

    // --- Overload gate: single-record traffic at 2x queue capacity ---
    //
    // A client pool twice the size of the admission queue hammers the
    // server with one-record requests under a deadline SLO. The
    // baseline executes each record individually; the coalesced run
    // must sustain at least 2x its ok-throughput while keeping e2e p99
    // inside the budget, never answering Ok past a deadline, never
    // panicking a worker, and returning per-record outputs bit-identical
    // to uncoalesced compiled execution.
    let coalesce_cap = 64usize;
    let overload_clients = 2 * coalesce_cap;
    let deadline_budget = Duration::from_millis(50);
    let n_rows = 32usize;
    let rows: Vec<Tensor<f32>> = (0..n_rows)
        .map(|s| Tensor::from_fn(&[1, 6], move |i| ((s * 7 + i[1] * 3) % 17) as f32 * 0.25))
        .collect();
    // Ground truth from an uncoalesced compiled-rung execution of each
    // row alone: the bit-identity oracle.
    let solo = ServingModel::new(&pipe, ServeConfig::default()).expect("solo model must serve");
    let solo_rows: Vec<(Vec<u32>, Tensor<f32>)> = rows
        .iter()
        .map(|r| {
            let out = solo.predict(r).expect("solo path must serve");
            (out.iter().map(f32::to_bits).collect(), out)
        })
        .collect();
    let mut ok_rates: Vec<f64> = Vec::new();
    for (name, coalesce_on) in [("overload-1rec", false), ("overload-coalesce", true)] {
        let config = ServeConfig {
            deadline: Some(deadline_budget),
            queue_capacity: if coalesce_on { 512 } else { coalesce_cap },
            coalesce: coalesce_on.then(|| CoalesceConfig {
                queue_capacity: coalesce_cap,
                ..CoalesceConfig::default()
            }),
            ..ServeConfig::default()
        };
        let model = ServingModel::new(&pipe, config).expect("overload pipeline must serve");
        let sup = Arc::new(Supervisor::spawn(model, 4));
        let ok = Arc::new(AtomicU64::new(0));
        let best_cnt = Arc::new(AtomicU64::new(0));
        let degraded = Arc::new(AtomicU64::new(0));
        let overloaded = Arc::new(AtomicU64::new(0));
        let deadline_miss = Arc::new(AtomicU64::new(0));
        let rejected = Arc::new(AtomicU64::new(0));
        let t_end = Instant::now() + Duration::from_secs_f64(cfg.soak_secs);
        let started = Instant::now();
        let clients: Vec<_> = (0..overload_clients)
            .map(|c| {
                let sup = Arc::clone(&sup);
                let row = rows[c % n_rows].clone();
                let (want_bits, want) = solo_rows[c % n_rows].clone();
                let (ok, best_cnt, degraded, overloaded, deadline_miss, rejected) = (
                    Arc::clone(&ok),
                    Arc::clone(&best_cnt),
                    Arc::clone(&degraded),
                    Arc::clone(&overloaded),
                    Arc::clone(&deadline_miss),
                    Arc::clone(&rejected),
                );
                std::thread::spawn(move || {
                    while Instant::now() < t_end {
                        match sup.predict_one(&row) {
                            Ok(served) => {
                                assert!(
                                    served.elapsed <= deadline_budget,
                                    "soak[{name}]: ok answer exceeded its deadline \
                                     ({:?} > {deadline_budget:?})",
                                    served.elapsed
                                );
                                if served.rung == Rung::Compiled {
                                    let got: Vec<u32> =
                                        served.output.iter().map(f32::to_bits).collect();
                                    assert!(
                                        got == want_bits,
                                        "soak[{name}]: coalesced row not bit-identical to \
                                         uncoalesced execution"
                                    );
                                    best_cnt.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    assert!(
                                        hb_ml::metrics::allclose(&served.output, &want, 1e-5, 1e-5),
                                        "soak[{name}]: silently wrong answer from {:?}",
                                        served.rung
                                    );
                                    degraded.fetch_add(1, Ordering::Relaxed);
                                }
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServeError::Overloaded { .. }) => {
                                overloaded.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_micros(100));
                            }
                            Err(ServeError::DeadlineExceeded { .. })
                            | Err(ServeError::Expired { .. }) => {
                                deadline_miss.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("soak overload client panicked");
        }
        let elapsed = started.elapsed().as_secs_f64();

        let health = sup.health();
        assert_eq!(health.workers_alive, 4, "soak[{name}]: a worker died");
        let incidents = sup.incidents();
        assert!(
            incidents.windows(2).all(|w| w[0].seq < w[1].seq),
            "soak[{name}]: incident sequence numbers must be strictly monotonic"
        );
        assert_eq!(
            incidents
                .iter()
                .filter(|i| i.kind == IncidentKind::WorkerPanic)
                .count(),
            0,
            "soak[{name}]: overload must not panic workers"
        );
        sup.drain();
        let lat = sup.latency();
        let stats = sup.model().stats();
        let ok_n = ok.load(Ordering::Relaxed);
        let rate = ok_n as f64 / elapsed.max(1e-9);
        if coalesce_on {
            assert!(
                stats.coalesced_batches > 0,
                "soak[{name}]: coalescing never formed a batch"
            );
            assert!(
                lat.end_to_end.quantile(0.99) <= deadline_budget,
                "soak[{name}]: e2e p99 {:?} blew the {deadline_budget:?} budget",
                lat.end_to_end.quantile(0.99)
            );
        }
        // Per-record totals from the client side: model-level counters
        // count batch executions, not member records, under coalescing.
        let total = ok_n
            + overloaded.load(Ordering::Relaxed)
            + deadline_miss.load(Ordering::Relaxed)
            + rejected.load(Ordering::Relaxed);
        t.row(vec![
            name.to_string(),
            total.to_string(),
            ok_n.to_string(),
            best_cnt.load(Ordering::Relaxed).to_string(),
            degraded.load(Ordering::Relaxed).to_string(),
            overloaded.load(Ordering::Relaxed).to_string(),
            deadline_miss.load(Ordering::Relaxed).to_string(),
            stats.shed_expired.to_string(),
            rejected.load(Ordering::Relaxed).to_string(),
            stats.coalesced_batches.to_string(),
            format!("{rate:.0}"),
            lat.queue_wait.format_p50_p95_p99(),
            lat.end_to_end.format_p50_p95_p99(),
            format!("{}/4", health.workers_alive),
            sup.model().incidents().len().to_string(),
        ]);
        ok_rates.push(rate);
        eprintln!("  [soak] {name} done ({rate:.0} ok req/s)");
    }
    assert!(
        ok_rates[1] >= 2.0 * ok_rates[0],
        "soak[overload]: coalescing sustained only {:.0} ok req/s vs the {:.0} single-record \
         baseline — the >=2x gate failed",
        ok_rates[1],
        ok_rates[0]
    );
    t.print_and_save();
}

/// Multi-model store scaling: N replicas behind one `ModelStore` must
/// grow memory sub-linearly (constant dedup + shared plan arenas), and
/// hot-swap must auto-promote a clean retrain and auto-roll-back a
/// divergent one. Gates: `measured(48) <= 0.5 * 48 * measured(1)`, the
/// clean deploy promotes, and the seeded divergent deploy rolls back.
fn store_bench(cfg: &Config) {
    use hb_serve::{FaultPlan, IncidentKind, ModelStore, ServeConfig, ServeError, StoreConfig};
    use std::time::Duration;

    // Reproducible chaos: the divergent retrain below is seeded, and
    // HB_CHAOS_SEED overrides the seed for ad-hoc reruns.
    let faults = FaultPlan {
        seed: cfg.seed,
        ..FaultPlan::none()
    }
    .with_env_seed();
    eprintln!("  [store] chaos seed = {:#x}", faults.seed);

    let x = Tensor::from_fn(&[64, 8], |i| ((i[0] * 7 + i[1] * 3) % 17) as f32 * 0.25);
    let fit = |label_stride: usize| {
        let y = Targets::Classes((0..64).map(|i| ((i / label_stride) % 2) as i64).collect());
        fit_pipeline(
            &[
                OpSpec::StandardScaler,
                OpSpec::RandomForestClassifier(hb_ml::forest::ForestConfig {
                    n_trees: cfg.trees.min(12),
                    max_depth: cfg.depth.min(5),
                    ..Default::default()
                }),
            ],
            &x,
            &y,
        )
    };
    let pipe = fit(1);

    let mut t = Table::new(
        "store",
        "Multi-model store: dedup memory growth + hot-swap (§5 robustness)",
        &[
            "scenario",
            "models",
            "measured KiB",
            "naive KiB (n x 1)",
            "ratio",
            "pool entries",
            "store op/s",
            "solo op/s",
            "outcome",
        ],
    );

    // Steady-state ops/s of a warm predict loop: warm once, then count
    // completed calls inside a fixed wall budget.
    let ops_per_sec = |step: &mut dyn FnMut()| {
        step();
        let t0 = Instant::now();
        let budget = Duration::from_millis(150);
        let mut ops = 0u64;
        while t0.elapsed() < budget {
            step();
            ops += 1;
        }
        ops as f64 / t0.elapsed().as_secs_f64()
    };

    // Part 1: replica fleets. Identical artifacts (the per-region /
    // per-tenant replica case) must share their constants through the
    // store's content-hashed pool.
    let mut single = 0usize;
    let mut growth_ok = true;
    let mut throughput_ok = true;
    for &n in &[1usize, 4, 16, 48] {
        let store = ModelStore::new(StoreConfig::default());
        let names: Vec<String> = (0..n).map(|m| format!("replica-{m:02}")).collect();
        for name in &names {
            store
                .register(name, &pipe, ServeConfig::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        let measured = store.measured_bytes();
        if n == 1 {
            single = measured;
        }
        let naive = single * n;
        let ratio = measured as f64 / naive as f64;
        // The sub-linear gate from the issue: 48 replicas must cost at
        // most half of 48 isolated copies.
        let ok = n == 1 || measured * 2 <= naive;
        growth_ok &= ok;
        // Steady-state throughput gate: round-robin predicts through the
        // shared store must keep at least half the rate of n isolated
        // ServingModels (dedup and the shared front door are bookkeeping,
        // not serving-path work).
        let solo: Vec<hb_serve::ServingModel> = (0..n)
            .map(|_| {
                hb_serve::ServingModel::new(&pipe, ServeConfig::default())
                    .expect("solo replica builds")
            })
            .collect();
        let mut i = 0usize;
        let store_tp = ops_per_sec(&mut || {
            let name = &names[i % n];
            i += 1;
            store
                .predict(name, &x)
                .unwrap_or_else(|e| panic!("store {name}: {e}"));
        });
        let mut j = 0usize;
        let solo_tp = ops_per_sec(&mut || {
            let m = &solo[j % n];
            j += 1;
            m.predict(&x)
                .unwrap_or_else(|e| panic!("solo replica: {e}"));
        });
        let tp_ok = store_tp >= 0.5 * solo_tp;
        throughput_ok &= tp_ok;
        t.row(vec![
            "replicas".into(),
            n.to_string(),
            format!("{:.0}", measured as f64 / 1024.0),
            format!("{:.0}", naive as f64 / 1024.0),
            format!("{ratio:.2}"),
            store.pool_entries().to_string(),
            format!("{store_tp:.0}"),
            format!("{solo_tp:.0}"),
            if !tp_ok {
                "FAIL (throughput)".into()
            } else if n == 1 {
                "baseline".into()
            } else if ok {
                "sub-linear".into()
            } else {
                "FAIL".into()
            },
        ]);
    }

    // Part 2: hot-swap. A clean retrain promotes behind a canary; a
    // divergent (shuffled-label) retrain is caught and rolled back with
    // the prior version serving throughout.
    let store = ModelStore::new(StoreConfig {
        canary_fraction: 2,
        promote_after: 4,
        max_canary_failures: 2,
        ..StoreConfig::default()
    });
    store
        .register("ranker", &pipe, ServeConfig::default())
        .expect("register v1");
    let drive = |until: &dyn Fn() -> bool| {
        let t0 = Instant::now();
        while !until() {
            if t0.elapsed() > Duration::from_secs(20) {
                return false;
            }
            if let Err(e @ ServeError::Internal(_)) = store.predict("ranker", &x) {
                panic!("store bench: {e}");
            }
        }
        true
    };

    store
        .deploy("ranker", &pipe, ServeConfig::default())
        .expect("deploy clean v2");
    let promoted = drive(&|| store.version("ranker") == Some(2));
    t.row(vec![
        "hot-swap clean v2".into(),
        "1".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        if promoted {
            "auto-promoted".into()
        } else {
            "FAIL (never promoted)".into()
        },
    ]);

    let divergent = fit(3);
    store
        .deploy("ranker", &divergent, ServeConfig::default())
        .expect("deploy divergent v3");
    let rolled_back = drive(&|| !store.deploying("ranker")) && store.version("ranker") == Some(2);
    let incident_logged = store
        .incidents()
        .iter()
        .any(|i| i.kind == IncidentKind::RolledBack && i.model.as_deref() == Some("ranker@v3"));
    t.row(vec![
        "hot-swap divergent v3".into(),
        "1".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        if rolled_back && incident_logged {
            "auto-rolled-back, v2 serving".into()
        } else {
            "FAIL (divergence not contained)".into()
        },
    ]);
    t.print_and_save();

    assert!(
        growth_ok,
        "store: replica memory growth is not sub-linear — dedup regressed"
    );
    assert!(
        throughput_ok,
        "store: steady-state throughput regressed below half of isolated replicas"
    );
    assert!(promoted, "store: clean v2 never auto-promoted");
    assert!(
        rolled_back && incident_logged,
        "store: divergent v3 was not rolled back (version {:?})",
        store.version("ranker")
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "all".to_string();
    let mut cfg = Config::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args[i].parse().expect("--scale takes a float");
            }
            "--trees" => {
                i += 1;
                cfg.trees = args[i].parse().expect("--trees takes an integer");
            }
            "--depth" => {
                i += 1;
                cfg.depth = args[i].parse().expect("--depth takes an integer");
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--reps" => {
                i += 1;
                cfg.reps = args[i].parse().expect("--reps takes an integer");
            }
            "--soak-secs" => {
                i += 1;
                cfg.soak_secs = args[i].parse().expect("--soak-secs takes a float");
            }
            "--clients" => {
                i += 1;
                cfg.clients = args[i].parse().expect("--clients takes an integer");
            }
            other => exp = other.to_string(),
        }
        i += 1;
    }

    let t0 = Instant::now();
    let mut zoo = Zoo::new(cfg.clone());
    let run = |zoo: &mut Zoo, cfg: &Config, name: &str| match name {
        "table7" => table7(zoo),
        "table8" => table8(zoo),
        "table9" => table9(zoo),
        "table10" => table10(zoo),
        "table11" => table11(cfg),
        "table12" => table12(cfg),
        "fig4" => fig4(zoo),
        "fig6" => fig6(zoo),
        "memplan" => memplan(zoo),
        "lir" => lir_table(zoo),
        "cost" => cost_table(zoo),
        "fig7" => fig7(zoo),
        "fig8" => fig8(cfg),
        "fig9" => fig9(cfg),
        "fig10" => fig10(cfg),
        "fig12" => fig12(cfg),
        "ablation" => ablation(cfg),
        "sparse" => sparse(cfg),
        "soak" => soak(cfg),
        "store" => store_bench(cfg),
        "validate" => validate(zoo),
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!("available: table7 table8 table9 table10 table11 table12 fig4 fig6 fig7 fig8 fig9 fig10 fig12 memplan lir cost ablation sparse soak store validate all");
            std::process::exit(2);
        }
    };
    if exp == "all" {
        for name in [
            "table7", "table8", "table9", "table10", "validate", "table11", "table12", "fig4",
            "fig6", "fig7", "fig8", "fig9", "fig10", "fig12", "memplan", "lir", "cost", "ablation",
            "sparse", "store",
        ] {
            eprintln!("\n>>> running {name}");
            run(&mut zoo, &cfg, name);
        }
    } else {
        run(&mut zoo, &cfg, &exp);
    }
    eprintln!("\nall done in {:.1}s", t0.elapsed().as_secs_f64());
}
