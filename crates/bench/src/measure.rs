//! Measurement utilities shared by the `tables` harness and the
//! Criterion benches: the paper's timing protocol (5 runs, truncated
//! mean, §6 "Experimental Setup"), model training helpers, and scorer
//! adapters that return *device seconds* (measured wall time on CPU,
//! modeled latency on simulated GPUs).

use std::time::Instant;

use hb_backend::{Backend, Device};
use hb_core::fil::FilForest;
use hb_core::{compile, CompileOptions, CompiledModel, TreeStrategy};
use hb_data::Dataset;
use hb_ml::baselines::{OnnxLikeForest, SklearnLikeForest};
use hb_ml::ensemble::TreeEnsemble;
use hb_ml::forest::{ForestConfig, RandomForestClassifier, RandomForestRegressor};
use hb_ml::gbdt::{GbdtConfig, GradientBoostingClassifier, GradientBoostingRegressor};
use hb_ml::Task;
use hb_pipeline::Pipeline;
use hb_tensor::Tensor;

/// Runs `f` `reps` times and returns the truncated mean of the measured
/// seconds (drop min and max, average the rest — the paper's protocol).
pub fn truncated_mean_secs(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1)).map(|_| f()).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if times.len() > 2 {
        times = times[1..times.len() - 1].to_vec();
    }
    times.iter().sum::<f64>() / times.len() as f64
}

/// Times one invocation of `f` in seconds.
pub fn wall<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Human-readable seconds (matches the paper's mixed s/ms formatting).
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// The three training algorithms of §6.1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// scikit-learn-style random forest.
    RandomForest,
    /// LightGBM-like leaf-wise boosting.
    LightGbm,
    /// XGBoost-like depth-wise boosting.
    XgBoost,
}

impl Algo {
    /// All three, in paper row order.
    pub const ALL: [Algo; 3] = [Algo::RandomForest, Algo::LightGbm, Algo::XgBoost];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Algo::RandomForest => "RandomForest",
            Algo::LightGbm => "LightGBM-like",
            Algo::XgBoost => "XGBoost-like",
        }
    }
}

/// Trains one of the three §6.1.1 model types on a dataset.
///
/// `n_trees` plays the paper's "500 trees" role (scaled down by the
/// harness) and `max_depth` its "max depth 8".
pub fn train_algo(ds: &Dataset, algo: Algo, n_trees: usize, max_depth: usize) -> TreeEnsemble {
    match (algo, ds.task) {
        (Algo::RandomForest, Task::Regression) => {
            RandomForestRegressor::new(ForestConfig {
                n_trees,
                max_depth,
                ..Default::default()
            })
            .fit(&ds.x_train, ds.y_train.values())
            .ensemble
        }
        (Algo::RandomForest, _) => {
            RandomForestClassifier::new(ForestConfig {
                n_trees,
                max_depth,
                ..Default::default()
            })
            .fit(&ds.x_train, ds.y_train.classes())
            .ensemble
        }
        (Algo::LightGbm, Task::Regression) => {
            GradientBoostingRegressor::new(GbdtConfig {
                n_rounds: n_trees,
                max_depth: max_depth + 4,
                ..GbdtConfig::lightgbm_like()
            })
            .fit(&ds.x_train, ds.y_train.values())
            .ensemble
        }
        (Algo::LightGbm, _) => {
            GradientBoostingClassifier::new(GbdtConfig {
                n_rounds: n_trees,
                max_depth: max_depth + 4,
                ..GbdtConfig::lightgbm_like()
            })
            .fit(&ds.x_train, ds.y_train.classes())
            .ensemble
        }
        (Algo::XgBoost, Task::Regression) => {
            GradientBoostingRegressor::new(GbdtConfig {
                n_rounds: n_trees,
                max_depth,
                ..GbdtConfig::xgboost_like()
            })
            .fit(&ds.x_train, ds.y_train.values())
            .ensemble
        }
        (Algo::XgBoost, _) => {
            GradientBoostingClassifier::new(GbdtConfig {
                n_rounds: n_trees,
                max_depth,
                ..GbdtConfig::xgboost_like()
            })
            .fit(&ds.x_train, ds.y_train.classes())
            .ensemble
        }
    }
}

/// A named scoring system returning `(output, device_seconds)` per batch.
pub struct Scorer {
    /// Column label.
    pub name: String,
    score: Box<dyn Fn(&Tensor<f32>) -> (Tensor<f32>, f64) + Sync>,
}

impl Scorer {
    /// Scores one batch.
    pub fn score(&self, x: &Tensor<f32>) -> (Tensor<f32>, f64) {
        (self.score)(x)
    }

    /// Total device seconds to score `x` in `batch`-sized chunks.
    pub fn score_in_batches(&self, x: &Tensor<f32>, batch: usize) -> f64 {
        let n = x.shape()[0];
        let mut total = 0.0;
        let mut i = 0;
        while i < n {
            let end = (i + batch).min(n);
            let chunk = x.slice(0, i, end).to_contiguous();
            total += self.score(&chunk).1;
            i = end;
        }
        total
    }
}

/// scikit-learn baseline scorer (row-parallel recursive traversal).
pub fn sklearn_scorer(e: &TreeEnsemble) -> Scorer {
    let f = SklearnLikeForest::new(e).with_dispatch_overhead();
    Scorer {
        name: "Sklearn".into(),
        score: Box::new(move |x| wall(|| f.predict_batch(x))),
    }
}

/// scikit-learn baseline restricted to one core (request/response runs).
pub fn sklearn_scorer_1core(e: &TreeEnsemble) -> Scorer {
    let f = SklearnLikeForest::new(e).with_dispatch_overhead();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    Scorer {
        name: "Sklearn".into(),
        score: Box::new(move |x| pool.install(|| wall(|| f.predict_batch(x)))),
    }
}

/// ONNX-ML baseline scorer (single-core flat iterative traversal).
pub fn onnx_scorer(e: &TreeEnsemble) -> Scorer {
    let f = OnnxLikeForest::new(e).with_dispatch_overhead();
    Scorer {
        name: "ONNX-ML".into(),
        score: Box::new(move |x| wall(|| f.predict_batch(x))),
    }
}

/// Hummingbird scorer for a backend/device/strategy combination.
///
/// On CPU the reported seconds are measured wall time; on simulated
/// devices they are the modeled device latency.
pub fn hb_scorer(
    e: &TreeEnsemble,
    backend: Backend,
    device: Device,
    strategy: TreeStrategy,
    expected_batch: usize,
) -> Scorer {
    let pipe = Pipeline::from_op(e.clone());
    let opts = CompileOptions {
        backend,
        device,
        tree_strategy: strategy,
        expected_batch,
        // Benchmarks measure the raw model; the pipeline rewrites are
        // benchmarked separately (Figures 9-10).
        optimize_pipeline: false,
        ..Default::default()
    };
    let model = compile(&pipe, &opts).expect("tree ensembles always compile");
    let sim = device.is_simulated();
    let name = match device {
        Device::Cpu { .. } => backend.label().to_string(),
        Device::Sim(s) => format!("{}@{}", backend.label(), s.name),
    };
    Scorer {
        name,
        score: Box::new(move |x| {
            let t = Instant::now();
            let (out, stats) = model.predict_with_stats(x).expect("scoring failed");
            let secs = if sim {
                stats
                    .simulated
                    .expect("sim device reports latency")
                    .as_secs_f64()
            } else {
                t.elapsed().as_secs_f64()
            };
            (out, secs)
        }),
    }
}

/// Compiles a Hummingbird model for non-scoring measurements
/// (conversion time, memory).
pub fn hb_model(
    e: &TreeEnsemble,
    backend: Backend,
    device: Device,
    expected_batch: usize,
) -> CompiledModel {
    let pipe = Pipeline::from_op(e.clone());
    let opts = CompileOptions {
        backend,
        device,
        expected_batch,
        optimize_pipeline: false,
        ..Default::default()
    };
    compile(&pipe, &opts).expect("tree ensembles always compile")
}

/// One executor's side of a planned-vs-refcount memory comparison:
/// truncated-mean latency plus the memory counters of the *last* run
/// (the steady state for planned execution).
#[derive(Debug, Clone)]
pub struct MemProfile {
    /// Truncated-mean seconds per batch.
    pub secs: f64,
    /// Peak host tensor bytes of the last run.
    pub peak_tensor_bytes: usize,
    /// Tensor storage allocations of the last run.
    pub allocations: usize,
    /// Static arena footprint (0 on the refcount path).
    pub arena_bytes: usize,
    /// Whether the last run executed a warm memory plan.
    pub planned: bool,
}

/// Runs `x` through a compiled model's executable on both the arena-
/// planned and the refcount executor, returning `(planned, refcount)`
/// profiles and asserting the two paths stay bit-identical.
///
/// The planned side is warmed first so its profile reflects the
/// steady state (plan cached, zero allocations) rather than the
/// plan-building first sighting.
pub fn memplan_profiles(
    model: &CompiledModel,
    x: &Tensor<f32>,
    reps: usize,
) -> (MemProfile, MemProfile) {
    let exe = model.executable();
    let inputs = [hb_tensor::DynTensor::F32(x.clone())];
    let run =
        |f: &dyn Fn() -> (Vec<hb_tensor::DynTensor>, hb_backend::RunStats)| -> (MemProfile, Vec<hb_tensor::DynTensor>) {
            let mut last = f();
            let secs = truncated_mean_secs(reps, || {
                let (r, t) = wall(f);
                last = r;
                t
            });
            let (out, stats) = last;
            (
                MemProfile {
                    secs,
                    peak_tensor_bytes: stats.peak_tensor_bytes,
                    allocations: stats.allocations,
                    arena_bytes: stats.arena_bytes,
                    planned: stats.planned,
                },
                out,
            )
        };
    let (planned, planned_out) = run(&|| exe.run_with_stats(&inputs).expect("planned run"));
    let (refcount, ref_out) = run(&|| exe.run_refcount_with_stats(&inputs).expect("refcount run"));
    for (p, r) in planned_out.iter().zip(ref_out.iter()) {
        assert_eq!(
            p.as_f32().to_vec(),
            r.as_f32().to_vec(),
            "planned and refcount executors diverged"
        );
    }
    (planned, refcount)
}

/// One dispatch strategy's side of a register-LIR vs stack-interpreter
/// comparison: truncated-mean latency on both executor paths.
#[derive(Debug, Clone)]
pub struct LirProfile {
    /// Truncated-mean seconds per batch through the planned executor.
    pub planned_secs: f64,
    /// Truncated-mean seconds per batch on the refcount path.
    pub refcount_secs: f64,
    /// Whether the planned runs actually executed a warm memory plan.
    pub planned: bool,
}

/// Profiles a compiled model's fused kernels under both dispatchers —
/// the verified register-LIR VM (the default) and the legacy stack
/// interpreter ([`hb_backend::Executable::with_fused_stack_dispatch`]) —
/// on both the arena-planned and the refcount executor, asserting all
/// four paths stay bit-identical. Returns `(lir, stack)`.
pub fn lir_profiles(
    model: &CompiledModel,
    x: &Tensor<f32>,
    reps: usize,
) -> (LirProfile, LirProfile) {
    let stack_exe = model.executable().with_fused_stack_dispatch();
    let inputs = [hb_tensor::DynTensor::F32(x.clone())];
    let profile = |exe: &hb_backend::Executable| {
        // First sighting of a batch size runs refcount while caching the
        // plan; warm it so the planned numbers reflect the steady state.
        let _ = exe.run_with_stats(&inputs).expect("warm run");
        let mut planned_last = exe.run_with_stats(&inputs).expect("planned run");
        let planned_secs = truncated_mean_secs(reps, || {
            let (r, t) = wall(|| exe.run_with_stats(&inputs).expect("planned run"));
            planned_last = r;
            t
        });
        let mut refcount_last = exe.run_refcount_with_stats(&inputs).expect("refcount run");
        let refcount_secs = truncated_mean_secs(reps, || {
            let (r, t) = wall(|| exe.run_refcount_with_stats(&inputs).expect("refcount run"));
            refcount_last = r;
            t
        });
        (
            LirProfile {
                planned_secs,
                refcount_secs,
                planned: planned_last.1.planned,
            },
            planned_last.0,
            refcount_last.0,
        )
    };
    let (lir, lir_planned, lir_refcount) = profile(model.executable());
    let (stack, stack_planned, stack_refcount) = profile(&stack_exe);
    let reference: Vec<Vec<f32>> = lir_planned.iter().map(|t| t.as_f32().to_vec()).collect();
    for (name, outs) in [
        ("lir-refcount", &lir_refcount),
        ("stack-planned", &stack_planned),
        ("stack-refcount", &stack_refcount),
    ] {
        for (r, o) in reference.iter().zip(outs.iter()) {
            assert_eq!(
                r,
                &o.as_f32().to_vec(),
                "{name} diverged from lir-planned dispatch"
            );
        }
    }
    (lir, stack)
}

/// FIL-like scorer (simulated GPU only).
pub fn fil_scorer(e: &TreeEnsemble, spec: hb_backend::DeviceSpec) -> Scorer {
    let fil = FilForest::new(e);
    Scorer {
        name: format!("FIL@{}", spec.name),
        score: Box::new(move |x| {
            let (out, stats) = fil.predict_simulated(x, &spec);
            let secs = stats.simulated.unwrap().as_secs_f64();
            (out, secs)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_mean_drops_extremes() {
        let mut vals = [10.0, 1.0, 2.0, 3.0, 100.0].into_iter();
        let m = truncated_mean_secs(5, move || vals.next().unwrap());
        assert!((m - 5.0).abs() < 1e-9, "{m}");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(123.4), "123");
        assert_eq!(fmt_secs(1.5), "1.50");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(2.5e-5), "25.0us");
    }

    #[test]
    fn scorers_agree_on_small_forest() {
        let ds = hb_data::synthetic_classification(300, 6, 2, 3);
        let e = train_algo(&ds, Algo::RandomForest, 5, 4);
        let (a, _) = sklearn_scorer(&e).score(&ds.x_test);
        let (b, _) = onnx_scorer(&e).score(&ds.x_test);
        let (c, _) = hb_scorer(
            &e,
            Backend::Compiled,
            Device::cpu(),
            TreeStrategy::Auto,
            100,
        )
        .score(&ds.x_test);
        assert_eq!(a.to_vec(), b.to_vec());
        assert!(hb_ml::metrics::allclose(&c, &a, 1e-4, 1e-4));
    }

    #[test]
    fn batched_scoring_covers_all_rows() {
        let ds = hb_data::synthetic_classification(100, 4, 2, 1);
        let e = train_algo(&ds, Algo::XgBoost, 3, 3);
        let s = sklearn_scorer(&e);
        let t = s.score_in_batches(&ds.x_test, 7);
        assert!(t > 0.0);
    }
}
