//! Shape and stride arithmetic, including NumPy-style broadcasting.

use crate::TensorError;

/// A tensor shape: the extent of each dimension, outermost first.
pub type Shape = Vec<usize>;

/// Computes row-major (C-order) strides, in elements, for `shape`.
pub fn contiguous_strides(shape: &[usize]) -> Vec<isize> {
    let mut strides = vec![0isize; shape.len()];
    let mut acc = 1isize;
    for (s, &dim) in strides.iter_mut().zip(shape.iter()).rev() {
        *s = acc;
        acc *= dim as isize;
    }
    strides
}

/// Total number of elements in `shape`.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Broadcasts two shapes together following NumPy semantics.
///
/// Dimensions are aligned from the right; each pair must be equal or one of
/// them must be 1.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Result<Shape, TensorError> {
    let ndim = a.len().max(b.len());
    let mut out = vec![0usize; ndim];
    for i in 0..ndim {
        let da = if i < ndim - a.len() {
            1
        } else {
            a[i - (ndim - a.len())]
        };
        let db = if i < ndim - b.len() {
            1
        } else {
            b[i - (ndim - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return Err(TensorError::BroadcastMismatch(a.to_vec(), b.to_vec()));
        };
    }
    Ok(out)
}

/// Strides for viewing a tensor of shape `from` (strides `strides`) as the
/// broadcast shape `to`: broadcast dimensions get stride 0.
///
/// # Panics
///
/// Panics if `from` does not broadcast to `to`; callers validate with
/// [`broadcast_shapes`] first.
pub fn broadcast_strides(from: &[usize], strides: &[isize], to: &[usize]) -> Vec<isize> {
    assert!(from.len() <= to.len(), "cannot broadcast to lower rank");
    let pad = to.len() - from.len();
    let mut out = vec![0isize; to.len()];
    for i in 0..from.len() {
        let (f, t) = (from[i], to[pad + i]);
        if f == t {
            out[pad + i] = strides[i];
        } else {
            assert_eq!(f, 1, "dimension {i} ({f}) does not broadcast to {t}");
            out[pad + i] = 0;
        }
    }
    out
}

/// Iterator over all multi-dimensional indices of `shape` in row-major
/// order, yielding the flat offset computed from `strides`.
pub struct StridedIter {
    shape: Vec<usize>,
    strides: Vec<isize>,
    index: Vec<usize>,
    offset: isize,
    remaining: usize,
}

impl StridedIter {
    /// Creates an iterator over `shape` using `strides`, starting at
    /// `offset`.
    pub fn new(shape: &[usize], strides: &[isize], offset: isize) -> Self {
        StridedIter {
            shape: shape.to_vec(),
            strides: strides.to_vec(),
            index: vec![0; shape.len()],
            offset,
            remaining: numel(shape),
        }
    }
}

impl Iterator for StridedIter {
    type Item = isize;

    fn next(&mut self) -> Option<isize> {
        if self.remaining == 0 {
            return None;
        }
        let cur = self.offset;
        self.remaining -= 1;
        // Advance the odometer from the innermost dimension outward.
        for d in (0..self.shape.len()).rev() {
            self.index[d] += 1;
            self.offset += self.strides[d];
            if self.index[d] < self.shape[d] {
                break;
            }
            self.offset -= self.strides[d] * self.shape[d] as isize;
            self.index[d] = 0;
        }
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for StridedIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_strides_row_major() {
        assert_eq!(contiguous_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(contiguous_strides(&[]), Vec::<isize>::new());
        assert_eq!(contiguous_strides(&[5]), vec![1]);
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 4]).unwrap(), vec![2, 4]);
        assert_eq!(broadcast_shapes(&[], &[3]).unwrap(), vec![3]);
        assert!(broadcast_shapes(&[2, 3], &[4]).is_err());
    }

    #[test]
    fn broadcast_strides_zeroes_expanded_dims() {
        let s = broadcast_strides(&[2, 1], &[1, 1], &[2, 4]);
        assert_eq!(s, vec![1, 0]);
        let s = broadcast_strides(&[3], &[1], &[2, 3]);
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn strided_iter_matches_row_major() {
        let shape = [2usize, 3];
        let strides = contiguous_strides(&shape);
        let offsets: Vec<isize> = StridedIter::new(&shape, &strides, 0).collect();
        assert_eq!(offsets, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn strided_iter_broadcast_repeats() {
        // Shape [2,3] viewing a length-3 vector along the last axis.
        let offsets: Vec<isize> = StridedIter::new(&[2, 3], &[0, 1], 0).collect();
        assert_eq!(offsets, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn strided_iter_empty_shape_yields_one() {
        let offsets: Vec<isize> = StridedIter::new(&[], &[], 5).collect();
        assert_eq!(offsets, vec![5]);
    }
}
