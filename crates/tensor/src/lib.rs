//! Dense n-dimensional tensor library for the Hummingbird reproduction.
//!
//! This crate provides the small set of tensor operators that the paper's
//! Tensor DAG Compiler targets (paper Table 2): batched GEMM, element-wise
//! arithmetic and comparisons, `gather`/`index_select`, `where`, reshapes,
//! concatenation, reductions (`sum`, `mean`, `max`, `argmax`, `logsumexp`),
//! and activation functions (`relu`, `tanh`, `sigmoid`).
//!
//! Tensors are row-major, reference-counted, and support zero-copy views
//! (reshape of contiguous data, slicing, broadcasting via stride-0
//! dimensions). All allocations are tracked by [`alloc`] so that the
//! paper's peak-memory experiment (Table 9) can be reproduced without an
//! external profiler.
//!
//! # Examples
//!
//! ```
//! use hb_tensor::Tensor;
//!
//! let x = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], &[2, 2]);
//! let y = Tensor::from_vec(vec![1.0f32, 0.0, 0.0, 1.0], &[2, 2]);
//! let z = x.matmul(&y);
//! assert_eq!(z.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
//! ```

// Pure-safe-Rust policy: every crate in this workspace is 100% safe
// Rust; see DESIGN.md ("Unsafe-code policy").
#![forbid(unsafe_code)]

pub mod alloc;
pub mod dtype;
pub mod dyn_tensor;
pub mod elementwise;
pub mod gather;
pub mod matmul;
pub mod reduce;
pub mod shape;
pub mod sparse;
pub mod tensor;
pub mod tune;

pub use dtype::{DType, Element, Float, Num};
pub use dyn_tensor::DynTensor;
pub use shape::{broadcast_shapes, Shape};
pub use tensor::Tensor;

/// Crate-wide error type for shape/dtype mismatches.
///
/// Most tensor operations panic on shape mismatch (mirroring the behaviour
/// of the DNN runtimes the paper targets), but the fallible entry points
/// used by the graph executor return this error instead so that a
/// malformed compiled graph surfaces as a recoverable failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes could not be broadcast together.
    BroadcastMismatch(Vec<usize>, Vec<usize>),
    /// An operation received a tensor of the wrong dtype.
    DTypeMismatch { expected: DType, got: DType },
    /// An axis argument was out of range for the tensor rank.
    AxisOutOfRange { axis: usize, ndim: usize },
    /// A reshape requested a different number of elements.
    NumelMismatch { from: usize, to: usize },
    /// Two tensors had incompatible ranks.
    RankMismatch { expected: usize, got: usize },
    /// A gather/select index pointed outside the indexed axis.
    IndexOutOfBounds { index: i64, len: usize },
    /// Any other shape incompatibility, with a human-readable description.
    ShapeMismatch(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::BroadcastMismatch(a, b) => {
                write!(f, "cannot broadcast shapes {a:?} and {b:?}")
            }
            TensorError::DTypeMismatch { expected, got } => {
                write!(f, "dtype mismatch: expected {expected:?}, got {got:?}")
            }
            TensorError::AxisOutOfRange { axis, ndim } => {
                write!(f, "axis {axis} out of range for rank {ndim}")
            }
            TensorError::NumelMismatch { from, to } => {
                write!(f, "cannot reshape {from} elements into {to}")
            }
            TensorError::RankMismatch { expected, got } => {
                write!(f, "rank mismatch: expected {expected}, got {got}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for axis length {len}")
            }
            TensorError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
