//! Measurement-driven tile autotuner for the blocked GEMM kernel.
//!
//! The register-tiled kernel in [`crate::matmul`] is parameterized by a
//! micro-tile (`mr`×`nr` output accumulators held in registers) and a
//! `kc` depth block. The best point depends on the panel shape and the
//! machine, so instead of hard-coding one, the first multiply of each
//! *shape class* benchmarks a small candidate grid on a synthetic panel
//! of that class and memoizes the winner, keyed by
//! `(⌈log2 m⌉, ⌈log2 k⌉, ⌈log2 n⌉, rayon threads)`.
//!
//! Tile choice can never change results: every candidate accumulates
//! each output element along a single chain in ascending-`k` order, so
//! the tuner is free to pick by time alone (see the determinism notes
//! on [`crate::matmul::gemm_panel_tiled`]).
//!
//! Winners persist in a small on-disk cache so repeated processes skip
//! the measurement. The cache lives at `$HB_TILE_CACHE` (or
//! `<tmp>/hb-tile-cache-v1.txt`); IO failures are ignored — the cache
//! is an optimization, never a correctness dependency. Set
//! `HB_TILE=off` to disable tiling, or `HB_TILE=mr,nr,kc` to pin a
//! configuration (both used by the differential test suite).

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::{Mutex, OnceLock};

/// One point of the tile grid: `mr`×`nr` register accumulators, depth
/// blocked by `kc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Micro-tile rows (LHS rows whose partial sums stay in registers).
    pub mr: usize,
    /// Micro-tile columns (RHS columns per register tile).
    pub nr: usize,
    /// Depth block: packed panels cover `kc` of the inner dimension.
    pub kc: usize,
}

impl TileConfig {
    /// Compact `mr x nr / kc` label for certificates and lint reports.
    pub fn label(&self) -> String {
        format!("{}x{}/kc{}", self.mr, self.nr, self.kc)
    }
}

/// The candidate grid. Small on purpose: tuning cost is paid on the
/// first multiply of a shape class, so a handful of points that span
/// register-pressure/reuse trade-offs beats an exhaustive sweep. Every
/// `(mr, nr)` pair here must have a monomorphized kernel instantiated
/// in `matmul::tile_loop_for`.
pub const TILE_CANDIDATES: [TileConfig; 5] = [
    TileConfig {
        mr: 2,
        nr: 16,
        kc: 256,
    },
    TileConfig {
        mr: 4,
        nr: 8,
        kc: 256,
    },
    TileConfig {
        mr: 4,
        nr: 16,
        kc: 256,
    },
    TileConfig {
        mr: 6,
        nr: 8,
        kc: 256,
    },
    TileConfig {
        mr: 6,
        nr: 4,
        kc: 256,
    },
];

/// Fallback when tuning is unavailable (e.g. measurement disabled): a
/// middle-of-the-grid point that is near-optimal on common panels.
pub const DEFAULT_TILE: TileConfig = TileConfig {
    mr: 4,
    nr: 8,
    kc: 256,
};

/// Shape class of a panel: sizes bucketed to ceil-log2 so one tuning
/// run covers every panel within a 2× band, plus the thread count
/// (parallel splits shrink the per-worker panel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeClass {
    m2: u8,
    k2: u8,
    n2: u8,
    threads: u16,
}

impl ShapeClass {
    pub fn of(m: usize, k: usize, n: usize, threads: usize) -> ShapeClass {
        let lg = |v: usize| (usize::BITS - v.max(1).next_power_of_two().leading_zeros() - 1) as u8;
        ShapeClass {
            m2: lg(m),
            k2: lg(k),
            n2: lg(n),
            threads: threads.min(u16::MAX as usize) as u16,
        }
    }
}

/// Caps the triggering panel's dims for the tuning benchmark so one
/// tuning pass stays around a millisecond per candidate. `k` and `n`
/// are kept exact whenever possible: edge-tile behavior (partial
/// register tiles on non-multiple widths) is precisely what separates
/// the candidates, so benchmarking a rounded shape would mislead.
fn bench_dims(m: usize, k: usize, n: usize) -> (usize, usize, usize) {
    (m.clamp(1, 512), k.clamp(1, 1024), n.clamp(1, 512))
}

/// How the active tile configuration was chosen, for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileSource {
    /// Measured fresh in this process.
    Tuned,
    /// Loaded from the on-disk cache.
    Cached,
    /// Pinned via `HB_TILE=mr,nr,kc`.
    Pinned,
    /// Tiling disabled (`HB_TILE=off`); classic i-k-j kernel in use.
    Disabled,
}

enum Override {
    None,
    Off,
    Pin(TileConfig),
}

struct Tuner {
    table: HashMap<ShapeClass, TileConfig>,
    /// Classes whose winners were measured (not disk-loaded) this
    /// process, pending a cache rewrite.
    dirty: bool,
    loaded_from_disk: usize,
}

fn tuner() -> &'static Mutex<Tuner> {
    static TUNER: OnceLock<Mutex<Tuner>> = OnceLock::new();
    TUNER.get_or_init(|| {
        let mut t = Tuner {
            table: HashMap::new(),
            dirty: false,
            loaded_from_disk: 0,
        };
        load_cache(&mut t);
        Mutex::new(t)
    })
}

fn override_mode() -> &'static Override {
    static MODE: OnceLock<Override> = OnceLock::new();
    MODE.get_or_init(|| match std::env::var("HB_TILE") {
        Err(_) => Override::None,
        Ok(v) if v.eq_ignore_ascii_case("off") => Override::Off,
        Ok(v) => {
            let parts: Vec<usize> = v.split(',').filter_map(|p| p.trim().parse().ok()).collect();
            match parts.as_slice() {
                [mr, nr, kc] if *mr >= 1 && *nr >= 1 && *kc >= 1 => Override::Pin(TileConfig {
                    mr: (*mr).min(8),
                    nr: (*nr).min(32),
                    kc: *kc,
                }),
                _ => Override::None,
            }
        }
    })
}

fn cache_path() -> std::path::PathBuf {
    match std::env::var_os("HB_TILE_CACHE") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::env::temp_dir().join("hb-tile-cache-v1.txt"),
    }
}

/// Loads the on-disk cache. Unparseable lines and IO errors are
/// silently skipped: a corrupt cache only costs a re-measurement.
fn load_cache(t: &mut Tuner) {
    let Ok(text) = std::fs::read_to_string(cache_path()) else {
        return;
    };
    for line in text.lines() {
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() != 8 || f[0] != "v1" {
            continue;
        }
        let p = |s: &str| s.parse::<usize>().ok();
        if let (Some(m2), Some(k2), Some(n2), Some(th), Some(mr), Some(nr), Some(kc)) = (
            p(f[1]),
            p(f[2]),
            p(f[3]),
            p(f[4]),
            p(f[5]),
            p(f[6]),
            p(f[7]),
        ) {
            let class = ShapeClass {
                m2: m2.min(63) as u8,
                k2: k2.min(63) as u8,
                n2: n2.min(63) as u8,
                threads: th.min(u16::MAX as usize) as u16,
            };
            // Only accept configs the kernel actually instantiates.
            if TILE_CANDIDATES.iter().any(|c| c.mr == mr && c.nr == nr) {
                t.table.insert(
                    class,
                    TileConfig {
                        mr,
                        nr,
                        kc: kc.max(1),
                    },
                );
                t.loaded_from_disk += 1;
            }
        }
    }
}

/// Rewrites the whole cache file (it is tiny). Errors are ignored.
fn store_cache(t: &Tuner) {
    let path = cache_path();
    let mut body = String::new();
    for (c, cfg) in &t.table {
        body.push_str(&format!(
            "v1 {} {} {} {} {} {} {}\n",
            c.m2, c.k2, c.n2, c.threads, cfg.mr, cfg.nr, cfg.kc
        ));
    }
    let tmp = path.with_extension("tmp");
    let write = std::fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(body.as_bytes()))
        .and_then(|_| std::fs::rename(&tmp, &path));
    drop(write); // best-effort: the in-memory table is authoritative
}

/// Returns the tile configuration for a panel of `m`×`k`×`n` under
/// `threads` workers, measuring the candidate grid on first sight of
/// the shape class. Returns `None` when tiling is disabled.
pub fn tile_for(m: usize, k: usize, n: usize, threads: usize) -> Option<(TileConfig, TileSource)> {
    match override_mode() {
        Override::Off => return None,
        Override::Pin(cfg) => return Some((*cfg, TileSource::Pinned)),
        Override::None => {}
    }
    let class = ShapeClass::of(m, k, n, threads);
    let mut t = match tuner().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    if let Some(cfg) = t.table.get(&class) {
        let src = if t.dirty || t.loaded_from_disk == 0 {
            TileSource::Tuned
        } else {
            TileSource::Cached
        };
        return Some((*cfg, src));
    }
    let cfg = measure_class(class, m, k, n);
    t.table.insert(class, cfg);
    t.dirty = true;
    store_cache(&t);
    Some((cfg, TileSource::Tuned))
}

/// Benchmarks every candidate on a synthetic panel shaped like the
/// (capped) triggering multiply and returns the fastest. Uses the
/// serial tiled kernel directly so the measurement is independent of
/// the Rayon pool. Panels in the same shape class tune on whichever
/// exact shape arrives first; classes span at most a 2× band per dim,
/// so the winner transfers.
fn measure_class(class: ShapeClass, m: usize, k: usize, n: usize) -> TileConfig {
    let (m, k, n) = bench_dims(m, k, n);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.25 - 1.0).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.5 - 1.5).collect();
    let mut out = vec![0.0f32; m * n];
    // Round-robin the candidates and keep each one's *minimum* over
    // several rounds: minimum-of-reps rejects one-sided noise (VM
    // steal time, interrupts), and interleaving keeps slow drift from
    // systematically favoring whichever candidate runs last. The first
    // round is a warm-up (pages in code and data) and is not recorded.
    let mut best_of = [f64::INFINITY; TILE_CANDIDATES.len()];
    for round in 0..4 {
        for (ci, cand) in TILE_CANDIDATES.iter().enumerate() {
            out.fill(0.0);
            let t0 = std::time::Instant::now();
            crate::matmul::gemm_panel_tiled(&a, &b, &mut out, m, k, n, *cand);
            let elapsed = t0.elapsed().as_secs_f64();
            if round > 0 && elapsed < best_of[ci] {
                best_of[ci] = elapsed;
            }
        }
    }
    let mut best = DEFAULT_TILE;
    let mut best_t = f64::INFINITY;
    for (ci, cand) in TILE_CANDIDATES.iter().enumerate() {
        if best_of[ci] < best_t {
            best_t = best_of[ci];
            best = *cand;
        }
    }
    if std::env::var_os("HB_TILE_DEBUG").is_some() {
        let times: Vec<String> = TILE_CANDIDATES
            .iter()
            .zip(best_of.iter())
            .map(|(c, t)| format!("{} {:.0}us", c.label(), t * 1e6))
            .collect();
        eprintln!(
            "[tune] class {class:?} bench {m}x{k}x{n}: {} -> {}",
            times.join(", "),
            best.label()
        );
    }
    best
}

/// Snapshot of tuned winners, for lint/bench reporting:
/// `(class (m2,k2,n2,threads), config)` pairs in unspecified order.
pub fn tuned_snapshot() -> Vec<((u8, u8, u8, u16), TileConfig)> {
    let t = match tuner().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    t.table
        .iter()
        .map(|(c, cfg)| ((c.m2, c.k2, c.n2, c.threads), *cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_class_buckets_log2() {
        assert_eq!(
            ShapeClass::of(1000, 13, 30, 1),
            ShapeClass::of(600, 9, 17, 1)
        );
        assert_ne!(
            ShapeClass::of(1000, 13, 30, 1),
            ShapeClass::of(1000, 13, 30, 4)
        );
        assert_ne!(
            ShapeClass::of(4096, 13, 30, 1),
            ShapeClass::of(1000, 13, 30, 1)
        );
    }

    #[test]
    fn bench_dims_capped_and_exact() {
        assert_eq!(bench_dims(1 << 20, 1 << 20, 1 << 20), (512, 1024, 512));
        // Exact (edge-tile-preserving) below the caps.
        assert_eq!(bench_dims(300, 13, 30), (300, 13, 30));
    }

    #[test]
    fn tile_for_memoizes() {
        let a = tile_for(777, 33, 29, 3);
        let b = tile_for(777, 33, 29, 3);
        match (a, b) {
            (Some((ca, _)), Some((cb, _))) => assert_eq!(ca, cb),
            (None, None) => {} // HB_TILE=off in the environment
            other => panic!("inconsistent tuner answers: {other:?}"),
        }
    }

    #[test]
    fn candidates_have_positive_dims() {
        for c in TILE_CANDIDATES {
            assert!(c.mr >= 1 && c.nr >= 1 && c.kc >= 1);
        }
    }
}
