//! Reductions along an axis: `sum`, `mean`, `max`, `argmax`, `logsumexp`,
//! and `softmax`.
//!
//! Ensemble aggregation (`ReduceMean` over the tree dimension in paper
//! §4.1), class selection (`argmax`), and the multiclass links all build on
//! these kernels.

use crate::dtype::{Float, Num};
use crate::tensor::Tensor;

/// Decomposes `shape` around `axis` into `(outer, len, inner)` extents so a
/// reduction can be written as three nested loops over contiguous data.
fn axis_split(shape: &[usize], axis: usize) -> (usize, usize, usize) {
    assert!(axis < shape.len(), "axis {axis} out of range for {shape:?}");
    let outer: usize = shape[..axis].iter().product();
    let len = shape[axis];
    let inner: usize = shape[axis + 1..].iter().product();
    (outer, len, inner)
}

fn reduced_shape(shape: &[usize], axis: usize, keepdim: bool) -> Vec<usize> {
    let mut s = shape.to_vec();
    if keepdim {
        s[axis] = 1;
    } else {
        s.remove(axis);
    }
    s
}

impl<T: Num> Tensor<T> {
    /// Generic fold along `axis` starting from `init`.
    fn fold_axis<U: Num>(
        &self,
        axis: usize,
        keepdim: bool,
        init: U,
        f: impl Fn(U, T) -> U,
    ) -> Tensor<U> {
        let (outer, _, inner) = axis_split(self.shape(), axis);
        let mut out = vec![init; outer * inner];
        self.fold_axis_into(axis, init, f, &mut out);
        Tensor::from_vec(out, &reduced_shape(self.shape(), axis, keepdim))
    }

    /// Allocation-free core of [`Tensor::fold_axis`]: folds along `axis`
    /// into a caller-provided buffer of size `outer * inner`.
    fn fold_axis_into<U: Num>(&self, axis: usize, init: U, f: impl Fn(U, T) -> U, out: &mut [U]) {
        let t = self.to_contiguous();
        let (outer, len, inner) = axis_split(t.shape(), axis);
        assert_eq!(
            out.len(),
            outer * inner,
            "reduce into: destination size mismatch"
        );
        let src = t.as_slice();
        out.fill(init);
        for o in 0..outer {
            for l in 0..len {
                let base = (o * len + l) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out[obase + i] = f(out[obase + i], src[base + i]);
                }
            }
        }
    }

    /// [`Tensor::sum_axis`] writing into a caller-provided buffer (the
    /// `keepdim` choice only affects the output *shape*, which the caller
    /// owns, so the `_into` variants do not take it).
    pub fn sum_axis_into(&self, axis: usize, out: &mut [T]) {
        self.fold_axis_into(axis, T::ZERO, |acc, v| acc + v, out);
    }

    /// [`Tensor::max_axis`] writing into a caller-provided buffer.
    pub fn max_axis_into(&self, axis: usize, out: &mut [T]) {
        self.fold_axis_into(
            axis,
            T::MIN_VALUE,
            |acc, v| if v > acc { v } else { acc },
            out,
        );
    }

    /// [`Tensor::mean_axis`] writing into a caller-provided buffer.
    pub fn mean_axis_into(&self, axis: usize, out: &mut [T]) {
        let n = self.shape()[axis].max(1);
        self.sum_axis_into(axis, out);
        let inv = T::ONE / T::from_usize(n);
        for v in out.iter_mut() {
            *v = *v * inv;
        }
    }

    /// [`Tensor::argmax_axis`] writing into a caller-provided buffer.
    ///
    /// Scans each output element's axis run with register accumulators, so
    /// no scratch tensor is needed; the first-maximum tie rule matches
    /// [`Tensor::argmax_axis`] exactly.
    pub fn argmax_axis_into(&self, axis: usize, out: &mut [i64]) {
        let t = self.to_contiguous();
        let (outer, len, inner) = axis_split(t.shape(), axis);
        assert_eq!(
            out.len(),
            outer * inner,
            "argmax into: destination size mismatch"
        );
        let src = t.as_slice();
        for o in 0..outer {
            for i in 0..inner {
                let mut best = T::MIN_VALUE;
                let mut idx = 0i64;
                for l in 0..len {
                    let v = src[(o * len + l) * inner + i];
                    if l == 0 || v > best {
                        best = v;
                        idx = l as i64;
                    }
                }
                out[o * inner + i] = idx;
            }
        }
    }

    /// Sum along `axis`.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Tensor<T> {
        self.fold_axis(axis, keepdim, T::ZERO, |acc, v| acc + v)
    }

    /// Maximum along `axis`.
    pub fn max_axis(&self, axis: usize, keepdim: bool) -> Tensor<T> {
        self.fold_axis(
            axis,
            keepdim,
            T::MIN_VALUE,
            |acc, v| if v > acc { v } else { acc },
        )
    }

    /// Index of the maximum along `axis` (first maximum wins ties,
    /// matching NumPy/PyTorch).
    pub fn argmax_axis(&self, axis: usize, keepdim: bool) -> Tensor<i64> {
        let t = self.to_contiguous();
        let (outer, len, inner) = axis_split(t.shape(), axis);
        let src = t.as_slice();
        let mut best = vec![T::MIN_VALUE; outer * inner];
        let mut idx = vec![0i64; outer * inner];
        for o in 0..outer {
            for l in 0..len {
                let base = (o * len + l) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    let v = src[base + i];
                    if l == 0 || v > best[obase + i] {
                        best[obase + i] = v;
                        idx[obase + i] = l as i64;
                    }
                }
            }
        }
        Tensor::from_vec(idx, &reduced_shape(t.shape(), axis, keepdim))
    }

    /// Mean along `axis`.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Tensor<T> {
        let n = self.shape()[axis].max(1);
        let s = self.sum_axis(axis, keepdim);
        let inv = T::ONE / T::from_usize(n);
        s.map(move |v| v * inv)
    }

    /// Sum of every element.
    pub fn sum_all(&self) -> T {
        self.iter().fold(T::ZERO, |acc, v| acc + v)
    }
}

impl<T: Float> Tensor<T> {
    /// `log(Σ exp(x))` along `axis`, stabilized by the row maximum (paper
    /// Table 2 `logsumexp`; used by multinomial links).
    pub fn logsumexp_axis(&self, axis: usize, keepdim: bool) -> Tensor<T> {
        let m = self.max_axis(axis, true);
        let shifted = self.sub(&m).exp_t().sum_axis(axis, true).ln_t().add(&m);
        if keepdim {
            shifted
        } else {
            shifted.squeeze(axis)
        }
    }

    /// Softmax along `axis`.
    pub fn softmax_axis(&self, axis: usize) -> Tensor<T> {
        let m = self.max_axis(axis, true);
        let e = self.sub(&m).exp_t();
        let s = e.sum_axis(axis, true);
        e.div(&s)
    }

    /// [`Tensor::softmax_axis`] writing into a caller-provided buffer of
    /// `self.numel()` elements, with no scratch tensors.
    ///
    /// The per-element float operations (max fold, `exp(x − m)`, ascending
    /// sum, divide) replay the composite implementation exactly, so the
    /// results are bit-identical to [`Tensor::softmax_axis`].
    pub fn softmax_axis_into(&self, axis: usize, out: &mut [T]) {
        let t = self.to_contiguous();
        let (outer, len, inner) = axis_split(t.shape(), axis);
        assert_eq!(
            out.len(),
            outer * len * inner,
            "softmax into: destination size mismatch"
        );
        let src = t.as_slice();
        for o in 0..outer {
            for i in 0..inner {
                let mut m = T::MIN_VALUE;
                for l in 0..len {
                    let v = src[(o * len + l) * inner + i];
                    if v > m {
                        m = v;
                    }
                }
                let mut s = T::ZERO;
                for l in 0..len {
                    let j = (o * len + l) * inner + i;
                    let e = (src[j] - m).exp_();
                    out[j] = e;
                    s = s + e;
                }
                for l in 0..len {
                    let j = (o * len + l) * inner + i;
                    out[j] = out[j] / s;
                }
            }
        }
    }

    /// [`Tensor::logsumexp_axis`] writing into a caller-provided buffer of
    /// `outer * inner` elements, with no scratch tensors; bit-identical to
    /// the composite (same max fold, shift, ascending sum, `ln`, re-add).
    pub fn logsumexp_axis_into(&self, axis: usize, out: &mut [T]) {
        let t = self.to_contiguous();
        let (outer, len, inner) = axis_split(t.shape(), axis);
        assert_eq!(
            out.len(),
            outer * inner,
            "logsumexp into: destination size mismatch"
        );
        let src = t.as_slice();
        for o in 0..outer {
            for i in 0..inner {
                let mut m = T::MIN_VALUE;
                for l in 0..len {
                    let v = src[(o * len + l) * inner + i];
                    if v > m {
                        m = v;
                    }
                }
                let mut s = T::ZERO;
                for l in 0..len {
                    let v = src[(o * len + l) * inner + i];
                    s = s + (v - m).exp_();
                }
                out[o * inner + i] = s.ln_() + m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], s: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(v.to_vec(), s)
    }

    #[test]
    fn sum_rows_and_cols() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.sum_axis(1, false).to_vec(), vec![6.0, 15.0]);
        assert_eq!(a.sum_axis(0, false).to_vec(), vec![5.0, 7.0, 9.0]);
        assert_eq!(a.sum_axis(1, true).shape(), &[2, 1]);
    }

    #[test]
    fn mean_divides_by_axis_len() {
        let a = t(&[2.0, 4.0, 6.0, 8.0], &[2, 2]);
        assert_eq!(a.mean_axis(0, false).to_vec(), vec![4.0, 6.0]);
        assert_eq!(a.mean_axis(1, false).to_vec(), vec![3.0, 7.0]);
    }

    #[test]
    fn max_and_argmax() {
        let a = t(&[1.0, 9.0, 3.0, 7.0, 2.0, 5.0], &[2, 3]);
        assert_eq!(a.max_axis(1, false).to_vec(), vec![9.0, 7.0]);
        assert_eq!(a.argmax_axis(1, false).to_vec(), vec![1, 0]);
        assert_eq!(a.argmax_axis(0, false).to_vec(), vec![1, 0, 1]);
    }

    #[test]
    fn argmax_first_tie_wins() {
        let a = t(&[5.0, 5.0, 1.0], &[1, 3]);
        assert_eq!(a.argmax_axis(1, false).to_vec(), vec![0]);
    }

    #[test]
    fn middle_axis_reduction() {
        let a = Tensor::from_fn(&[2, 3, 2], |i| (i[0] * 6 + i[1] * 2 + i[2]) as f32);
        let s = a.sum_axis(1, false);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![6.0, 9.0, 24.0, 27.0]);
    }

    #[test]
    fn logsumexp_stable_for_large_values() {
        let a = t(&[1000.0, 1000.0], &[1, 2]);
        let l = a.logsumexp_axis(1, false).to_vec();
        assert!((l[0] - (1000.0 + 2.0f32.ln())).abs() < 1e-3);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t(&[1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]);
        let s = a.softmax_axis(1);
        let v = s.to_vec();
        assert!((v[0] + v[1] + v[2] - 1.0).abs() < 1e-6);
        assert!((v[3] - 1.0 / 3.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn sum_all_totals() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum_all(), 10.0);
    }

    #[test]
    fn reduce_on_view() {
        let a = Tensor::from_fn(&[3, 4], |i| (i[0] * 4 + i[1]) as f32);
        let at = a.transpose(0, 1);
        assert_eq!(
            at.sum_axis(0, false).to_vec(),
            a.sum_axis(1, false).to_vec()
        );
    }
}
