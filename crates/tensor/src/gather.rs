//! Index-based tensor access: `gather`, `index_select`, and `concat`.
//!
//! The TreeTraversal and PerfectTreeTraversal strategies (paper Algorithms
//! 2 and 3) are built almost entirely out of `Gather` operations, so their
//! semantics here follow `torch.gather` exactly.

use crate::dtype::Element;
use crate::tensor::Tensor;
use crate::TensorError;

impl<T: Element> Tensor<T> {
    /// Gathers values along `axis` using `index`, with `torch.gather`
    /// semantics: the output has the shape of `index` and
    /// `out[i...][j][k...] = self[i...][index[i...][j][k...]][k...]`
    /// where `j` is the `axis` coordinate.
    ///
    /// # Panics
    ///
    /// Panics if ranks differ, a non-axis dimension of `index` exceeds the
    /// corresponding dimension of `self`, or an index value is out of
    /// bounds.
    pub fn gather(&self, axis: usize, index: &Tensor<i64>) -> Tensor<T> {
        let mut out = vec![T::default(); index.numel()];
        self.gather_impl(axis, index, &mut out);
        Tensor::from_vec(out, index.shape())
    }

    /// [`Tensor::gather`] writing into a caller-provided buffer of
    /// `index.numel()` elements; the buffer is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Tensor::gather`], plus a
    /// wrong-length destination.
    pub fn gather_into(&self, axis: usize, index: &Tensor<i64>, out: &mut [T]) {
        assert_eq!(
            out.len(),
            index.numel(),
            "gather_into: destination size mismatch"
        );
        self.gather_impl(axis, index, out);
    }

    /// Shared `gather` body writing into `out`.
    fn gather_impl(&self, axis: usize, index: &Tensor<i64>, out_buf: &mut [T]) {
        assert_eq!(self.ndim(), index.ndim(), "gather: rank mismatch");
        assert!(axis < self.ndim(), "gather: axis out of range");
        for d in 0..self.ndim() {
            if d != axis {
                assert!(
                    index.shape()[d] <= self.shape()[d],
                    "gather: index dim {d} ({}) exceeds input dim ({})",
                    index.shape()[d],
                    self.shape()[d]
                );
            }
        }
        let axis_len = self.shape()[axis] as i64;
        let out_shape = index.shape().to_vec();
        let ndim = out_shape.len();
        let n = index.numel();
        // Both operands are addressed through their own view strides, so
        // transposed/sliced sources and cursors (the TreeTraversal inner
        // loop feeds transposed cursor views here every level) gather
        // without materializing a contiguous copy.
        let (sv, soff) = self.raw_parts();
        let sstr = self.strides().to_vec();
        let astr = sstr[axis];
        let (iv, ioff) = index.raw_parts();
        let istr = index.strides().to_vec();

        const PAR_MIN: usize = 1 << 15;

        // Row-loop fast path for the 2-D axis-1 shape the TreeTraversal
        // inner loop hits every level (`x.gather(1, cursor)`): one
        // stride-add per row instead of a per-element odometer.
        if ndim == 2 && axis == 1 && out_shape[1] > 0 {
            let cols = out_shape[1];
            let fill_rows = |r0: usize, out: &mut [T]| {
                for (rr, orow) in out.chunks_mut(cols).enumerate() {
                    let base = soff as isize + (r0 + rr) as isize * sstr[0];
                    let ibase = ioff as isize + (r0 + rr) as isize * istr[0];
                    for (j, o) in orow.iter_mut().enumerate() {
                        let ival = iv[(ibase + j as isize * istr[1]) as usize];
                        assert!(
                            ival >= 0 && ival < axis_len,
                            "gather: index {ival} out of bounds for axis length {axis_len}"
                        );
                        *o = sv[(base + ival as isize * astr) as usize];
                    }
                }
            };
            if n >= PAR_MIN {
                let rows = out_shape[0];
                let row_chunk = (rows / (rayon::current_num_threads() * 4).max(1)).max(64);
                use rayon::prelude::*;
                out_buf
                    .par_chunks_mut(row_chunk * cols)
                    .enumerate()
                    .for_each(|(ci, c)| fill_rows(ci * row_chunk, c));
            } else {
                fill_rows(0, out_buf);
            }
            return;
        }

        // Tight kernel over one flat output range: an odometer tracks the
        // source base offset of the non-axis coordinates plus the index
        // offset of all coordinates; the axis coordinate comes from the
        // index tensor.
        let fill = |start: usize, out: &mut [T]| {
            let mut pos = vec![0usize; ndim];
            let mut rem = start;
            let ostr = crate::shape::contiguous_strides(&out_shape);
            let mut base = 0isize;
            let mut iofs = 0isize;
            for d in 0..ndim {
                if ostr[d] > 0 {
                    pos[d] = rem / ostr[d] as usize;
                    rem %= ostr[d] as usize;
                }
                if d != axis {
                    base += pos[d] as isize * sstr[d];
                }
                iofs += pos[d] as isize * istr[d];
            }
            for o in out.iter_mut() {
                let ival = iv[ioff + iofs as usize];
                assert!(
                    ival >= 0 && ival < axis_len,
                    "gather: index {ival} out of bounds for axis length {axis_len}"
                );
                *o = sv[soff + (base + ival as isize * astr) as usize];
                // Advance the odometer.
                for d in (0..ndim).rev() {
                    pos[d] += 1;
                    if d != axis {
                        base += sstr[d];
                    }
                    iofs += istr[d];
                    if pos[d] < out_shape[d] {
                        break;
                    }
                    pos[d] = 0;
                    if d != axis {
                        base -= sstr[d] * out_shape[d] as isize;
                    }
                    iofs -= istr[d] * out_shape[d] as isize;
                }
            }
        };

        if n >= PAR_MIN {
            let chunk = (n / (rayon::current_num_threads() * 4).max(1)).max(4096);
            use rayon::prelude::*;
            out_buf
                .par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(ci, c)| fill(ci * chunk, c));
        } else {
            fill(0, out_buf);
        }
    }

    /// Selects whole slices along `axis` by position (PyTorch
    /// `index_select`): the output replaces the `axis` extent with
    /// `indices.len()`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn index_select(&self, axis: usize, indices: &[usize]) -> Tensor<T> {
        assert!(axis < self.ndim(), "index_select: axis out of range");
        let (outer, _, inner) = {
            let s = self.shape();
            (
                s[..axis].iter().product::<usize>(),
                s[axis],
                s[axis + 1..].iter().product::<usize>(),
            )
        };
        let mut out = vec![T::default(); outer * indices.len() * inner];
        self.index_select_into(axis, indices, &mut out);
        let mut oshape = self.shape().to_vec();
        oshape[axis] = indices.len();
        Tensor::from_vec(out, &oshape)
    }

    /// [`Tensor::index_select`] writing into a caller-provided buffer; the
    /// buffer is fully overwritten.
    pub fn index_select_into(&self, axis: usize, indices: &[usize], out: &mut [T]) {
        assert!(axis < self.ndim(), "index_select: axis out of range");
        let t = self.to_contiguous();
        let shape = t.shape();
        let outer: usize = shape[..axis].iter().product();
        let len = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        assert_eq!(
            out.len(),
            outer * indices.len() * inner,
            "index_select_into: destination size mismatch"
        );
        let src = t.as_slice();
        let mut w = 0usize;
        for o in 0..outer {
            for &ix in indices {
                assert!(
                    ix < len,
                    "index_select: index {ix} out of bounds for axis {axis}"
                );
                let base = (o * len + ix) * inner;
                out[w..w + inner].copy_from_slice(&src[base..base + inner]);
                w += inner;
            }
        }
    }

    /// Concatenates tensors along `axis`; all other dimensions must agree.
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty or shapes disagree off-axis.
    pub fn concat(tensors: &[&Tensor<T>], axis: usize) -> Tensor<T> {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let first = tensors[0].shape();
        assert!(axis < first.len(), "concat: axis out of range");
        for t in tensors {
            assert_eq!(t.ndim(), first.len(), "concat: rank mismatch");
            for (d, &dim) in first.iter().enumerate() {
                if d != axis {
                    assert_eq!(t.shape()[d], dim, "concat: dim {d} mismatch");
                }
            }
        }
        let outer: usize = first[..axis].iter().product();
        let inner: usize = first[axis + 1..].iter().product();
        let total_axis: usize = tensors.iter().map(|t| t.shape()[axis]).sum();
        let mut out = vec![T::default(); outer * total_axis * inner];
        Tensor::concat_into(tensors, axis, &mut out);
        let mut oshape = first.to_vec();
        oshape[axis] = total_axis;
        Tensor::from_vec(out, &oshape)
    }

    /// [`Tensor::concat`] writing into a caller-provided buffer; the
    /// buffer is fully overwritten.
    pub fn concat_into(tensors: &[&Tensor<T>], axis: usize, out: &mut [T]) {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let first = tensors[0].shape().to_vec();
        assert!(axis < first.len(), "concat: axis out of range");
        let outer: usize = first[..axis].iter().product();
        let inner: usize = first[axis + 1..].iter().product();
        let total_axis: usize = tensors.iter().map(|t| t.shape()[axis]).sum();
        assert_eq!(
            out.len(),
            outer * total_axis * inner,
            "concat_into: destination size mismatch"
        );
        let contiguous: Vec<Tensor<T>> = tensors.iter().map(|t| t.to_contiguous()).collect();
        let mut w = 0usize;
        for o in 0..outer {
            for t in &contiguous {
                let alen = t.shape()[axis];
                let src = t.as_slice();
                let base = o * alen * inner;
                out[w..w + alen * inner].copy_from_slice(&src[base..base + alen * inner]);
                w += alen * inner;
            }
        }
    }

    /// Batched row lookup: `self` is `[B, N, W]`, `index` is `[B, n]`;
    /// the result is `[B, n, W]` with
    /// `out[b][i][w] = self[b][index[b][i]][w]`.
    ///
    /// This is the `gather` + index-expand composite that the
    /// TreeTraversal strategies use for the final leaf-payload lookup
    /// (PyTorch spells it `gather(1, idx.unsqueeze(-1).expand(..))`).
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches or out-of-range indices.
    pub fn gather_rows(&self, index: &Tensor<i64>) -> Tensor<T> {
        assert_eq!(self.ndim(), 3, "gather_rows expects [B, N, W] data");
        assert_eq!(index.ndim(), 2, "gather_rows expects [B, n] indices");
        let (b, w) = (self.shape()[0], self.shape()[2]);
        let n = index.shape()[1];
        let mut out = vec![T::default(); b * n * w];
        self.gather_rows_into(index, &mut out);
        Tensor::from_vec(out, &[b, n, w])
    }

    /// [`Tensor::gather_rows`] writing into a caller-provided buffer; the
    /// buffer is fully overwritten.
    pub fn gather_rows_into(&self, index: &Tensor<i64>, out: &mut [T]) {
        assert_eq!(self.ndim(), 3, "gather_rows expects [B, N, W] data");
        assert_eq!(index.ndim(), 2, "gather_rows expects [B, n] indices");
        let (b, nrows, w) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        assert_eq!(index.shape()[0], b, "gather_rows batch mismatch");
        let n = index.shape()[1];
        assert_eq!(
            out.len(),
            b * n * w,
            "gather_rows_into: destination size mismatch"
        );
        if n * w == 0 {
            return;
        }
        // Strided addressing of both operands — no materialization.
        let (dv, doff) = self.raw_parts();
        let dstr = self.strides();
        let (iv, ioff) = index.raw_parts();
        let istr = index.strides();
        // One batch's lookups; `w == 1` (the leaf-payload shape the
        // tree strategies hit) takes a scalar loop with no per-row
        // slice bookkeeping.
        let fill_batch = |bi: usize, obatch: &mut [T]| {
            let dbase = doff as isize + bi as isize * dstr[0];
            let ibase = ioff as isize + bi as isize * istr[0];
            let check = |r: i64| {
                assert!(
                    r >= 0 && (r as usize) < nrows,
                    "gather_rows: index {r} out of bounds for {nrows} rows"
                );
            };
            if w == 1 {
                for (i, o) in obatch.iter_mut().enumerate() {
                    let r = iv[(ibase + i as isize * istr[1]) as usize];
                    check(r);
                    *o = dv[(dbase + r as isize * dstr[1]) as usize];
                }
                return;
            }
            for (i, orow) in obatch.chunks_mut(w).enumerate() {
                let r = iv[(ibase + i as isize * istr[1]) as usize];
                check(r);
                let base = (dbase + r as isize * dstr[1]) as usize;
                if dstr[2] == 1 {
                    orow.copy_from_slice(&dv[base..base + w]);
                } else {
                    for (wi, o) in orow.iter_mut().enumerate() {
                        *o = dv[base + wi * dstr[2] as usize];
                    }
                }
            }
        };
        const PAR_MIN: usize = 1 << 15;
        if b * n * w >= PAR_MIN && b > 1 {
            use rayon::prelude::*;
            out.par_chunks_mut(n * w)
                .enumerate()
                .for_each(|(bi, obatch)| fill_batch(bi, obatch));
        } else {
            for (bi, obatch) in out.chunks_mut(n * w).enumerate() {
                fill_batch(bi, obatch);
            }
        }
    }

    /// Stacks tensors of identical shape along a new leading axis.
    pub fn stack(tensors: &[&Tensor<T>]) -> Tensor<T> {
        assert!(!tensors.is_empty(), "stack of zero tensors");
        let views: Vec<Tensor<T>> = tensors.iter().map(|t| t.unsqueeze(0)).collect();
        let refs: Vec<&Tensor<T>> = views.iter().collect();
        Tensor::concat(&refs, 0)
    }

    /// Fallible [`Tensor::gather`]: validates ranks, the axis, off-axis
    /// dimensions, and every index value up front, reporting violations
    /// as a typed [`TensorError`] instead of panicking. Use this on
    /// input-driven paths (untrusted indices).
    pub fn try_gather(&self, axis: usize, index: &Tensor<i64>) -> Result<Tensor<T>, TensorError> {
        if self.ndim() != index.ndim() {
            return Err(TensorError::RankMismatch {
                expected: self.ndim(),
                got: index.ndim(),
            });
        }
        if axis >= self.ndim() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                ndim: self.ndim(),
            });
        }
        for d in 0..self.ndim() {
            if d != axis && index.shape()[d] > self.shape()[d] {
                return Err(TensorError::ShapeMismatch(format!(
                    "gather: index dim {d} ({}) exceeds input dim ({})",
                    index.shape()[d],
                    self.shape()[d]
                )));
            }
        }
        let axis_len = self.shape()[axis] as i64;
        let idx = index.to_contiguous();
        for &ival in idx.as_slice() {
            if ival < 0 || ival >= axis_len {
                return Err(TensorError::IndexOutOfBounds {
                    index: ival,
                    len: axis_len as usize,
                });
            }
        }
        Ok(self.gather(axis, index))
    }

    /// Fallible [`Tensor::gather_rows`]: shape and index validation with
    /// typed errors, for untrusted indices.
    pub fn try_gather_rows(&self, index: &Tensor<i64>) -> Result<Tensor<T>, TensorError> {
        if self.ndim() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                got: self.ndim(),
            });
        }
        if index.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: index.ndim(),
            });
        }
        if index.shape()[0] != self.shape()[0] {
            return Err(TensorError::ShapeMismatch(format!(
                "gather_rows: batch {} vs {}",
                index.shape()[0],
                self.shape()[0]
            )));
        }
        let nrows = self.shape()[1] as i64;
        let idx = index.to_contiguous();
        for &r in idx.as_slice() {
            if r < 0 || r >= nrows {
                return Err(TensorError::IndexOutOfBounds {
                    index: r,
                    len: nrows as usize,
                });
            }
        }
        Ok(self.gather_rows(index))
    }

    /// Fallible [`Tensor::index_select`]: typed errors for a bad axis or
    /// out-of-bounds positions.
    pub fn try_index_select(
        &self,
        axis: usize,
        indices: &[usize],
    ) -> Result<Tensor<T>, TensorError> {
        if axis >= self.ndim() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                ndim: self.ndim(),
            });
        }
        let len = self.shape()[axis];
        for &ix in indices {
            if ix >= len {
                return Err(TensorError::IndexOutOfBounds {
                    index: ix as i64,
                    len,
                });
            }
        }
        Ok(self.index_select(axis, indices))
    }

    /// Fallible [`Tensor::concat`]: typed errors for an empty list, a bad
    /// axis, or off-axis shape disagreements.
    pub fn try_concat(tensors: &[&Tensor<T>], axis: usize) -> Result<Tensor<T>, TensorError> {
        let first = match tensors.first() {
            Some(t) => t.shape(),
            None => return Err(TensorError::ShapeMismatch("concat of zero tensors".into())),
        };
        if axis >= first.len() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                ndim: first.len(),
            });
        }
        for t in tensors {
            if t.ndim() != first.len() {
                return Err(TensorError::RankMismatch {
                    expected: first.len(),
                    got: t.ndim(),
                });
            }
            for (d, &dim) in first.iter().enumerate() {
                if d != axis && t.shape()[d] != dim {
                    return Err(TensorError::ShapeMismatch(format!(
                        "concat: dim {d} disagrees ({} vs {dim})",
                        t.shape()[d]
                    )));
                }
            }
        }
        Ok(Tensor::concat(tensors, axis))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tf(v: &[f32], s: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(v.to_vec(), s)
    }

    fn ti(v: &[i64], s: &[usize]) -> Tensor<i64> {
        Tensor::from_vec(v.to_vec(), s)
    }

    #[test]
    fn gather_axis1_matches_torch() {
        // torch.gather(t, 1, idx): out[i][j] = t[i][idx[i][j]]
        let t = tf(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let idx = ti(&[2, 0, 1, 1], &[2, 2]);
        let g = t.gather(1, &idx);
        assert_eq!(g.shape(), &[2, 2]);
        assert_eq!(g.to_vec(), vec![3.0, 1.0, 5.0, 5.0]);
    }

    #[test]
    fn gather_axis0() {
        let t = tf(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let idx = ti(&[1, 0, 0, 1], &[2, 2]);
        let g = t.gather(0, &idx);
        assert_eq!(g.to_vec(), vec![3.0, 2.0, 1.0, 4.0]);
    }

    #[test]
    fn gather_index_smaller_than_input() {
        let t = tf(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let idx = ti(&[1, 0], &[1, 2]);
        let g = t.gather(0, &idx);
        assert_eq!(g.to_vec(), vec![3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_oob_panics() {
        let t = tf(&[1.0, 2.0], &[1, 2]);
        let idx = ti(&[5], &[1, 1]);
        let _ = t.gather(1, &idx);
    }

    #[test]
    fn index_select_rows_and_cols() {
        let t = tf(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let r = t.index_select(0, &[2, 0]);
        assert_eq!(r.to_vec(), vec![5.0, 6.0, 1.0, 2.0]);
        let c = t.index_select(1, &[1]);
        assert_eq!(c.shape(), &[3, 1]);
        assert_eq!(c.to_vec(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn index_select_repeats_allowed() {
        let t = tf(&[1.0, 2.0], &[2, 1]);
        let r = t.index_select(0, &[0, 0, 1]);
        assert_eq!(r.to_vec(), vec![1.0, 1.0, 2.0]);
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = tf(&[1.0, 2.0], &[1, 2]);
        let b = tf(&[3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);

        let d = tf(&[1.0, 2.0], &[2, 1]);
        let e = tf(&[3.0, 4.0], &[2, 1]);
        let f = Tensor::concat(&[&d, &e], 1);
        assert_eq!(f.shape(), &[2, 2]);
        assert_eq!(f.to_vec(), vec![1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn stack_adds_leading_axis() {
        let a = tf(&[1.0, 2.0], &[2]);
        let b = tf(&[3.0, 4.0], &[2]);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn gather_rows_batched_lookup() {
        // Two batches of 3 rows × 2 payload values.
        let data = Tensor::from_fn(&[2, 3, 2], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f32);
        let idx = ti(&[2, 0, 1, 1], &[2, 2]);
        let g = data.gather_rows(&idx);
        assert_eq!(g.shape(), &[2, 2, 2]);
        assert_eq!(
            g.to_vec(),
            vec![20.0, 21.0, 0.0, 1.0, 110.0, 111.0, 110.0, 111.0]
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rows_oob_panics() {
        let data = Tensor::<f32>::zeros(&[1, 2, 1]);
        let idx = ti(&[5], &[1, 1]);
        let _ = data.gather_rows(&idx);
    }

    #[test]
    fn gather_3d_middle_axis() {
        let t = Tensor::from_fn(&[2, 3, 2], |i| (i[0] * 6 + i[1] * 2 + i[2]) as f32);
        let idx = Tensor::from_fn(&[2, 1, 2], |i| ((i[0] + i[2]) % 3) as i64);
        let g = t.gather(1, &idx);
        assert_eq!(g.shape(), &[2, 1, 2]);
        // out[b][0][k] = t[b][idx[b][0][k]][k]
        for b in 0..2 {
            for k in 0..2 {
                let j = idx.get(&[b, 0, k]) as usize;
                assert_eq!(g.get(&[b, 0, k]), t.get(&[b, j, k]));
            }
        }
    }
}
