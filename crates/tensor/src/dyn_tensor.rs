//! Dynamically-typed tensor wrapper used by the graph runtime.
//!
//! Compiled graphs mix float features, integer indices, packed string
//! bytes, and boolean masks; [`DynTensor`] lets graph nodes pass values
//! without static dtype knowledge while keeping the typed [`Tensor`] API
//! for kernels.

use crate::dtype::DType;
use crate::tensor::Tensor;

/// A tensor of any supported dtype.
#[derive(Clone, Debug, PartialEq)]
pub enum DynTensor {
    /// 32-bit float tensor.
    F32(Tensor<f32>),
    /// 64-bit integer tensor.
    I64(Tensor<i64>),
    /// Byte tensor (packed fixed-length strings).
    U8(Tensor<u8>),
    /// Boolean mask tensor.
    Bool(Tensor<bool>),
}

hb_json::json_enum!(DynTensor {
    F32(Tensor<f32>),
    I64(Tensor<i64>),
    U8(Tensor<u8>),
    Bool(Tensor<bool>),
});

impl DynTensor {
    /// The runtime dtype tag.
    pub fn dtype(&self) -> DType {
        match self {
            DynTensor::F32(_) => DType::F32,
            DynTensor::I64(_) => DType::I64,
            DynTensor::U8(_) => DType::U8,
            DynTensor::Bool(_) => DType::Bool,
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        match self {
            DynTensor::F32(t) => t.shape(),
            DynTensor::I64(t) => t.shape(),
            DynTensor::U8(t) => t.shape(),
            DynTensor::Bool(t) => t.shape(),
        }
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.shape().iter().product()
    }

    /// Bytes of storage the logical contents occupy.
    pub fn nbytes(&self) -> usize {
        self.numel() * self.dtype().size_of()
    }

    /// Borrows the f32 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the dtype is not `F32`.
    pub fn as_f32(&self) -> &Tensor<f32> {
        match self {
            DynTensor::F32(t) => t,
            other => panic!("expected F32 tensor, got {:?}", other.dtype()),
        }
    }

    /// Borrows the i64 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the dtype is not `I64`.
    pub fn as_i64(&self) -> &Tensor<i64> {
        match self {
            DynTensor::I64(t) => t,
            other => panic!("expected I64 tensor, got {:?}", other.dtype()),
        }
    }

    /// Borrows the bool tensor.
    ///
    /// # Panics
    ///
    /// Panics if the dtype is not `Bool`.
    pub fn as_bool(&self) -> &Tensor<bool> {
        match self {
            DynTensor::Bool(t) => t,
            other => panic!("expected Bool tensor, got {:?}", other.dtype()),
        }
    }

    /// Borrows the u8 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the dtype is not `U8`.
    pub fn as_u8(&self) -> &Tensor<u8> {
        match self {
            DynTensor::U8(t) => t,
            other => panic!("expected U8 tensor, got {:?}", other.dtype()),
        }
    }

    /// Converts to the requested dtype (paper Table 2 `cast`).
    ///
    /// Bool casts to 0/1; floats truncate toward zero when cast to
    /// integers; integer→bool is `!= 0`.
    pub fn cast(&self, to: DType) -> DynTensor {
        if self.dtype() == to {
            return self.clone();
        }
        match (self, to) {
            (DynTensor::F32(t), DType::I64) => DynTensor::I64(t.map(|v| v as i64)),
            (DynTensor::F32(t), DType::Bool) => DynTensor::Bool(t.map(|v| v != 0.0)),
            (DynTensor::F32(t), DType::U8) => DynTensor::U8(t.map(|v| v as u8)),
            (DynTensor::I64(t), DType::F32) => DynTensor::F32(t.map(|v| v as f32)),
            (DynTensor::I64(t), DType::Bool) => DynTensor::Bool(t.map(|v| v != 0)),
            (DynTensor::I64(t), DType::U8) => DynTensor::U8(t.map(|v| v as u8)),
            (DynTensor::U8(t), DType::F32) => DynTensor::F32(t.map(|v| v as f32)),
            (DynTensor::U8(t), DType::I64) => DynTensor::I64(t.map(|v| v as i64)),
            (DynTensor::U8(t), DType::Bool) => DynTensor::Bool(t.map(|v| v != 0)),
            (DynTensor::Bool(t), DType::F32) => {
                DynTensor::F32(t.map(|v| if v { 1.0 } else { 0.0 }))
            }
            (DynTensor::Bool(t), DType::I64) => DynTensor::I64(t.map(|v| v as i64)),
            (DynTensor::Bool(t), DType::U8) => DynTensor::U8(t.map(|v| v as u8)),
            _ => unreachable!("same-dtype cast handled above"),
        }
    }

    /// Reshapes preserving element count.
    pub fn reshape(&self, shape: &[usize]) -> DynTensor {
        match self {
            DynTensor::F32(t) => DynTensor::F32(t.reshape(shape)),
            DynTensor::I64(t) => DynTensor::I64(t.reshape(shape)),
            DynTensor::U8(t) => DynTensor::U8(t.reshape(shape)),
            DynTensor::Bool(t) => DynTensor::Bool(t.reshape(shape)),
        }
    }
}

impl From<Tensor<f32>> for DynTensor {
    fn from(t: Tensor<f32>) -> Self {
        DynTensor::F32(t)
    }
}
impl From<Tensor<i64>> for DynTensor {
    fn from(t: Tensor<i64>) -> Self {
        DynTensor::I64(t)
    }
}
impl From<Tensor<u8>> for DynTensor {
    fn from(t: Tensor<u8>) -> Self {
        DynTensor::U8(t)
    }
}
impl From<Tensor<bool>> for DynTensor {
    fn from(t: Tensor<bool>) -> Self {
        DynTensor::Bool(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_and_shape_dispatch() {
        let d: DynTensor = Tensor::from_vec(vec![1.0f32, 2.0], &[2]).into();
        assert_eq!(d.dtype(), DType::F32);
        assert_eq!(d.shape(), &[2]);
        assert_eq!(d.nbytes(), 8);
    }

    #[test]
    fn cast_f32_i64_roundtrip() {
        let d: DynTensor = Tensor::from_vec(vec![1.9f32, -2.9, 0.0], &[3]).into();
        let i = d.cast(DType::I64);
        assert_eq!(i.as_i64().to_vec(), vec![1, -2, 0]);
        let f = i.cast(DType::F32);
        assert_eq!(f.as_f32().to_vec(), vec![1.0, -2.0, 0.0]);
    }

    #[test]
    fn cast_bool_to_f32_is_indicator() {
        let d: DynTensor = Tensor::from_vec(vec![true, false], &[2]).into();
        assert_eq!(d.cast(DType::F32).as_f32().to_vec(), vec![1.0, 0.0]);
        assert_eq!(d.cast(DType::I64).as_i64().to_vec(), vec![1, 0]);
    }

    #[test]
    fn cast_same_dtype_is_identity() {
        let d: DynTensor = Tensor::from_vec(vec![1i64, 2], &[2]).into();
        assert_eq!(d.cast(DType::I64), d);
    }

    #[test]
    #[should_panic(expected = "expected F32")]
    fn wrong_accessor_panics() {
        let d: DynTensor = Tensor::from_vec(vec![1i64], &[1]).into();
        let _ = d.as_f32();
    }

    #[test]
    fn reshape_dispatches() {
        let d: DynTensor = Tensor::from_vec(vec![1i64, 2, 3, 4], &[4]).into();
        assert_eq!(d.reshape(&[2, 2]).shape(), &[2, 2]);
    }
}
