//! Tensor allocation tracking.
//!
//! The paper's Table 9 reports peak memory consumption per framework. The
//! original artifact measured it with `memory_profiler`; here every tensor
//! storage registers its byte size on creation and deregisters on drop, so
//! the bench harness can read current and peak tensor memory directly.

use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);
static ALLOC_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Records an allocation of `bytes` and updates the peak watermark.
pub(crate) fn record_alloc(bytes: usize) {
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    let cur = CURRENT_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    // Lock-free peak update; losing a race only under-reports by the width
    // of the race window, which is acceptable for a watermark.
    let mut peak = PEAK_BYTES.load(Ordering::Relaxed);
    while cur > peak {
        match PEAK_BYTES.compare_exchange_weak(peak, cur, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

/// Records the release of `bytes` of tensor storage.
pub(crate) fn record_dealloc(bytes: usize) {
    CURRENT_BYTES.fetch_sub(bytes, Ordering::Relaxed);
}

/// Returns the number of bytes currently held by live tensor storages.
pub fn current_bytes() -> usize {
    CURRENT_BYTES.load(Ordering::Relaxed)
}

/// Returns the high-water mark of tensor bytes since the last
/// [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Resets the peak watermark to the current live byte count.
pub fn reset_peak() {
    PEAK_BYTES.store(CURRENT_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Cumulative number of tensor storage allocations since process start.
///
/// This counter never resets; callers snapshot it before and after a
/// region to count allocations inside (the memory planner's steady-state
/// zero-allocation assertion reads it this way).
pub fn alloc_count() -> usize {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// Runs `f` and returns `(result, peak_bytes_during_f)`.
///
/// The measurement is process-global: concurrent tensor work in other
/// threads is attributed to `f`. The bench harness runs measured sections
/// one at a time.
pub fn measure_peak<R>(f: impl FnOnce() -> R) -> (R, usize) {
    reset_peak();
    let before = current_bytes();
    let out = f();
    (out, peak_bytes().saturating_sub(before))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn alloc_tracking_counts_storage() {
        let before = current_bytes();
        let t = Tensor::<f32>::zeros(&[1024]);
        assert!(current_bytes() >= before + 4096);
        drop(t);
        assert_eq!(current_bytes(), before);
    }

    #[test]
    fn measure_peak_reports_transient_usage() {
        let ((), peak) = measure_peak(|| {
            let a = Tensor::<f32>::zeros(&[1 << 12]);
            let b = Tensor::<f32>::zeros(&[1 << 12]);
            drop((a, b));
        });
        assert!(peak >= 2 * 4 * (1 << 12), "peak {peak} too small");
    }

    #[test]
    fn views_do_not_allocate() {
        let t = Tensor::<f32>::zeros(&[64, 64]);
        let before = current_bytes();
        let v = t.reshape(&[4096]);
        let w = v.slice(0, 0, 128);
        assert_eq!(current_bytes(), before);
        drop((v, w));
    }
}
