//! Compressed sparse row (CSR) matrices — the sparse-tensor prototype.
//!
//! The paper lists sparse data as Hummingbird's main unsupported case
//! (§3.3) and attributes most of the Figure 12 slowdowns to pipelines
//! with "largely sparse operations", noting a prototype TACO integration
//! as the remedy (§6.3). This module is that prototype's analog: a CSR
//! matrix with a dense-output SpMM kernel, enough to route
//! one-hot-encoded features through linear models without materializing
//! the dense indicator matrix.

use rayon::prelude::*;

use crate::tensor::Tensor;

/// A CSR (row-compressed) sparse f32 matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Row pointer: nonzeros of row `r` live at `indptr[r]..indptr[r+1]`.
    indptr: Vec<usize>,
    /// Column index per nonzero.
    indices: Vec<u32>,
    /// Value per nonzero.
    data: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the parts are inconsistent (pointer monotonicity,
    /// lengths, column bounds).
    pub fn new(
        n_rows: usize,
        n_cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<f32>,
    ) -> CsrMatrix {
        assert_eq!(
            indptr.len(),
            n_rows + 1,
            "indptr must have n_rows + 1 entries"
        );
        assert_eq!(indices.len(), data.len(), "indices/data length mismatch");
        assert_eq!(
            *indptr.last().unwrap_or(&0),
            indices.len(),
            "indptr end != nnz"
        );
        assert!(
            indptr.windows(2).all(|w| w[0] <= w[1]),
            "indptr must be non-decreasing"
        );
        assert!(
            indices.iter().all(|&c| (c as usize) < n_cols),
            "column index out of bounds"
        );
        CsrMatrix {
            n_rows,
            n_cols,
            indptr,
            indices,
            data,
        }
    }

    /// Converts a dense matrix, keeping entries with `|v| > tol`.
    pub fn from_dense(t: &Tensor<f32>, tol: f32) -> CsrMatrix {
        assert_eq!(t.ndim(), 2, "CSR conversion expects a matrix");
        let (n, d) = (t.shape()[0], t.shape()[1]);
        let c = t.to_contiguous();
        let v = c.as_slice();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for r in 0..n {
            for f in 0..d {
                let x = v[r * d + f];
                if x.abs() > tol {
                    indices.push(f as u32);
                    data.push(x);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            n_rows: n,
            n_cols: d,
            indptr,
            indices,
            data,
        }
    }

    /// Densifies back to a tensor.
    pub fn to_dense(&self) -> Tensor<f32> {
        let mut out = vec![0.0f32; self.n_rows * self.n_cols];
        for r in 0..self.n_rows {
            for k in self.indptr[r]..self.indptr[r + 1] {
                out[r * self.n_cols + self.indices[k] as usize] = self.data[k];
            }
        }
        Tensor::from_vec(out, &[self.n_rows, self.n_cols])
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Matrix dimensions `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.n_rows, self.n_cols)
    }

    /// Fraction of entries stored.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.n_rows * self.n_cols).max(1) as f64
    }

    /// Sparse × dense product: `self [n, k] · rhs [k, m] → [n, m]`,
    /// row-parallel. This is the kernel that makes wide one-hot features
    /// cheap: cost is `O(nnz · m)` instead of `O(n · k · m)`.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_dense(&self, rhs: &Tensor<f32>) -> Tensor<f32> {
        assert_eq!(rhs.ndim(), 2, "spmm expects a dense matrix rhs");
        assert_eq!(rhs.shape()[0], self.n_cols, "spmm inner dims disagree");
        let m = rhs.shape()[1];
        let rc = rhs.to_contiguous();
        let rv = rc.as_slice();
        let mut out = vec![0.0f32; self.n_rows * m];
        out.par_chunks_mut(m).enumerate().for_each(|(r, orow)| {
            for k in self.indptr[r]..self.indptr[r + 1] {
                let col = self.indices[k] as usize;
                let v = self.data[k];
                let brow = &rv[col * m..(col + 1) * m];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += v * b;
                }
            }
        });
        Tensor::from_vec(out, &[self.n_rows, m])
    }

    /// Row sums (useful for L1 normalization of indicator rows).
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.n_rows)
            .map(|r| self.data[self.indptr[r]..self.indptr[r + 1]].iter().sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> Tensor<f32> {
        Tensor::from_vec(
            vec![
                1.0, 0.0, 0.0, 2.0, //
                0.0, 0.0, 0.0, 0.0, //
                0.0, 3.0, 4.0, 0.0,
            ],
            &[3, 4],
        )
    }

    #[test]
    fn dense_roundtrip() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.shape(), (3, 4));
        assert!((s.density() - 4.0 / 12.0).abs() < 1e-9);
        assert_eq!(s.to_dense().to_vec(), d.to_vec());
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d, 0.0);
        let rhs = Tensor::from_fn(&[4, 2], |i| (i[0] * 2 + i[1]) as f32 * 0.5 - 1.0);
        let got = s.matmul_dense(&rhs);
        let want = d.matmul(&rhs);
        assert_eq!(got.to_vec(), want.to_vec());
    }

    #[test]
    fn empty_rows_produce_zero_output() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d, 0.0);
        let rhs = Tensor::full(&[4, 3], 1.0f32);
        let got = s.matmul_dense(&rhs);
        assert_eq!(got.get(&[1, 0]), 0.0);
        assert_eq!(got.get(&[1, 2]), 0.0);
    }

    #[test]
    fn tolerance_filters_small_values() {
        let d = Tensor::from_vec(vec![1e-9, 1.0], &[1, 2]);
        let s = CsrMatrix::from_dense(&d, 1e-6);
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    fn row_sums_per_row() {
        let s = CsrMatrix::from_dense(&sample_dense(), 0.0);
        assert_eq!(s.row_sums(), vec![3.0, 0.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims disagree")]
    fn spmm_dim_mismatch_panics() {
        let s = CsrMatrix::from_dense(&sample_dense(), 0.0);
        let _ = s.matmul_dense(&Tensor::<f32>::zeros(&[3, 2]));
    }

    #[test]
    #[should_panic(expected = "column index out of bounds")]
    fn invalid_parts_rejected() {
        let _ = CsrMatrix::new(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }
}
