//! Element types supported by the tensor library.
//!
//! The compiled graphs only ever need four dtypes: `f32` for feature values
//! and model parameters, `i64` for indices and integer-coded categories,
//! `u8` for byte-packed fixed-length strings (paper §4.2), and `bool` for
//! comparison masks.

use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Runtime tag identifying the element type of a [`crate::DynTensor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE float.
    F32,
    /// 64-bit signed integer.
    I64,
    /// 8-bit unsigned integer (packed string bytes).
    U8,
    /// Boolean mask.
    Bool,
}

hb_json::json_enum!(DType { F32, I64, U8, Bool });

impl DType {
    /// Size of one element in bytes.
    pub fn size_of(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::I64 => 8,
            DType::U8 => 1,
            DType::Bool => 1,
        }
    }
}

/// Marker trait for types storable in a [`crate::Tensor`].
pub trait Element: Copy + Send + Sync + Debug + Default + PartialEq + 'static {
    /// The runtime dtype tag for this element type.
    const DTYPE: DType;
}

impl Element for f32 {
    const DTYPE: DType = DType::F32;
}
impl Element for i64 {
    const DTYPE: DType = DType::I64;
}
impl Element for u8 {
    const DTYPE: DType = DType::U8;
}
impl Element for bool {
    const DTYPE: DType = DType::Bool;
}

/// Numeric elements supporting arithmetic and ordering.
pub trait Num:
    Element
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Smallest representable value (used as the identity for `max`).
    const MIN_VALUE: Self;
    /// Conversion from usize, saturating.
    fn from_usize(v: usize) -> Self;
    /// Conversion to f64 for mean/variance accumulation.
    fn to_f64(self) -> f64;
}

impl Num for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const MIN_VALUE: Self = f32::NEG_INFINITY;
    fn from_usize(v: usize) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Num for i64 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const MIN_VALUE: Self = i64::MIN;
    fn from_usize(v: usize) -> Self {
        v as i64
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Num for u8 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const MIN_VALUE: Self = 0;
    fn from_usize(v: usize) -> Self {
        v.min(u8::MAX as usize) as u8
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

/// Floating-point elements supporting transcendental functions.
pub trait Float: Num + Neg<Output = Self> {
    /// Natural exponential.
    fn exp_(self) -> Self;
    /// Natural logarithm.
    fn ln_(self) -> Self;
    /// Square root.
    fn sqrt_(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh_(self) -> Self;
    /// Absolute value.
    fn abs_(self) -> Self;
    /// Power with arbitrary exponent.
    fn powf_(self, e: Self) -> Self;
    /// True if NaN.
    fn is_nan_(self) -> bool;
    /// Quiet NaN constant.
    const NAN: Self;
}

impl Float for f32 {
    fn exp_(self) -> Self {
        self.exp()
    }
    fn ln_(self) -> Self {
        self.ln()
    }
    fn sqrt_(self) -> Self {
        self.sqrt()
    }
    fn tanh_(self) -> Self {
        self.tanh()
    }
    fn abs_(self) -> Self {
        self.abs()
    }
    fn powf_(self, e: Self) -> Self {
        self.powf(e)
    }
    fn is_nan_(self) -> bool {
        self.is_nan()
    }
    const NAN: Self = f32::NAN;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_of(), 4);
        assert_eq!(DType::I64.size_of(), 8);
        assert_eq!(DType::U8.size_of(), 1);
        assert_eq!(DType::Bool.size_of(), 1);
    }

    #[test]
    fn element_tags_match() {
        assert_eq!(<f32 as Element>::DTYPE, DType::F32);
        assert_eq!(<i64 as Element>::DTYPE, DType::I64);
        assert_eq!(<bool as Element>::DTYPE, DType::Bool);
    }

    #[test]
    fn num_identities() {
        assert_eq!(f32::ZERO + f32::ONE, 1.0);
        assert_eq!(i64::from_usize(7), 7);
        assert!(f32::MIN_VALUE < -1e30);
    }
}
