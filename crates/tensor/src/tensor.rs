//! The [`Tensor`] type: reference-counted, strided, row-major n-d arrays.

use std::sync::Arc;

use crate::alloc::{record_alloc, record_dealloc};
use crate::dtype::Element;
use crate::shape::{
    broadcast_strides,
    contiguous_strides,
    numel,
    StridedIter, //
};
use crate::TensorError;

/// Owning backing buffer for tensor data; registers its size with the
/// allocation tracker for the lifetime of the buffer.
pub(crate) struct Storage<T> {
    data: Vec<T>,
    bytes: usize,
}

impl<T> Storage<T> {
    fn new(data: Vec<T>) -> Self {
        let bytes = data.capacity() * std::mem::size_of::<T>();
        record_alloc(bytes);
        Storage { data, bytes }
    }
}

impl<T> Drop for Storage<T> {
    fn drop(&mut self) {
        record_dealloc(self.bytes);
    }
}

/// A dense n-dimensional array of `T` with row-major logical order.
///
/// Cloning is cheap (the backing buffer is shared). Views produced by
/// [`Tensor::reshape`], [`Tensor::slice`], [`Tensor::expand`], and
/// [`Tensor::transpose`] share storage with the source tensor.
#[derive(Clone)]
pub struct Tensor<T: Element> {
    storage: Arc<Storage<T>>,
    offset: usize,
    shape: Vec<usize>,
    strides: Vec<isize>,
}

impl<T: Element> Tensor<T> {
    /// Creates a tensor owning `data` with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<T>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            storage: Arc::new(Storage::new(data)),
            offset: 0,
            shape: shape.to_vec(),
            strides: contiguous_strides(shape),
        }
    }

    /// Creates a rank-0 tensor holding one value.
    pub fn scalar(v: T) -> Self {
        Tensor::from_vec(vec![v], &[])
    }

    /// Creates a tensor filled with `v`.
    pub fn full(shape: &[usize], v: T) -> Self {
        Tensor::from_vec(vec![v; numel(shape)], shape)
    }

    /// Creates a zero-filled tensor (`T::default()`).
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::full(shape, T::default())
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The element strides of the tensor.
    pub fn strides(&self) -> &[isize] {
        &self.strides
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        numel(&self.shape)
    }

    /// True if the logical order coincides with the memory order and the
    /// view covers a dense region.
    pub fn is_contiguous(&self) -> bool {
        self.strides == contiguous_strides(&self.shape)
    }

    /// The full backing storage plus this view's base offset, for strided
    /// kernels that address elements as `storage[offset + Σ idxᵈ·strideᵈ]`
    /// without materializing a contiguous copy. Every view in this crate
    /// has non-negative strides (transpose permutes, expand zeroes, slice
    /// shifts the offset), so all relative offsets are non-negative.
    pub(crate) fn raw_parts(&self) -> (&[T], usize) {
        (&self.storage.data, self.offset)
    }

    /// Borrows the underlying elements of a contiguous tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not contiguous; call
    /// [`Tensor::to_contiguous`] first.
    pub fn as_slice(&self) -> &[T] {
        assert!(
            self.is_contiguous(),
            "as_slice requires a contiguous tensor"
        );
        &self.storage.data[self.offset..self.offset + self.numel()]
    }

    /// Mutably borrows the underlying elements when this tensor is the
    /// *sole* owner of a contiguous, fully-covering storage.
    ///
    /// Returns `None` if the storage is shared (any live clone or view),
    /// the view is offset or non-contiguous, or the view does not span the
    /// whole buffer. The memory planner's arena executor relies on this to
    /// reuse slot buffers across runs without unsafe code: a `Some` result
    /// proves no alias can observe the overwrite.
    pub fn as_mut_slice(&mut self) -> Option<&mut [T]> {
        if self.offset != 0 || !self.is_contiguous() || self.numel() != self.storage.data.len() {
            return None;
        }
        Arc::get_mut(&mut self.storage).map(|s| s.data.as_mut_slice())
    }

    /// Copies the logical contents into a fresh `Vec` in row-major order.
    pub fn to_vec(&self) -> Vec<T> {
        if self.is_contiguous() {
            self.as_slice().to_vec()
        } else {
            let data = &self.storage.data;
            StridedIter::new(&self.shape, &self.strides, self.offset as isize)
                .map(|off| data[off as usize])
                .collect()
        }
    }

    /// Returns a contiguous tensor with the same contents (zero-copy when
    /// already contiguous, even for offset or partial views — kernels read
    /// through [`Tensor::as_slice`], which handles both; this keeps views
    /// of oversized arena slots allocation-free in the planned executor).
    pub fn to_contiguous(&self) -> Tensor<T> {
        if self.is_contiguous() {
            self.clone()
        } else {
            Tensor::from_vec(self.to_vec(), &self.shape)
        }
    }

    /// Element access by full multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn get(&self, idx: &[usize]) -> T {
        assert_eq!(idx.len(), self.ndim(), "index rank mismatch");
        let mut off = self.offset as isize;
        for (d, &i) in idx.iter().enumerate() {
            assert!(i < self.shape[d], "index {i} out of bounds for dim {d}");
            off += i as isize * self.strides[d];
        }
        self.storage.data[off as usize]
    }

    /// Iterates elements in logical row-major order without materializing.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        let data = &self.storage.data;
        StridedIter::new(&self.shape, &self.strides, self.offset as isize)
            .map(move |off| data[off as usize])
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// Zero-copy when contiguous; otherwise the data is compacted first.
    /// A single `-1`-like wildcard is not supported; shapes are explicit.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor<T> {
        assert_eq!(
            self.numel(),
            numel(shape),
            "cannot reshape {:?} into {:?}",
            self.shape,
            shape
        );
        let base = if self.is_contiguous() {
            self.clone()
        } else {
            self.to_contiguous()
        };
        Tensor {
            storage: base.storage,
            offset: base.offset,
            shape: shape.to_vec(),
            strides: contiguous_strides(shape),
        }
    }

    /// Fallible reshape used by the graph executor.
    pub fn try_reshape(&self, shape: &[usize]) -> Result<Tensor<T>, TensorError> {
        if self.numel() != numel(shape) {
            return Err(TensorError::NumelMismatch {
                from: self.numel(),
                to: numel(shape),
            });
        }
        Ok(self.reshape(shape))
    }

    /// Inserts a size-1 dimension at `axis`.
    pub fn unsqueeze(&self, axis: usize) -> Tensor<T> {
        assert!(axis <= self.ndim(), "unsqueeze axis out of range");
        let mut shape = self.shape.clone();
        let mut strides = self.strides.clone();
        shape.insert(axis, 1);
        // Stride of a size-1 dim never affects addressing; 0 is safe.
        strides.insert(axis, 0);
        Tensor {
            storage: self.storage.clone(),
            offset: self.offset,
            shape,
            strides,
        }
    }

    /// Removes a size-1 dimension at `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not have size 1.
    pub fn squeeze(&self, axis: usize) -> Tensor<T> {
        assert_eq!(self.shape[axis], 1, "squeeze requires a size-1 dim");
        let mut shape = self.shape.clone();
        let mut strides = self.strides.clone();
        shape.remove(axis);
        strides.remove(axis);
        Tensor {
            storage: self.storage.clone(),
            offset: self.offset,
            shape,
            strides,
        }
    }

    /// Swaps two dimensions (a zero-copy transposed view).
    pub fn transpose(&self, a: usize, b: usize) -> Tensor<T> {
        let mut shape = self.shape.clone();
        let mut strides = self.strides.clone();
        shape.swap(a, b);
        strides.swap(a, b);
        Tensor {
            storage: self.storage.clone(),
            offset: self.offset,
            shape,
            strides,
        }
    }

    /// Broadcast view to `shape`; expanded dimensions get stride 0.
    ///
    /// # Panics
    ///
    /// Panics if the current shape does not broadcast to `shape`.
    pub fn expand(&self, shape: &[usize]) -> Tensor<T> {
        let strides = broadcast_strides(&self.shape, &self.strides, shape);
        Tensor {
            storage: self.storage.clone(),
            offset: self.offset,
            shape: shape.to_vec(),
            strides,
        }
    }

    /// View of rows `start..end` along `axis` (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range bounds.
    pub fn slice(&self, axis: usize, start: usize, end: usize) -> Tensor<T> {
        assert!(axis < self.ndim(), "slice axis out of range");
        assert!(
            start <= end && end <= self.shape[axis],
            "slice bounds out of range"
        );
        let mut shape = self.shape.clone();
        shape[axis] = end - start;
        let offset = (self.offset as isize + start as isize * self.strides[axis]) as usize;
        Tensor {
            storage: self.storage.clone(),
            offset,
            shape,
            strides: self.strides.clone(),
        }
    }

    /// Applies `f` to every element, producing a new contiguous tensor.
    pub fn map<U: Element>(&self, f: impl Fn(T) -> U + Sync) -> Tensor<U> {
        if self.is_contiguous() {
            let src = self.as_slice();
            let out: Vec<U> = src.iter().map(|&v| f(v)).collect();
            Tensor::from_vec(out, &self.shape)
        } else {
            let data = &self.storage.data;
            let out: Vec<U> = StridedIter::new(&self.shape, &self.strides, self.offset as isize)
                .map(|off| f(data[off as usize]))
                .collect();
            Tensor::from_vec(out, &self.shape)
        }
    }

    /// [`Tensor::map`] writing into a caller-provided destination slice in
    /// row-major logical order. The destination is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from `self.numel()`.
    pub fn map_into<U: Element>(&self, out: &mut [U], f: impl Fn(T) -> U + Sync) {
        assert_eq!(
            out.len(),
            self.numel(),
            "map_into: destination size mismatch"
        );
        if self.is_contiguous() {
            for (o, &v) in out.iter_mut().zip(self.as_slice()) {
                *o = f(v);
            }
        } else {
            let data = &self.storage.data;
            let offs = StridedIter::new(&self.shape, &self.strides, self.offset as isize);
            for (o, off) in out.iter_mut().zip(offs) {
                *o = f(data[off as usize]);
            }
        }
    }

    /// Applies `f` to every element in place, avoiding any allocation.
    ///
    /// Returns `false` (leaving the tensor untouched) when the storage is
    /// shared or the view is not a full contiguous cover — callers fall
    /// back to [`Tensor::map`]. The planned executor uses this for the
    /// in-place slot reuse of dying elementwise operands.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T + Sync) -> bool {
        match self.as_mut_slice() {
            Some(s) => {
                for v in s.iter_mut() {
                    *v = f(*v);
                }
                true
            }
            None => false,
        }
    }

    /// Builds a tensor element-by-element from a multi-index function.
    ///
    /// Intended for test references and parameter construction, not hot
    /// paths.
    pub fn from_fn(shape: &[usize], f: impl FnMut(&[usize]) -> T) -> Tensor<T> {
        let mut f = f;
        let n = numel(shape);
        let mut idx = vec![0usize; shape.len()];
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(&idx));
            for d in (0..shape.len()).rev() {
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Tensor::from_vec(out, shape)
    }
}

impl Tensor<i64> {
    /// `[0, 1, ..., n-1]` as an `i64` vector.
    pub fn arange(n: usize) -> Tensor<i64> {
        Tensor::from_vec((0..n as i64).collect(), &[n])
    }
}

impl<T: Element> std::fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor<{:?}>{:?}", T::DTYPE, self.shape)?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.to_vec())?;
        }
        Ok(())
    }
}

impl<T: Element> PartialEq for Tensor<T> {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.iter().eq(other.iter())
    }
}

// Serialization: a tensor serializes as `{ shape, data }` in row-major
// logical order, so views round-trip as compact owned tensors. This is
// the paper's "package the trained pipeline into a single artifact"
// (§2.1) made concrete for Rust.
impl<T: Element + hb_json::ToJson> hb_json::ToJson for Tensor<T> {
    fn to_json(&self) -> hb_json::Json {
        hb_json::Json::Obj(vec![
            ("shape".to_string(), hb_json::ToJson::to_json(&self.shape)),
            ("data".to_string(), hb_json::ToJson::to_json(&self.to_vec())),
        ])
    }
}

impl<T: Element + hb_json::FromJson> hb_json::FromJson for Tensor<T> {
    fn from_json(v: &hb_json::Json) -> Result<Self, hb_json::JsonError> {
        let pairs = v.expect_obj("Tensor")?;
        let shape: Vec<usize> = hb_json::field(pairs, "shape", "Tensor")?;
        let data: Vec<T> = hb_json::field(pairs, "data", "Tensor")?;
        // Hostile artifacts can claim absurd shapes; a checked product
        // rejects them before any allocation is attempted.
        let expected = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| {
                hb_json::JsonError::Schema(format!("tensor shape {shape:?} product overflows"))
            })?;
        if data.len() != expected {
            return Err(hb_json::JsonError::Schema(format!(
                "tensor data length {} does not match shape {:?}",
                data.len(),
                shape
            )));
        }
        Ok(Tensor::from_vec(data, &shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.get(&[1, 2]), 6.0);
        assert_eq!(t.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor::from_vec(vec![1.0f32], &[2, 2]);
    }

    #[test]
    fn reshape_is_view_for_contiguous() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.get(&[2, 1]), 5.0);
        assert_eq!(r.to_vec(), t.to_vec());
    }

    #[test]
    fn transpose_view_reads_columns() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let tt = t.transpose(0, 1);
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.to_vec(), vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        assert!(!tt.is_contiguous());
        assert!(tt.to_contiguous().is_contiguous());
    }

    #[test]
    fn expand_broadcasts_without_copy() {
        let t = Tensor::from_vec(vec![1.0f32, 2.0], &[2, 1]);
        let e = t.expand(&[2, 3]);
        assert_eq!(e.to_vec(), vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn slice_views_subrange() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[4, 3]);
        let s = t.slice(0, 1, 3);
        assert_eq!(s.shape(), &[2, 3]);
        assert_eq!(s.to_vec(), vec![3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let c = t.slice(1, 2, 3);
        assert_eq!(c.to_vec(), vec![2.0, 5.0, 8.0, 11.0]);
    }

    #[test]
    fn unsqueeze_squeeze_roundtrip() {
        let t = Tensor::from_vec(vec![1.0f32, 2.0, 3.0], &[3]);
        let u = t.unsqueeze(0);
        assert_eq!(u.shape(), &[1, 3]);
        assert_eq!(u.squeeze(0).to_vec(), t.to_vec());
        let u1 = t.unsqueeze(1);
        assert_eq!(u1.shape(), &[3, 1]);
    }

    #[test]
    fn scalar_and_from_fn() {
        let s = Tensor::scalar(5.0f32);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.to_vec(), vec![5.0]);
        let t = Tensor::from_fn(&[2, 2], |i| (i[0] * 10 + i[1]) as i64);
        assert_eq!(t.to_vec(), vec![0, 1, 10, 11]);
    }

    #[test]
    fn arange_counts() {
        assert_eq!(Tensor::arange(4).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(Tensor::arange(0).numel(), 0);
    }

    #[test]
    fn map_preserves_shape_across_views() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let m = t.transpose(0, 1).map(|v| v * 2.0);
        assert_eq!(m.shape(), &[3, 2]);
        assert_eq!(m.to_vec(), vec![0.0, 6.0, 2.0, 8.0, 4.0, 10.0]);
    }
}
