//! Element-wise arithmetic, comparisons, and selection with NumPy-style
//! broadcasting.
//!
//! These implement the bulk of the paper's Table 2 operator set: `add`,
//! `mul`, `div`, `lt`, `le`, `eq`, `gt`, `ge`, `abs`, `pow`, `exp`,
//! `relu`, `tanh`, `sigmoid`, `isnan`, and `where`.

use rayon::prelude::*;

use crate::dtype::{Element, Float, Num};
use crate::shape::broadcast_shapes;
use crate::tensor::Tensor;

/// Minimum element count before kernels parallelize across Rayon workers.
/// Below this, thread fan-out costs more than it saves.
pub const PAR_THRESHOLD: usize = 1 << 15;

/// Walks `out` (row-major over `shape`) evaluating `f` on incrementally
/// maintained per-input offsets — the shared broadcast kernel behind
/// [`zip_map`] and [`Tensor::where_select`].
fn broadcast_kernel<U: Element, const N: usize>(
    shape: &[usize],
    strides: [&[isize]; N],
    out: &mut [U],
    start: usize,
    f: impl Fn([usize; N]) -> U,
) {
    let ndim = shape.len();
    let ostr = crate::shape::contiguous_strides(shape);
    let mut pos = vec![0usize; ndim];
    let mut offs = [0isize; N];
    let mut rem = start;
    for d in 0..ndim {
        if ostr[d] > 0 {
            pos[d] = rem / ostr[d] as usize;
            rem %= ostr[d] as usize;
        }
        for k in 0..N {
            offs[k] += pos[d] as isize * strides[k][d];
        }
    }
    for o in out.iter_mut() {
        *o = f(offs.map(|v| v as usize));
        for d in (0..ndim).rev() {
            pos[d] += 1;
            for k in 0..N {
                offs[k] += strides[k][d];
            }
            if pos[d] < shape[d] {
                break;
            }
            pos[d] = 0;
            for k in 0..N {
                offs[k] -= strides[k][d] * shape[d] as isize;
            }
        }
    }
}

/// Runs [`broadcast_kernel`] into a caller-provided buffer, parallelizing
/// large outputs across Rayon workers — the allocation-free core shared by
/// [`broadcast_run`] and the planned executor's `*_into` kernels.
fn broadcast_run_into<U: Element, const N: usize>(
    shape: &[usize],
    strides: [&[isize]; N],
    out: &mut [U],
    f: impl Fn([usize; N]) -> U + Sync,
) {
    let n = out.len();
    if n >= PAR_THRESHOLD {
        let chunk = (n / (rayon::current_num_threads() * 4).max(1)).max(4096);
        out.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(ci, c)| broadcast_kernel(shape, strides, c, ci * chunk, &f));
    } else {
        broadcast_kernel(shape, strides, out, 0, &f);
    }
}

/// Runs [`broadcast_kernel`] over the whole output, parallelizing large
/// tensors across Rayon workers.
fn broadcast_run<U: Element, const N: usize>(
    shape: &[usize],
    strides: [&[isize]; N],
    f: impl Fn([usize; N]) -> U + Sync,
) -> Tensor<U> {
    let n: usize = shape.iter().product();
    let mut out = vec![U::default(); n];
    broadcast_run_into(shape, strides, &mut out, &f);
    Tensor::from_vec(out, shape)
}

/// Applies `f` pairwise over two broadcast-compatible tensors.
///
/// # Panics
///
/// Panics if the shapes cannot be broadcast together.
pub fn zip_map<T: Element, V: Element, U: Element>(
    a: &Tensor<T>,
    b: &Tensor<V>,
    f: impl Fn(T, V) -> U + Sync + Send,
) -> Tensor<U> {
    let shape =
        broadcast_shapes(a.shape(), b.shape()).unwrap_or_else(|e| panic!("element-wise op: {e}"));
    // Fast path: both operands already contiguous with the output shape.
    if a.shape() == shape.as_slice()
        && b.shape() == shape.as_slice()
        && a.is_contiguous()
        && b.is_contiguous()
    {
        let (sa, sb) = (a.as_slice(), b.as_slice());
        let out: Vec<U> = if sa.len() >= PAR_THRESHOLD {
            sa.par_iter()
                .zip(sb.par_iter())
                .map(|(&x, &y)| f(x, y))
                .collect()
        } else {
            sa.iter().zip(sb.iter()).map(|(&x, &y)| f(x, y)).collect()
        };
        return Tensor::from_vec(out, &shape);
    }
    // Broadcast path: address each operand through its own view strides
    // (no materialization — copies here would defeat the planner's
    // allocation-free steady state).
    let (sa, aoff) = a.raw_parts();
    let (sb, boff) = b.raw_parts();
    let stra = crate::shape::broadcast_strides(a.shape(), a.strides(), &shape);
    let strb = crate::shape::broadcast_strides(b.shape(), b.strides(), &shape);
    broadcast_run(&shape, [&stra, &strb], |[oa, ob]| {
        f(sa[aoff + oa], sb[boff + ob])
    })
}

/// [`zip_map`] writing into a caller-provided destination of the broadcast
/// output size (row-major). The destination is fully overwritten, so stale
/// contents are irrelevant — this is how the memory planner's arena
/// executor reuses buffers across runs without zeroing them.
///
/// # Panics
///
/// Panics if the shapes cannot be broadcast or `out` has the wrong length.
pub fn zip_map_into<T: Element, V: Element, U: Element>(
    a: &Tensor<T>,
    b: &Tensor<V>,
    out: &mut [U],
    f: impl Fn(T, V) -> U + Sync + Send,
) {
    let shape =
        broadcast_shapes(a.shape(), b.shape()).unwrap_or_else(|e| panic!("element-wise op: {e}"));
    assert_eq!(
        out.len(),
        shape.iter().product::<usize>(),
        "zip_map_into: destination size mismatch"
    );
    if a.shape() == shape.as_slice()
        && b.shape() == shape.as_slice()
        && a.is_contiguous()
        && b.is_contiguous()
    {
        let (sa, sb) = (a.as_slice(), b.as_slice());
        if sa.len() >= PAR_THRESHOLD {
            let chunk = (sa.len() / (rayon::current_num_threads() * 4).max(1)).max(4096);
            out.par_chunks_mut(chunk).enumerate().for_each(|(ci, oc)| {
                let base = ci * chunk;
                for (j, o) in oc.iter_mut().enumerate() {
                    *o = f(sa[base + j], sb[base + j]);
                }
            });
        } else {
            for (o, (&x, &y)) in out.iter_mut().zip(sa.iter().zip(sb.iter())) {
                *o = f(x, y);
            }
        }
        return;
    }
    let (sa, aoff) = a.raw_parts();
    let (sb, boff) = b.raw_parts();
    let stra = crate::shape::broadcast_strides(a.shape(), a.strides(), &shape);
    let strb = crate::shape::broadcast_strides(b.shape(), b.strides(), &shape);
    broadcast_run_into(&shape, [&stra, &strb], out, |[oa, ob]| {
        f(sa[aoff + oa], sb[boff + ob])
    });
}

impl<T: Num> Tensor<T> {
    /// Element-wise sum with broadcasting.
    pub fn add(&self, other: &Tensor<T>) -> Tensor<T> {
        zip_map(self, other, |a, b| a + b)
    }

    /// Element-wise difference with broadcasting.
    pub fn sub(&self, other: &Tensor<T>) -> Tensor<T> {
        zip_map(self, other, |a, b| a - b)
    }

    /// Element-wise product with broadcasting.
    pub fn mul(&self, other: &Tensor<T>) -> Tensor<T> {
        zip_map(self, other, |a, b| a * b)
    }

    /// Element-wise quotient with broadcasting.
    pub fn div(&self, other: &Tensor<T>) -> Tensor<T> {
        zip_map(self, other, |a, b| a / b)
    }

    /// Element-wise minimum with broadcasting.
    pub fn minimum(&self, other: &Tensor<T>) -> Tensor<T> {
        zip_map(self, other, |a, b| if b < a { b } else { a })
    }

    /// Element-wise maximum with broadcasting.
    pub fn maximum(&self, other: &Tensor<T>) -> Tensor<T> {
        zip_map(self, other, |a, b| if b > a { b } else { a })
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, v: T) -> Tensor<T> {
        self.map(move |x| x + v)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, v: T) -> Tensor<T> {
        self.map(move |x| x * v)
    }

    /// `self < other`, element-wise with broadcasting.
    pub fn lt(&self, other: &Tensor<T>) -> Tensor<bool> {
        zip_map(self, other, |a, b| a < b)
    }

    /// `self <= other`, element-wise with broadcasting.
    pub fn le(&self, other: &Tensor<T>) -> Tensor<bool> {
        zip_map(self, other, |a, b| a <= b)
    }

    /// `self > other`, element-wise with broadcasting.
    pub fn gt(&self, other: &Tensor<T>) -> Tensor<bool> {
        zip_map(self, other, |a, b| a > b)
    }

    /// `self >= other`, element-wise with broadcasting.
    pub fn ge(&self, other: &Tensor<T>) -> Tensor<bool> {
        zip_map(self, other, |a, b| a >= b)
    }

    /// `self == other`, element-wise with broadcasting.
    pub fn eq_t(&self, other: &Tensor<T>) -> Tensor<bool> {
        zip_map(self, other, |a, b| a == b)
    }

    /// `self != other`, element-wise with broadcasting.
    pub fn ne_t(&self, other: &Tensor<T>) -> Tensor<bool> {
        zip_map(self, other, |a, b| a != b)
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: T, hi: T) -> Tensor<T> {
        self.map(move |x| {
            if x < lo {
                lo
            } else if x > hi {
                hi
            } else {
                x
            }
        })
    }
}

impl Tensor<bool> {
    /// Selects `a` where `self` is true and `b` otherwise, with
    /// broadcasting across all three tensors (the `Where` operator of
    /// paper Algorithms 2 and 3).
    pub fn where_select<T: Element>(&self, a: &Tensor<T>, b: &Tensor<T>) -> Tensor<T> {
        let s1 = broadcast_shapes(self.shape(), a.shape()).unwrap_or_else(|e| panic!("where: {e}"));
        let shape = broadcast_shapes(&s1, b.shape()).unwrap_or_else(|e| panic!("where: {e}"));
        let (sc, coff) = self.raw_parts();
        let (sa, aoff) = a.raw_parts();
        let (sb, boff) = b.raw_parts();
        let strc = crate::shape::broadcast_strides(self.shape(), self.strides(), &shape);
        let stra = crate::shape::broadcast_strides(a.shape(), a.strides(), &shape);
        let strb = crate::shape::broadcast_strides(b.shape(), b.strides(), &shape);
        broadcast_run(&shape, [&strc, &stra, &strb], |[oc, oa, ob]| {
            if sc[coff + oc] {
                sa[aoff + oa]
            } else {
                sb[boff + ob]
            }
        })
    }

    /// [`Tensor::where_select`] writing into a caller-provided buffer of
    /// the broadcast output size.
    ///
    /// # Panics
    ///
    /// Panics on broadcast failure or a wrong-length destination.
    pub fn where_select_into<T: Element>(&self, a: &Tensor<T>, b: &Tensor<T>, out: &mut [T]) {
        let s1 = broadcast_shapes(self.shape(), a.shape()).unwrap_or_else(|e| panic!("where: {e}"));
        let shape = broadcast_shapes(&s1, b.shape()).unwrap_or_else(|e| panic!("where: {e}"));
        assert_eq!(
            out.len(),
            shape.iter().product::<usize>(),
            "where_select_into: destination size mismatch"
        );
        let (sc, coff) = self.raw_parts();
        let (sa, aoff) = a.raw_parts();
        let (sb, boff) = b.raw_parts();
        let strc = crate::shape::broadcast_strides(self.shape(), self.strides(), &shape);
        let stra = crate::shape::broadcast_strides(a.shape(), a.strides(), &shape);
        let strb = crate::shape::broadcast_strides(b.shape(), b.strides(), &shape);
        broadcast_run_into(&shape, [&strc, &stra, &strb], out, |[oc, oa, ob]| {
            if sc[coff + oc] {
                sa[aoff + oa]
            } else {
                sb[boff + ob]
            }
        });
    }

    /// Logical AND with broadcasting.
    pub fn and(&self, other: &Tensor<bool>) -> Tensor<bool> {
        zip_map(self, other, |a, b| a && b)
    }

    /// Logical OR with broadcasting.
    pub fn or(&self, other: &Tensor<bool>) -> Tensor<bool> {
        zip_map(self, other, |a, b| a || b)
    }

    /// Logical XOR with broadcasting (paper Table 2 `bitwise_xor`).
    pub fn xor(&self, other: &Tensor<bool>) -> Tensor<bool> {
        zip_map(self, other, |a, b| a ^ b)
    }

    /// Logical negation.
    pub fn not(&self) -> Tensor<bool> {
        self.map(|a| !a)
    }
}

impl<T: Float> Tensor<T> {
    /// Element-wise negation.
    pub fn neg(&self) -> Tensor<T> {
        self.map(|x| -x)
    }

    /// Element-wise absolute value.
    pub fn abs_t(&self) -> Tensor<T> {
        self.map(|x| x.abs_())
    }

    /// Element-wise natural exponential.
    pub fn exp_t(&self) -> Tensor<T> {
        self.map(|x| x.exp_())
    }

    /// Element-wise natural logarithm.
    pub fn ln_t(&self) -> Tensor<T> {
        self.map(|x| x.ln_())
    }

    /// Element-wise square root.
    pub fn sqrt_t(&self) -> Tensor<T> {
        self.map(|x| x.sqrt_())
    }

    /// Element-wise power with a scalar exponent.
    pub fn pow_scalar(&self, e: T) -> Tensor<T> {
        self.map(move |x| x.powf_(e))
    }

    /// Rectified linear unit: `max(x, 0)`.
    pub fn relu(&self) -> Tensor<T> {
        self.map(|x| if x < T::ZERO { T::ZERO } else { x })
    }

    /// Hyperbolic tangent.
    pub fn tanh_t(&self) -> Tensor<T> {
        self.map(|x| x.tanh_())
    }

    /// Logistic sigmoid `1 / (1 + e^-x)`.
    pub fn sigmoid(&self) -> Tensor<T> {
        self.map(|x| T::ONE / (T::ONE + (-x).exp_()))
    }

    /// Element-wise NaN test (paper Table 2 `isnan`).
    pub fn isnan(&self) -> Tensor<bool> {
        self.map(|x| x.is_nan_())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], s: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(v.to_vec(), s)
    }

    #[test]
    fn add_same_shape() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[10.0, 20.0, 30.0], &[3]);
        assert_eq!(a.add(&b).to_vec(), vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn broadcast_row_and_column() {
        let col = t(&[1.0, 2.0], &[2, 1]);
        let row = t(&[10.0, 20.0, 30.0], &[1, 3]);
        let s = col.add(&row);
        assert_eq!(s.shape(), &[2, 3]);
        assert_eq!(s.to_vec(), vec![11.0, 21.0, 31.0, 12.0, 22.0, 32.0]);
    }

    #[test]
    fn broadcast_scalar_tensor() {
        let a = t(&[1.0, 2.0], &[2]);
        let s = Tensor::scalar(5.0f32);
        assert_eq!(a.mul(&s).to_vec(), vec![5.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_shapes_panic() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0, 3.0], &[3]);
        let _ = a.add(&b);
    }

    #[test]
    fn comparisons_produce_masks() {
        let a = t(&[1.0, 5.0, 3.0], &[3]);
        let b = t(&[2.0, 2.0, 3.0], &[3]);
        assert_eq!(a.lt(&b).to_vec(), vec![true, false, false]);
        assert_eq!(a.ge(&b).to_vec(), vec![false, true, true]);
        assert_eq!(a.eq_t(&b).to_vec(), vec![false, false, true]);
    }

    #[test]
    fn where_select_broadcasts() {
        let m = Tensor::from_vec(vec![true, false, true], &[3]);
        let a = t(&[1.0, 1.0, 1.0], &[3]);
        let b = Tensor::scalar(9.0f32);
        assert_eq!(m.where_select(&a, &b).to_vec(), vec![1.0, 9.0, 1.0]);
    }

    #[test]
    fn float_unary_ops() {
        let a = t(&[-1.0, 0.0, 2.0], &[3]);
        assert_eq!(a.relu().to_vec(), vec![0.0, 0.0, 2.0]);
        assert_eq!(a.abs_t().to_vec(), vec![1.0, 0.0, 2.0]);
        let s = a.sigmoid().to_vec();
        assert!((s[1] - 0.5).abs() < 1e-6);
        assert!(s[0] < 0.5 && s[2] > 0.5);
    }

    #[test]
    fn isnan_detects_nans() {
        let a = t(&[1.0, f32::NAN, 0.0], &[3]);
        assert_eq!(a.isnan().to_vec(), vec![false, true, false]);
    }

    #[test]
    fn bool_logic() {
        let a = Tensor::from_vec(vec![true, true, false], &[3]);
        let b = Tensor::from_vec(vec![true, false, false], &[3]);
        assert_eq!(a.and(&b).to_vec(), vec![true, false, false]);
        assert_eq!(a.or(&b).to_vec(), vec![true, true, false]);
        assert_eq!(a.xor(&b).to_vec(), vec![false, true, false]);
        assert_eq!(a.not().to_vec(), vec![false, false, true]);
    }

    #[test]
    fn clamp_bounds() {
        let a = t(&[-5.0, 0.5, 7.0], &[3]);
        assert_eq!(a.clamp(0.0, 1.0).to_vec(), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        let n = PAR_THRESHOLD + 17;
        let a = Tensor::from_vec((0..n).map(|v| v as f32).collect(), &[n]);
        let b = Tensor::from_vec((0..n).map(|v| (v * 2) as f32).collect(), &[n]);
        let c = a.add(&b);
        assert_eq!(c.get(&[n - 1]), (n - 1) as f32 * 3.0);
        assert_eq!(c.get(&[0]), 0.0);
    }

    #[test]
    fn ops_on_transposed_views() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let at = a.transpose(0, 1); // shape [3,2], non-contiguous
        let b = t(&[1.0, 1.0], &[2]);
        let s = at.add(&b);
        assert_eq!(s.shape(), &[3, 2]);
        assert_eq!(s.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }
}
