//! GEMM: 2-d and batched matrix multiplication with batch broadcasting.
//!
//! The GEMM tree-compilation strategy (paper Algorithm 1) and every linear
//! operator converter bottom out here. The kernel is a cache-friendly
//! `i-k-j` loop parallelized over output rows with Rayon, which is enough
//! to make the compiled path competitive with the imperative baselines on
//! multi-core CPUs (the paper's §6.1.1 CPU setting).

use rayon::prelude::*;

use crate::shape::{broadcast_shapes, numel};
use crate::tensor::Tensor;
use crate::tune::{self, TileConfig};

/// LHS zero fraction above which the zero-skipping kernel wins: skipping
/// saves `n` multiply-adds per zero but costs a data-dependent branch per
/// LHS element, which mispredicts on dense panels.
const SPARSE_PANEL_NUMERATOR: usize = 1; // zeros > len/4 → sparse kernel
const SPARSE_PANEL_DENOMINATOR: usize = 4;

/// Zero fraction above which skipping beats even the register-tiled
/// kernel. The tiled kernel runs multiply-adds several times faster
/// than the scalar loop, so moderate sparsity (e.g. the ~50%-zero
/// comparison matrices of the GEMM tree strategy) is cheaper to push
/// through it than to branch around; only very sparse panels (the
/// one-hot leaf-selector matrices) still win by skipping.
const SPARSE_TILED_NUMERATOR: usize = 3; // zeros > 3·len/4 → sparse kernel
const SPARSE_TILED_DENOMINATOR: usize = 4;

/// Minimum `m·k·n` for the tiled kernel: below this the packing and
/// tuning overhead exceeds the multiply itself.
const TILE_MIN_MADDS: usize = 1 << 14;

/// Minimum panel width for the tiled kernel: register tiles need a few
/// columns to amortize the broadcast loads.
const TILE_MIN_N: usize = 4;

/// Zero-skipping panel kernel for sparse LHS panels (the one-hot and
/// masked matrices the tree strategies produce).
fn gemm_panel_sparse(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Branch-free panel kernel for dense LHS panels (the common case for
/// feature matrices in the GEMM strategy).
fn gemm_panel_dense(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Packs the `rows`×`kb` block of `a` starting at `(i0, k0)` into
/// `MR`-interleaved micro-panels: tile `t` holds rows
/// `i0 + t·MR ..` laid out as `apack[t·kb·MR + kk·MR + r]`, so the
/// micro-kernel reads its `MR` broadcast operands from one contiguous
/// word group per `k` step. Short tiles are zero-padded; padded lanes
/// are never stored back (see [`micro_edge`]).
fn pack_a<const MR: usize>(
    a: &[f32],
    k: usize,
    i0: usize,
    rows: usize,
    k0: usize,
    kb: usize,
    apack: &mut Vec<f32>,
) {
    let tiles = rows.div_ceil(MR);
    apack.clear();
    apack.resize(tiles * kb * MR, 0.0);
    for t in 0..tiles {
        let base = t * kb * MR;
        let rmax = MR.min(rows - t * MR);
        for r in 0..rmax {
            let row = &a[(i0 + t * MR + r) * k + k0..][..kb];
            for (kk, &v) in row.iter().enumerate() {
                apack[base + kk * MR + r] = v;
            }
        }
    }
}

/// Packs the `kb`×`cols` block of `b` starting at `(k0, j0)` into
/// `NR`-interleaved micro-panels (`bpack[t·kb·NR + kk·NR + c]`), giving
/// the micro-kernel one contiguous `NR`-wide vector load per `k` step.
fn pack_b<const NR: usize>(
    b: &[f32],
    n: usize,
    k0: usize,
    kb: usize,
    j0: usize,
    cols: usize,
    bpack: &mut Vec<f32>,
) {
    let tiles = cols.div_ceil(NR);
    bpack.clear();
    bpack.resize(tiles * kb * NR, 0.0);
    for t in 0..tiles {
        let base = t * kb * NR;
        let cmax = NR.min(cols - t * NR);
        for kk in 0..kb {
            let brow = &b[(k0 + kk) * n + j0 + t * NR..][..cmax];
            bpack[base + kk * NR..base + kk * NR + cmax].copy_from_slice(brow);
        }
    }
}

/// Full `MR`×`NR` register micro-kernel over one packed depth block.
///
/// Each accumulator starts from the partial sum already in `out` and
/// adds its `a·b` terms in ascending-`k` order — exactly the chain the
/// scalar [`gemm_panel_dense`] builds — so tiled and untiled results
/// are bit-identical for every tile configuration. On the first depth
/// block (`load == false`) the partial sum is the pre-zeroed output,
/// so the load is skipped and the accumulators start at literal `0.0`:
/// same chain, half the output-array traffic.
#[inline]
fn micro_full<const MR: usize, const NR: usize>(
    ap: &[f32],
    bp: &[f32],
    kb: usize,
    out: &mut [f32],
    n: usize,
    load: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if load {
        for (r, row) in acc.iter_mut().enumerate() {
            row.copy_from_slice(&out[r * n..r * n + NR]);
        }
    }
    for kk in 0..kb {
        let bv = &bp[kk * NR..kk * NR + NR];
        let av = &ap[kk * MR..kk * MR + MR];
        for (r, row) in acc.iter_mut().enumerate() {
            let ar = av[r];
            for (o, &bvv) in row.iter_mut().zip(bv.iter()) {
                *o += ar * bvv;
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        out[r * n..r * n + NR].copy_from_slice(row);
    }
}

/// Edge micro-kernel for short tiles: the accumulate loop stays the
/// branch-free `MR`×`NR` shape (padded pack lanes contribute garbage to
/// lanes that are never read back), while loads and stores are bounded
/// by the live `rows`×`cols` rectangle.
#[inline]
#[allow(clippy::too_many_arguments)] // hot micro-kernel: a params struct would obscure the tile geometry
fn micro_edge<const MR: usize, const NR: usize>(
    ap: &[f32],
    bp: &[f32],
    kb: usize,
    out: &mut [f32],
    n: usize,
    rows: usize,
    cols: usize,
    load: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if load {
        for (r, row) in acc.iter_mut().enumerate().take(rows) {
            row[..cols].copy_from_slice(&out[r * n..r * n + cols]);
        }
    }
    for kk in 0..kb {
        let bv = &bp[kk * NR..kk * NR + NR];
        let av = &ap[kk * MR..kk * MR + MR];
        for (r, row) in acc.iter_mut().enumerate() {
            let ar = av[r];
            for (o, &bvv) in row.iter_mut().zip(bv.iter()) {
                *o += ar * bvv;
            }
        }
    }
    for (r, row) in acc.iter().enumerate().take(rows) {
        out[r * n..r * n + cols].copy_from_slice(&row[..cols]);
    }
}

/// Cache-blocked loop nest around the micro-kernels: `jc`/`k0`/`i0`
/// step the `nc`/`kc`/`mc` blocks, packing each B and A block once and
/// sweeping register tiles over the packed panels.
fn tile_loop<const MR: usize, const NR: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    kc_cfg: usize,
) {
    let kc = kc_cfg.clamp(1, k);
    // Packed A targets ~128KB (L2-resident), packed B ~256KB. Blocks
    // never need to exceed the panel, but must cover at least one
    // micro-tile (which may itself be wider than a narrow panel).
    let mc = ((1usize << 15) / kc).min(m).max(MR);
    let nc = ((1usize << 16) / kc).min(n).max(NR);
    let mut apack: Vec<f32> = Vec::new();
    let mut bpack: Vec<f32> = Vec::new();
    let mut jc = 0;
    while jc < n {
        let ncb = nc.min(n - jc);
        let mut k0 = 0;
        while k0 < k {
            let kb = kc.min(k - k0);
            // First depth block accumulates from the pre-zeroed output
            // without re-reading it (see `micro_full`).
            let load = k0 > 0;
            pack_b::<NR>(b, n, k0, kb, jc, ncb, &mut bpack);
            let mut i0 = 0;
            while i0 < m {
                let mcb = mc.min(m - i0);
                pack_a::<MR>(a, k, i0, mcb, k0, kb, &mut apack);
                let itiles = mcb.div_ceil(MR);
                let jtiles = ncb.div_ceil(NR);
                for it in 0..itiles {
                    let rows = MR.min(mcb - it * MR);
                    let ap = &apack[it * kb * MR..][..kb * MR];
                    for jt in 0..jtiles {
                        let cols = NR.min(ncb - jt * NR);
                        let bp = &bpack[jt * kb * NR..][..kb * NR];
                        let o = &mut out[(i0 + it * MR) * n + jc + jt * NR..];
                        if rows == MR && cols == NR {
                            micro_full::<MR, NR>(ap, bp, kb, o, n, load);
                        } else {
                            micro_edge::<MR, NR>(ap, bp, kb, o, n, rows, cols, load);
                        }
                    }
                }
                i0 += mcb;
            }
            k0 += kb;
        }
        jc += ncb;
    }
}

/// Per-column map of a *selection matrix* RHS: column `j` has at most
/// one nonzero, at row `row_of[j]` (−1 when all-zero) with value
/// `val[j]`. The GEMM tree strategy multiplies by such matrices
/// constantly — the feature-selector `A` is one-hot per column — and
/// for them the whole `m·k·n` multiply collapses to one gather per
/// output element. Returns `None` as soon as a second nonzero shows up
/// in any column, so dense panels pay roughly `2n` reads.
fn selection_columns(b: &[f32], k: usize, n: usize) -> Option<(Vec<i32>, Vec<f32>)> {
    let mut row_of = vec![-1i32; n];
    let mut val = vec![0.0f32; n];
    for kk in 0..k {
        let brow = &b[kk * n..(kk + 1) * n];
        for (j, &v) in brow.iter().enumerate() {
            if v != 0.0 {
                if row_of[j] >= 0 {
                    return None;
                }
                row_of[j] = kk as i32;
                val[j] = v;
            }
        }
    }
    Some((row_of, val))
}

/// Selection-matrix kernel: `out[i,j] = a[i, row_of[j]] · val[j]`.
///
/// Equivalent to the dense chain minus its `±0.0` terms — the same
/// degenerate-term caveat as the zero-skipping sparse kernel (results
/// differ only where a skipped `0·a` term was `NaN`/`±Inf`-tainted or
/// where dropping a `±0.0` addend flips a `-0.0`). All-zero columns
/// leave the pre-zeroed output untouched.
fn gemm_panel_select(
    a: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    row_of: &[i32],
    val: &[f32],
) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let r = row_of[j];
            if r >= 0 {
                // `0.0 +` mirrors the dense chain's zero init, which
                // canonicalizes a `-0.0` product exactly like `+=` on
                // the pre-zeroed output would.
                *o = 0.0 + arow[r as usize] * val[j];
            }
        }
    }
}

/// Register-tiled, packed-panel GEMM accumulating into a pre-zeroed
/// `out`.
///
/// Monomorphized per `(mr, nr)` micro-tile; every instantiation keeps
/// one accumulator chain per output element with terms added in
/// ascending-`k` order, so results are bit-identical to
/// [`gemm_panel_dense`] — and therefore identical across tile
/// configurations, which is what frees the autotuner in
/// [`crate::tune`] to pick purely by measured time.
pub(crate) fn gemm_panel_tiled(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    cfg: TileConfig,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    match (cfg.mr, cfg.nr) {
        (2, 16) => tile_loop::<2, 16>(a, b, out, m, k, n, cfg.kc),
        (4, 16) => tile_loop::<4, 16>(a, b, out, m, k, n, cfg.kc),
        (6, 8) => tile_loop::<6, 8>(a, b, out, m, k, n, cfg.kc),
        (6, 4) => tile_loop::<6, 4>(a, b, out, m, k, n, cfg.kc),
        // (4, 8) and any unrecognized pinned config.
        _ => tile_loop::<4, 8>(a, b, out, m, k, n, cfg.kc),
    }
}

/// Multiplies one `m×k` by one `k×n` panel into a pre-zeroed `out`
/// (row-major slices).
///
/// Dispatches along the specialized-kernel ladder, cheapest probe
/// first: a selection-matrix RHS collapses to the gather kernel; a
/// very sparse LHS takes the zero-skipping kernel; large dense-enough
/// panels the autotuned register-tiled kernel; the rest the classic
/// scalar loop. All kernels produce identical results for finite
/// operands (the gather and zero-skip kernels only drop `0`-factor
/// terms, which differ solely on NaN/Inf-tainted or `-0.0` sums; the
/// tiled kernel is bit-identical to the scalar one unconditionally).
fn gemm_panel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m >= 16 && k >= 2 {
        if let Some((row_of, val)) = selection_columns(b, k, n) {
            gemm_panel_select(a, out, m, k, n, &row_of, &val);
            return;
        }
    }
    let zeros = a.iter().filter(|&&v| v == 0.0).count();
    if zeros * SPARSE_TILED_DENOMINATOR > a.len() * SPARSE_TILED_NUMERATOR {
        gemm_panel_sparse(a, b, out, m, k, n);
        return;
    }
    if m * k * n >= TILE_MIN_MADDS && n >= TILE_MIN_N {
        let threads = rayon::current_num_threads();
        if let Some((cfg, _src)) = tune::tile_for(m, k, n, threads) {
            gemm_panel_tiled(a, b, out, m, k, n, cfg);
            return;
        }
    }
    if zeros * SPARSE_PANEL_DENOMINATOR > a.len() * SPARSE_PANEL_NUMERATOR {
        gemm_panel_sparse(a, b, out, m, k, n);
    } else {
        gemm_panel_dense(a, b, out, m, k, n);
    }
}

/// Parallel panel multiply: splits the rows of `a` across Rayon workers.
fn gemm_parallel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = rayon::current_num_threads();
    // Threshold tuned so small kernels avoid fork/join overhead. On a
    // single-thread pool splitting is pure loss: each chunk re-probes,
    // re-packs, and re-suffers tile edges, which costs the tiled
    // kernel over 2× on 64-row chunks.
    if threads <= 1 || m * n * k < 1 << 16 || m < 2 {
        gemm_panel(a, b, out, m, k, n);
        return;
    }
    let rows_per_chunk = (m / (threads * 4)).max(8);
    out.par_chunks_mut(rows_per_chunk * n)
        .enumerate()
        .for_each(|(ci, ochunk)| {
            let row0 = ci * rows_per_chunk;
            let rows = ochunk.len() / n;
            gemm_panel(&a[row0 * k..(row0 + rows) * k], b, ochunk, rows, k, n);
        });
}

/// Rows per scratch panel of [`matmul_in_place`]: large enough that the
/// inner GEMM still parallelizes and the tiled kernel amortizes its
/// packing, small enough that the scratch stays a fraction of the
/// buffer being reused.
pub const MATMUL_INPLACE_BLOCK_ROWS: usize = 512;

/// Scratch length (f32 elements) [`matmul_in_place`] needs for an LHS
/// with `m` rows per panel and inner dimension `k`. Memory planners size
/// the scratch slot with this before execution.
pub fn matmul_in_place_scratch_len(m: usize, k: usize) -> usize {
    MATMUL_INPLACE_BLOCK_ROWS.min(m).max(1) * k
}

/// Matrix product overwriting its own LHS buffer: `buf` initially holds
/// the row-major LHS of shape `lhs_shape`, and on return its leading
/// elements hold `lhs @ rhs` (the returned shape). This is what lets a
/// static memory planner run a GEMM chain in a *single* arena slot: out
/// row `r` depends only on in row `r` (plus all of `rhs`), so rows are
/// processed in an order that never overwrites a row before it is read —
/// forward when `n <= k`, reverse when `n > k` — with each block of rows
/// copied into `scratch` just before its output region is written.
///
/// Results equal [`Tensor::matmul`] exactly for finite operands (the
/// panel kernels share accumulation order; only `0·NaN`/`0·Inf` terms
/// could differ across sparsity dispatch, as with the allocating path).
///
/// # Panics
///
/// Panics when ranks/inner dims are invalid, the LHS batch dims are not
/// exactly the broadcast batch dims (an LHS that is itself broadcast
/// would be read more than once and cannot be overwritten), `buf` is
/// shorter than `max(lhs, out)` numel, or `scratch` is shorter than
/// [`matmul_in_place_scratch_len`].
pub fn matmul_in_place(
    buf: &mut [f32],
    lhs_shape: &[usize],
    rhs: &Tensor<f32>,
    scratch: &mut [f32],
) -> Vec<usize> {
    assert!(
        lhs_shape.len() >= 2 && rhs.ndim() >= 2,
        "matmul requires rank >= 2"
    );
    let (m, k) = (
        lhs_shape[lhs_shape.len() - 2],
        lhs_shape[lhs_shape.len() - 1],
    );
    let (k2, n) = (rhs.shape()[rhs.ndim() - 2], rhs.shape()[rhs.ndim() - 1]);
    assert_eq!(
        k,
        k2,
        "matmul inner dims disagree: {lhs_shape:?} x {:?}",
        rhs.shape()
    );
    let batch_a = &lhs_shape[..lhs_shape.len() - 2];
    let batch_b = &rhs.shape()[..rhs.ndim() - 2];
    let batch =
        broadcast_shapes(batch_a, batch_b).unwrap_or_else(|e| panic!("matmul batch dims: {e}"));
    assert_eq!(
        batch, batch_a,
        "matmul_in_place: LHS batch dims must equal the output batch dims"
    );
    let nbatch = numel(&batch);
    let mut oshape = batch.clone();
    oshape.extend_from_slice(&[m, n]);
    assert!(
        buf.len() >= (nbatch * m * k).max(nbatch * m * n),
        "matmul_in_place: buffer too small"
    );
    if m == 0 || n == 0 || nbatch == 0 {
        return oshape;
    }
    let block = MATMUL_INPLACE_BLOCK_ROWS.min(m).max(1);
    assert!(
        scratch.len() >= block * k,
        "matmul_in_place: scratch too small"
    );

    let b = rhs.to_contiguous();
    let sb = b.as_slice();
    let bstr_full = crate::shape::contiguous_strides(b.shape());
    let b_bstr = crate::shape::broadcast_strides(batch_b, &bstr_full[..batch_b.len()], &batch);
    let b_offset = |bi: usize| -> usize {
        let mut rem = bi;
        let mut off = 0isize;
        for (d, &dim) in batch.iter().enumerate().rev() {
            let pos = rem % dim;
            rem /= dim;
            off += pos as isize * b_bstr[d];
        }
        off as usize
    };

    // Output rows grow (n > k): walk backward so a write at row r only
    // clobbers offsets >= r*n > every unread row r' < r (which ends at
    // (r'+1)*k <= r*k <= r*n). Output rows shrink or match (n <= k):
    // walk forward by the mirrored argument.
    let forward = n <= k;
    let nblocks = m.div_ceil(block);
    let mut panel_order: Vec<usize> = (0..nbatch).collect();
    let mut block_order: Vec<usize> = (0..nblocks).collect();
    if !forward {
        panel_order.reverse();
        block_order.reverse();
    }
    for &bi in &panel_order {
        let ob = b_offset(bi);
        let bpanel = &sb[ob..ob + k * n];
        for &blk in &block_order {
            let r0 = blk * block;
            let rows = block.min(m - r0);
            let fr = bi * m + r0; // flat row index across panels
            scratch[..rows * k].copy_from_slice(&buf[fr * k..(fr + rows) * k]);
            let out = &mut buf[fr * n..(fr + rows) * n];
            out.fill(0.0);
            gemm_parallel(&scratch[..rows * k], bpanel, out, rows, k, n);
        }
    }
    oshape
}

impl Tensor<f32> {
    /// Fallible [`Tensor::matmul`]: validates ranks, inner dimensions, and
    /// batch broadcastability up front and reports violations as a typed
    /// [`TensorError`](crate::TensorError) instead of panicking — the
    /// entry point for input-driven callers (e.g. a serving request whose
    /// feature width disagrees with the model).
    pub fn try_matmul(&self, other: &Tensor<f32>) -> Result<Tensor<f32>, crate::TensorError> {
        if self.ndim() < 2 || other.ndim() < 2 {
            return Err(crate::TensorError::RankMismatch {
                expected: 2,
                got: self.ndim().min(other.ndim()),
            });
        }
        let k = self.shape()[self.ndim() - 1];
        let k2 = other.shape()[other.ndim() - 2];
        if k != k2 {
            return Err(crate::TensorError::ShapeMismatch(format!(
                "matmul inner dims disagree: {:?} x {:?}",
                self.shape(),
                other.shape()
            )));
        }
        broadcast_shapes(
            &self.shape()[..self.ndim() - 2],
            &other.shape()[..other.ndim() - 2],
        )?;
        Ok(self.matmul(other))
    }

    /// Matrix product with batch broadcasting.
    ///
    /// Shapes follow PyTorch `matmul` semantics for rank ≥ 2 operands:
    /// the last two dimensions are multiplied (`[..., m, k] × [..., k, n]`)
    /// and the leading batch dimensions are broadcast together.
    ///
    /// # Panics
    ///
    /// Panics if either operand has rank < 2, the inner dimensions
    /// disagree, or the batch dimensions cannot be broadcast.
    pub fn matmul(&self, other: &Tensor<f32>) -> Tensor<f32> {
        let oshape = self.matmul_out_shape(other);
        let mut out = vec![0.0f32; numel(&oshape)];
        self.matmul_impl(other, &mut out);
        Tensor::from_vec(out, &oshape)
    }

    /// [`Tensor::matmul`] writing into a caller-provided destination of
    /// the output's row-major size. The buffer is fully overwritten
    /// (zeroed, then accumulated), so stale contents are irrelevant.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Tensor::matmul`], plus a
    /// wrong-length destination.
    pub fn matmul_into(&self, other: &Tensor<f32>, out: &mut [f32]) {
        let oshape = self.matmul_out_shape(other);
        assert_eq!(
            out.len(),
            numel(&oshape),
            "matmul_into: destination size mismatch"
        );
        out.fill(0.0);
        self.matmul_impl(other, out);
    }

    /// Validates operand ranks/dims and returns the broadcast output shape.
    fn matmul_out_shape(&self, other: &Tensor<f32>) -> Vec<usize> {
        assert!(
            self.ndim() >= 2 && other.ndim() >= 2,
            "matmul requires rank >= 2"
        );
        let (m, k) = (self.shape()[self.ndim() - 2], self.shape()[self.ndim() - 1]);
        let (k2, n) = (
            other.shape()[other.ndim() - 2],
            other.shape()[other.ndim() - 1],
        );
        assert_eq!(
            k,
            k2,
            "matmul inner dims disagree: {:?} x {:?}",
            self.shape(),
            other.shape()
        );

        let batch_a = &self.shape()[..self.ndim() - 2];
        let batch_b = &other.shape()[..other.ndim() - 2];
        let batch =
            broadcast_shapes(batch_a, batch_b).unwrap_or_else(|e| panic!("matmul batch dims: {e}"));
        let mut oshape = batch;
        oshape.extend_from_slice(&[m, n]);
        oshape
    }

    /// Shared GEMM body: accumulates the product into a pre-zeroed `out`.
    fn matmul_impl(&self, other: &Tensor<f32>, out: &mut [f32]) {
        let (m, k) = (self.shape()[self.ndim() - 2], self.shape()[self.ndim() - 1]);
        let n = other.shape()[other.ndim() - 1];
        let batch_a = &self.shape()[..self.ndim() - 2];
        let batch_b = &other.shape()[..other.ndim() - 2];
        let batch =
            broadcast_shapes(batch_a, batch_b).unwrap_or_else(|e| panic!("matmul batch dims: {e}"));
        let nbatch = numel(&batch);

        // Compact each operand in its own shape; broadcast batch dims are
        // resolved through stride arithmetic rather than materializing
        // replicated panels (a batch-shared LHS is the common case in the
        // GEMM tree strategy: X[n,F] against per-tree A[T,F,I]).
        let a = self.to_contiguous();
        let b = other.to_contiguous();
        let (sa, sb) = (a.as_slice(), b.as_slice());
        let astr_full = crate::shape::contiguous_strides(a.shape());
        let bstr_full = crate::shape::contiguous_strides(b.shape());
        let a_bstr = crate::shape::broadcast_strides(batch_a, &astr_full[..batch_a.len()], &batch);
        let b_bstr = crate::shape::broadcast_strides(batch_b, &bstr_full[..batch_b.len()], &batch);
        // Panel offset of batch index `bi` under broadcast strides.
        let offset = |bi: usize, strides: &[isize]| -> usize {
            let mut rem = bi;
            let mut off = 0isize;
            for (d, &dim) in batch.iter().enumerate().rev() {
                let pos = rem % dim;
                rem /= dim;
                off += pos as isize * strides[d];
            }
            off as usize
        };

        if m == 0 || n == 0 {
            // Degenerate output (e.g. an empty serving batch): nothing to
            // compute, and par_chunks_mut rejects a zero chunk size.
        } else if nbatch == 1 {
            gemm_parallel(sa, sb, out, m, k, n);
        } else {
            out.par_chunks_mut(m * n)
                .enumerate()
                .for_each(|(bi, ochunk)| {
                    let oa = offset(bi, &a_bstr);
                    let ob = offset(bi, &b_bstr);
                    gemm_panel(&sa[oa..oa + m * k], &sb[ob..ob + k * n], ochunk, m, k, n);
                });
        }
    }

    /// Squared Euclidean distance matrix via the quadratic-expansion trick
    /// of paper §4.2: `D[i,j] = |x_i|² + |y_j|² − 2·x_i·y_jᵀ`, avoiding the
    /// `n×m×d` broadcast intermediate.
    ///
    /// `self` is `[n, d]`, `other` is `[m, d]`; the result is `[n, m]`.
    pub fn sqdist(&self, other: &Tensor<f32>) -> Tensor<f32> {
        assert_eq!(self.ndim(), 2, "sqdist expects 2-d inputs");
        assert_eq!(other.ndim(), 2, "sqdist expects 2-d inputs");
        assert_eq!(
            self.shape()[1],
            other.shape()[1],
            "sqdist feature dims disagree"
        );
        let xx = self.mul(self).sum_axis(1, true); // [n,1]
        let yy = other
            .mul(other)
            .sum_axis(1, true)
            .reshape(&[1, other.shape()[0]]);
        let xy = self.matmul(&other.transpose(0, 1)); // [n,m]
                                                      // max(0, ·) guards tiny negative values from floating-point
                                                      // cancellation so downstream sqrt stays finite.
        xx.add(&yy).sub(&xy.mul_scalar(2.0)).relu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], s: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(v.to_vec(), s)
    }

    /// Naive reference used to validate the blocked kernel.
    fn naive_matmul(a: &Tensor<f32>, b: &Tensor<f32>) -> Vec<f32> {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    out[i * n + j] += a.get(&[i, kk]) * b.get(&[kk, j]);
                }
            }
        }
        out
    }

    #[test]
    fn identity_multiplication() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(a.matmul(&i).to_vec(), a.to_vec());
        assert_eq!(i.matmul(&a).to_vec(), a.to_vec());
    }

    #[test]
    fn rectangular_matches_naive() {
        let a = Tensor::from_fn(&[3, 5], |i| (i[0] * 5 + i[1]) as f32 * 0.5);
        let b = Tensor::from_fn(&[5, 4], |i| (i[0] as f32 - i[1] as f32) * 0.25);
        assert_eq!(a.matmul(&b).to_vec(), naive_matmul(&a, &b));
    }

    #[test]
    fn large_parallel_matches_naive() {
        let a = Tensor::from_fn(&[64, 48], |i| ((i[0] * 7 + i[1] * 3) % 11) as f32 - 5.0);
        let b = Tensor::from_fn(&[48, 32], |i| ((i[0] * 5 + i[1]) % 7) as f32 - 3.0);
        let got = a.matmul(&b).to_vec();
        let want = naive_matmul(&a, &b);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn batched_matmul_independent_slices() {
        // Two batches: identity and doubling matrix.
        let a = t(&[1.0, 2.0, 3.0, 4.0, 1.0, 1.0, 1.0, 1.0], &[2, 2, 2]);
        let b = t(&[1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn batch_broadcasting_shares_rhs() {
        // lhs [2,1,3] (one row per batch), rhs [3,2] broadcast to both.
        let a = t(&[1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[2, 1, 3]);
        let b = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 1, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims disagree")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::<f32>::zeros(&[2, 3]);
        let b = Tensor::<f32>::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_on_transposed_view() {
        let a = Tensor::from_fn(&[4, 3], |i| (i[0] * 3 + i[1]) as f32);
        let at = a.transpose(0, 1); // [3,4], non-contiguous
        let b = Tensor::from_fn(&[4, 2], |i| (i[0] + i[1]) as f32);
        let c = at.matmul(&b);
        assert_eq!(c.shape(), &[3, 2]);
        // Reference against a compacted transpose.
        let want = at.to_contiguous().matmul(&b).to_vec();
        assert_eq!(c.to_vec(), want);
    }

    /// Runs matmul_in_place against the allocating kernel on one case.
    fn check_in_place(lhs: &Tensor<f32>, rhs: &Tensor<f32>) {
        let want = lhs.matmul(rhs);
        let nd = lhs.ndim();
        let (m, k) = (lhs.shape()[nd - 2], lhs.shape()[nd - 1]);
        let mut buf = lhs.to_vec();
        buf.resize(buf.len().max(want.numel()), 0.0);
        let mut scratch = vec![0.0f32; matmul_in_place_scratch_len(m, k)];
        let oshape = matmul_in_place(&mut buf, lhs.shape(), rhs, &mut scratch);
        assert_eq!(oshape, want.shape());
        assert_eq!(&buf[..want.numel()], want.to_vec().as_slice());
    }

    #[test]
    fn in_place_matches_allocating_2d() {
        // Shrinking (n < k), growing (n > k), and square outputs.
        let a = Tensor::from_fn(&[37, 11], |i| ((i[0] * 7 + i[1] * 3) % 13) as f32 - 6.0);
        for n in [4usize, 11, 23] {
            let b = Tensor::from_fn(&[11, n], |i| ((i[0] * 5 + i[1]) % 9) as f32 - 4.0);
            check_in_place(&a, &b);
        }
    }

    #[test]
    fn in_place_matches_allocating_batched() {
        let a = Tensor::from_fn(&[3, 29, 7], |i| {
            ((i[0] * 31 + i[1] * 7 + i[2]) % 17) as f32 - 8.0
        });
        // Per-batch RHS panels and a batch-shared broadcast RHS.
        let b = Tensor::from_fn(&[3, 7, 12], |i| {
            ((i[0] * 11 + i[1] * 3 + i[2]) % 7) as f32 - 3.0
        });
        check_in_place(&a, &b);
        let shared = Tensor::from_fn(&[7, 5], |i| ((i[0] + i[1] * 2) % 5) as f32 - 2.0);
        check_in_place(&a, &shared);
    }

    #[test]
    fn in_place_spans_multiple_blocks() {
        // More rows than one scratch block, sparse-ish LHS to exercise
        // both panel kernels.
        let a = Tensor::from_fn(&[MATMUL_INPLACE_BLOCK_ROWS * 2 + 17, 6], |i| {
            if (i[0] + i[1]) % 3 == 0 {
                0.0
            } else {
                (i[0] % 7) as f32 - 3.0
            }
        });
        for n in [3usize, 9] {
            let b = Tensor::from_fn(&[6, n], |i| (i[0] as f32 - i[1] as f32) * 0.5);
            check_in_place(&a, &b);
        }
    }

    #[test]
    #[should_panic(expected = "LHS batch dims")]
    fn in_place_rejects_broadcast_lhs() {
        let a = Tensor::<f32>::zeros(&[1, 2, 3]);
        let b = Tensor::<f32>::zeros(&[4, 3, 2]);
        let mut buf = vec![0.0f32; 16];
        let mut scratch = vec![0.0f32; 16];
        matmul_in_place(&mut buf, a.shape(), &b, &mut scratch);
    }

    /// Every tile configuration (including degenerate kc and tiles far
    /// wider than the panel) must reproduce the scalar kernel bit for
    /// bit — the invariant that lets the autotuner pick by time alone.
    #[test]
    fn tiled_kernel_bit_identical_to_scalar_for_every_config() {
        // Values include negatives, non-powers-of-two, NaN and ±Inf in
        // the RHS (the LHS stays NaN-free so the scalar reference is
        // the dense kernel's exact chain).
        let (m, k, n) = (37, 19, 29);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 7 + 3) % 23) as f32 * 0.37 - 4.0)
            .collect();
        let mut b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 5 + 1) % 17) as f32 * 0.61 - 5.0)
            .collect();
        b[3] = f32::NAN;
        b[41] = f32::INFINITY;
        b[55] = f32::NEG_INFINITY;
        b[60] = -0.0;
        let mut want = vec![0.0f32; m * n];
        gemm_panel_dense(&a, &b, &mut want, m, k, n);
        let mut configs: Vec<TileConfig> = tune::TILE_CANDIDATES.to_vec();
        configs.push(TileConfig {
            mr: 4,
            nr: 8,
            kc: 1,
        });
        configs.push(TileConfig {
            mr: 4,
            nr: 8,
            kc: 7,
        });
        configs.push(TileConfig {
            mr: 2,
            nr: 16,
            kc: 3,
        });
        for cfg in configs {
            let mut got = vec![0.0f32; m * n];
            gemm_panel_tiled(&a, &b, &mut got, m, k, n, cfg);
            for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "cfg {cfg:?} elem {i}: {g} vs {w}");
            }
        }
    }

    /// Large-panel dispatch (which may route through the tuner and the
    /// tiled kernel) must agree with the scalar chain bit for bit.
    #[test]
    fn panel_dispatch_matches_scalar_chain() {
        let (m, k, n) = (300, 13, 30);
        let a = Tensor::from_fn(&[m, k], |i| ((i[0] * 7 + i[1] * 3) % 11) as f32 * 0.3 - 1.4);
        let b = Tensor::from_fn(&[k, n], |i| ((i[0] * 5 + i[1]) % 9) as f32 * 0.7 - 2.8);
        let mut want = vec![0.0f32; m * n];
        gemm_panel_dense(a.as_slice(), b.as_slice(), &mut want, m, k, n);
        let got = a.matmul(&b);
        assert_eq!(
            got.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Manual microbenchmark of the panel kernels; run with
    /// `cargo test --release -p hb-tensor -- --ignored kernel_bench --nocapture`.
    #[test]
    #[ignore]
    fn kernel_bench() {
        for &(m, k, n, zfrac) in &[
            (1000usize, 13usize, 30usize, 0.0f32),
            (1000, 30, 31, 0.5),
            (1000, 31, 1, 0.97),
        ] {
            let a: Vec<f32> = (0..m * k)
                .map(|i| {
                    if ((i * 2654435761) % 1000) as f32 / 1000.0 < zfrac {
                        0.0
                    } else {
                        ((i * 7 + 3) % 23) as f32 * 0.37 - 4.0
                    }
                })
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|i| ((i * 5) % 17) as f32 * 0.61 - 5.0)
                .collect();
            let mut out = vec![0.0f32; m * n];
            let reps = 20;
            let mut time = |f: &mut dyn FnMut(&mut [f32])| {
                let mut best = f64::INFINITY;
                for _ in 0..reps {
                    out.fill(0.0);
                    let t0 = std::time::Instant::now();
                    f(&mut out);
                    best = best.min(t0.elapsed().as_secs_f64());
                }
                best * 1e6
            };
            let td = time(&mut |o| gemm_panel_dense(&a, &b, o, m, k, n));
            let ts = time(&mut |o| gemm_panel_sparse(&a, &b, o, m, k, n));
            println!("[{m}x{k}x{n} z={zfrac}] dense {td:.0}us sparse {ts:.0}us");
            for cfg in tune::TILE_CANDIDATES {
                let tt = time(&mut |o| gemm_panel_tiled(&a, &b, o, m, k, n, cfg));
                println!("    tiled {} {tt:.0}us", cfg.label());
            }
        }
    }

    /// Manual microbenchmark of panel sizes; run with
    /// `cargo test --release -p hb-tensor -- --ignored chunk_bench --nocapture`.
    #[test]
    #[ignore]
    fn chunk_bench() {
        let (k, n) = (30usize, 31usize);
        for m in [64usize, 256, 1000] {
            let a: Vec<f32> = (0..m * k)
                .map(|i| {
                    if (i * 2654435761usize) % 2 == 0 {
                        0.0
                    } else {
                        ((i * 7 + 3) % 23) as f32 * 0.37 - 4.0
                    }
                })
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|i| ((i * 5) % 17) as f32 * 0.61 - 5.0)
                .collect();
            let mut out = vec![0.0f32; m * n];
            let reps = 1000 * 64 / m;
            let mut best = f64::INFINITY;
            for _ in 0..reps.min(100) {
                out.fill(0.0);
                let t0 = std::time::Instant::now();
                gemm_panel(&a, &b, &mut out, m, k, n);
                best = best.min(t0.elapsed().as_secs_f64());
            }
            let rate = (m * k * n) as f64 / best / 1e9;
            println!("m={m}: {:.1}us ({rate:.2} Gmadd/s)", best * 1e6);
        }
    }

    /// Manual microbenchmark of the in-place path; run with
    /// `cargo test --release -p hb-tensor -- --ignored inplace_bench --nocapture`.
    #[test]
    #[ignore]
    fn inplace_bench() {
        let (t, m, k, n) = (20usize, 1000usize, 30usize, 31usize);
        let a = Tensor::from_fn(&[t, m, k], |i| {
            if (i[0] * 31 + i[1] * 7 + i[2]) % 2 == 0 {
                0.0
            } else {
                ((i[1] * 7 + i[2]) % 13) as f32 - 6.0
            }
        });
        let b = Tensor::from_fn(&[t, k, n], |i| ((i[0] + i[1] * 5 + i[2]) % 9) as f32 - 4.0);
        let mut best_alloc = f64::INFINITY;
        let mut best_ip = f64::INFINITY;
        for _ in 0..10 {
            let t0 = std::time::Instant::now();
            let _ = a.matmul(&b);
            best_alloc = best_alloc.min(t0.elapsed().as_secs_f64());
            let mut buf = a.to_vec();
            buf.resize(buf.len().max(t * m * n), 0.0);
            let mut scratch = vec![0.0f32; matmul_in_place_scratch_len(m, k)];
            let t0 = std::time::Instant::now();
            let _ = matmul_in_place(&mut buf, a.shape(), &b, &mut scratch);
            best_ip = best_ip.min(t0.elapsed().as_secs_f64());
        }
        println!(
            "alloc {:.0}us in-place {:.0}us",
            best_alloc * 1e6,
            best_ip * 1e6
        );
    }

    #[test]
    fn sqdist_matches_broadcast_formula() {
        let x = Tensor::from_fn(&[5, 3], |i| (i[0] as f32) - (i[1] as f32) * 0.5);
        let y = Tensor::from_fn(&[4, 3], |i| (i[1] as f32) * 0.25 + i[0] as f32);
        let d = x.sqdist(&y);
        for i in 0..5 {
            for j in 0..4 {
                let mut want = 0.0f32;
                for f in 0..3 {
                    let diff = x.get(&[i, f]) - y.get(&[j, f]);
                    want += diff * diff;
                }
                assert!((d.get(&[i, j]) - want).abs() < 1e-4);
            }
        }
    }
}
