//! GEMM: 2-d and batched matrix multiplication with batch broadcasting.
//!
//! The GEMM tree-compilation strategy (paper Algorithm 1) and every linear
//! operator converter bottom out here. The kernel is a cache-friendly
//! `i-k-j` loop parallelized over output rows with Rayon, which is enough
//! to make the compiled path competitive with the imperative baselines on
//! multi-core CPUs (the paper's §6.1.1 CPU setting).

use rayon::prelude::*;

use crate::shape::{broadcast_shapes, numel};
use crate::tensor::Tensor;

/// Multiplies one `m×k` by one `k×n` panel into `out` (row-major slices).
fn gemm_panel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Parallel panel multiply: splits the rows of `a` across Rayon workers.
fn gemm_parallel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    // Threshold tuned so small kernels avoid fork/join overhead.
    if m * n * k < 1 << 16 || m < 2 {
        gemm_panel(a, b, out, m, k, n);
        return;
    }
    let rows_per_chunk = (m / (rayon::current_num_threads() * 4)).max(8);
    out.par_chunks_mut(rows_per_chunk * n)
        .enumerate()
        .for_each(|(ci, ochunk)| {
            let row0 = ci * rows_per_chunk;
            let rows = ochunk.len() / n;
            gemm_panel(&a[row0 * k..(row0 + rows) * k], b, ochunk, rows, k, n);
        });
}

impl Tensor<f32> {
    /// Fallible [`Tensor::matmul`]: validates ranks, inner dimensions, and
    /// batch broadcastability up front and reports violations as a typed
    /// [`TensorError`](crate::TensorError) instead of panicking — the
    /// entry point for input-driven callers (e.g. a serving request whose
    /// feature width disagrees with the model).
    pub fn try_matmul(&self, other: &Tensor<f32>) -> Result<Tensor<f32>, crate::TensorError> {
        if self.ndim() < 2 || other.ndim() < 2 {
            return Err(crate::TensorError::RankMismatch {
                expected: 2,
                got: self.ndim().min(other.ndim()),
            });
        }
        let k = self.shape()[self.ndim() - 1];
        let k2 = other.shape()[other.ndim() - 2];
        if k != k2 {
            return Err(crate::TensorError::ShapeMismatch(format!(
                "matmul inner dims disagree: {:?} x {:?}",
                self.shape(),
                other.shape()
            )));
        }
        broadcast_shapes(
            &self.shape()[..self.ndim() - 2],
            &other.shape()[..other.ndim() - 2],
        )?;
        Ok(self.matmul(other))
    }

    /// Matrix product with batch broadcasting.
    ///
    /// Shapes follow PyTorch `matmul` semantics for rank ≥ 2 operands:
    /// the last two dimensions are multiplied (`[..., m, k] × [..., k, n]`)
    /// and the leading batch dimensions are broadcast together.
    ///
    /// # Panics
    ///
    /// Panics if either operand has rank < 2, the inner dimensions
    /// disagree, or the batch dimensions cannot be broadcast.
    pub fn matmul(&self, other: &Tensor<f32>) -> Tensor<f32> {
        assert!(
            self.ndim() >= 2 && other.ndim() >= 2,
            "matmul requires rank >= 2"
        );
        let (m, k) = (self.shape()[self.ndim() - 2], self.shape()[self.ndim() - 1]);
        let (k2, n) = (
            other.shape()[other.ndim() - 2],
            other.shape()[other.ndim() - 1],
        );
        assert_eq!(
            k,
            k2,
            "matmul inner dims disagree: {:?} x {:?}",
            self.shape(),
            other.shape()
        );

        let batch_a = &self.shape()[..self.ndim() - 2];
        let batch_b = &other.shape()[..other.ndim() - 2];
        let batch =
            broadcast_shapes(batch_a, batch_b).unwrap_or_else(|e| panic!("matmul batch dims: {e}"));
        let nbatch = numel(&batch);

        // Compact each operand in its own shape; broadcast batch dims are
        // resolved through stride arithmetic rather than materializing
        // replicated panels (a batch-shared LHS is the common case in the
        // GEMM tree strategy: X[n,F] against per-tree A[T,F,I]).
        let a = self.to_contiguous();
        let b = other.to_contiguous();
        let (sa, sb) = (a.as_slice(), b.as_slice());
        let astr_full = crate::shape::contiguous_strides(a.shape());
        let bstr_full = crate::shape::contiguous_strides(b.shape());
        let a_bstr = crate::shape::broadcast_strides(batch_a, &astr_full[..batch_a.len()], &batch);
        let b_bstr = crate::shape::broadcast_strides(batch_b, &bstr_full[..batch_b.len()], &batch);
        // Panel offset of batch index `bi` under broadcast strides.
        let offset = |bi: usize, strides: &[isize]| -> usize {
            let mut rem = bi;
            let mut off = 0isize;
            for (d, &dim) in batch.iter().enumerate().rev() {
                let pos = rem % dim;
                rem /= dim;
                off += pos as isize * strides[d];
            }
            off as usize
        };

        let mut out = vec![0.0f32; nbatch * m * n];
        if m == 0 || n == 0 {
            // Degenerate output (e.g. an empty serving batch): nothing to
            // compute, and par_chunks_mut rejects a zero chunk size.
        } else if nbatch == 1 {
            gemm_parallel(sa, sb, &mut out, m, k, n);
        } else {
            out.par_chunks_mut(m * n)
                .enumerate()
                .for_each(|(bi, ochunk)| {
                    let oa = offset(bi, &a_bstr);
                    let ob = offset(bi, &b_bstr);
                    gemm_panel(&sa[oa..oa + m * k], &sb[ob..ob + k * n], ochunk, m, k, n);
                });
        }
        let mut oshape = batch;
        oshape.extend_from_slice(&[m, n]);
        Tensor::from_vec(out, &oshape)
    }

    /// Squared Euclidean distance matrix via the quadratic-expansion trick
    /// of paper §4.2: `D[i,j] = |x_i|² + |y_j|² − 2·x_i·y_jᵀ`, avoiding the
    /// `n×m×d` broadcast intermediate.
    ///
    /// `self` is `[n, d]`, `other` is `[m, d]`; the result is `[n, m]`.
    pub fn sqdist(&self, other: &Tensor<f32>) -> Tensor<f32> {
        assert_eq!(self.ndim(), 2, "sqdist expects 2-d inputs");
        assert_eq!(other.ndim(), 2, "sqdist expects 2-d inputs");
        assert_eq!(
            self.shape()[1],
            other.shape()[1],
            "sqdist feature dims disagree"
        );
        let xx = self.mul(self).sum_axis(1, true); // [n,1]
        let yy = other
            .mul(other)
            .sum_axis(1, true)
            .reshape(&[1, other.shape()[0]]);
        let xy = self.matmul(&other.transpose(0, 1)); // [n,m]
                                                      // max(0, ·) guards tiny negative values from floating-point
                                                      // cancellation so downstream sqrt stays finite.
        xx.add(&yy).sub(&xy.mul_scalar(2.0)).relu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], s: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(v.to_vec(), s)
    }

    /// Naive reference used to validate the blocked kernel.
    fn naive_matmul(a: &Tensor<f32>, b: &Tensor<f32>) -> Vec<f32> {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    out[i * n + j] += a.get(&[i, kk]) * b.get(&[kk, j]);
                }
            }
        }
        out
    }

    #[test]
    fn identity_multiplication() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(a.matmul(&i).to_vec(), a.to_vec());
        assert_eq!(i.matmul(&a).to_vec(), a.to_vec());
    }

    #[test]
    fn rectangular_matches_naive() {
        let a = Tensor::from_fn(&[3, 5], |i| (i[0] * 5 + i[1]) as f32 * 0.5);
        let b = Tensor::from_fn(&[5, 4], |i| (i[0] as f32 - i[1] as f32) * 0.25);
        assert_eq!(a.matmul(&b).to_vec(), naive_matmul(&a, &b));
    }

    #[test]
    fn large_parallel_matches_naive() {
        let a = Tensor::from_fn(&[64, 48], |i| ((i[0] * 7 + i[1] * 3) % 11) as f32 - 5.0);
        let b = Tensor::from_fn(&[48, 32], |i| ((i[0] * 5 + i[1]) % 7) as f32 - 3.0);
        let got = a.matmul(&b).to_vec();
        let want = naive_matmul(&a, &b);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn batched_matmul_independent_slices() {
        // Two batches: identity and doubling matrix.
        let a = t(&[1.0, 2.0, 3.0, 4.0, 1.0, 1.0, 1.0, 1.0], &[2, 2, 2]);
        let b = t(&[1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn batch_broadcasting_shares_rhs() {
        // lhs [2,1,3] (one row per batch), rhs [3,2] broadcast to both.
        let a = t(&[1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[2, 1, 3]);
        let b = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 1, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims disagree")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::<f32>::zeros(&[2, 3]);
        let b = Tensor::<f32>::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_on_transposed_view() {
        let a = Tensor::from_fn(&[4, 3], |i| (i[0] * 3 + i[1]) as f32);
        let at = a.transpose(0, 1); // [3,4], non-contiguous
        let b = Tensor::from_fn(&[4, 2], |i| (i[0] + i[1]) as f32);
        let c = at.matmul(&b);
        assert_eq!(c.shape(), &[3, 2]);
        // Reference against a compacted transpose.
        let want = at.to_contiguous().matmul(&b).to_vec();
        assert_eq!(c.to_vec(), want);
    }

    #[test]
    fn sqdist_matches_broadcast_formula() {
        let x = Tensor::from_fn(&[5, 3], |i| (i[0] as f32) - (i[1] as f32) * 0.5);
        let y = Tensor::from_fn(&[4, 3], |i| (i[1] as f32) * 0.25 + i[0] as f32);
        let d = x.sqdist(&y);
        for i in 0..5 {
            for j in 0..4 {
                let mut want = 0.0f32;
                for f in 0..3 {
                    let diff = x.get(&[i, f]) - y.get(&[j, f]);
                    want += diff * diff;
                }
                assert!((d.get(&[i, j]) - want).abs() < 1e-4);
            }
        }
    }
}
