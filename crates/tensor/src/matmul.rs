//! GEMM: 2-d and batched matrix multiplication with batch broadcasting.
//!
//! The GEMM tree-compilation strategy (paper Algorithm 1) and every linear
//! operator converter bottom out here. The kernel is a cache-friendly
//! `i-k-j` loop parallelized over output rows with Rayon, which is enough
//! to make the compiled path competitive with the imperative baselines on
//! multi-core CPUs (the paper's §6.1.1 CPU setting).

use rayon::prelude::*;

use crate::shape::{broadcast_shapes, numel};
use crate::tensor::Tensor;

/// LHS zero fraction above which the zero-skipping kernel wins: skipping
/// saves `n` multiply-adds per zero but costs a data-dependent branch per
/// LHS element, which mispredicts on dense panels.
const SPARSE_PANEL_NUMERATOR: usize = 1; // zeros > len/4 → sparse kernel
const SPARSE_PANEL_DENOMINATOR: usize = 4;

/// Zero-skipping panel kernel for sparse LHS panels (the one-hot and
/// masked matrices the tree strategies produce).
fn gemm_panel_sparse(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Branch-free panel kernel for dense LHS panels (the common case for
/// feature matrices in the GEMM strategy).
fn gemm_panel_dense(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Multiplies one `m×k` by one `k×n` panel into `out` (row-major slices).
///
/// Probes LHS sparsity once per panel — O(m·k) against the O(m·k·n)
/// multiply — and dispatches to the zero-skipping or branch-free kernel.
/// Both kernels produce identical results for finite operands (the skip
/// only changes `0·b` terms, which differ solely when `b` is NaN/Inf).
fn gemm_panel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let zeros = a.iter().filter(|&&v| v == 0.0).count();
    if zeros * SPARSE_PANEL_DENOMINATOR > a.len() * SPARSE_PANEL_NUMERATOR {
        gemm_panel_sparse(a, b, out, m, k, n);
    } else {
        gemm_panel_dense(a, b, out, m, k, n);
    }
}

/// Parallel panel multiply: splits the rows of `a` across Rayon workers.
fn gemm_parallel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    // Threshold tuned so small kernels avoid fork/join overhead.
    if m * n * k < 1 << 16 || m < 2 {
        gemm_panel(a, b, out, m, k, n);
        return;
    }
    let rows_per_chunk = (m / (rayon::current_num_threads() * 4)).max(8);
    out.par_chunks_mut(rows_per_chunk * n)
        .enumerate()
        .for_each(|(ci, ochunk)| {
            let row0 = ci * rows_per_chunk;
            let rows = ochunk.len() / n;
            gemm_panel(&a[row0 * k..(row0 + rows) * k], b, ochunk, rows, k, n);
        });
}

/// Rows per scratch panel of [`matmul_in_place`]: large enough that the
/// inner GEMM still parallelizes, small enough that the scratch stays a
/// fraction of the buffer being reused.
pub const MATMUL_INPLACE_BLOCK_ROWS: usize = 256;

/// Scratch length (f32 elements) [`matmul_in_place`] needs for an LHS
/// with `m` rows per panel and inner dimension `k`. Memory planners size
/// the scratch slot with this before execution.
pub fn matmul_in_place_scratch_len(m: usize, k: usize) -> usize {
    MATMUL_INPLACE_BLOCK_ROWS.min(m).max(1) * k
}

/// Matrix product overwriting its own LHS buffer: `buf` initially holds
/// the row-major LHS of shape `lhs_shape`, and on return its leading
/// elements hold `lhs @ rhs` (the returned shape). This is what lets a
/// static memory planner run a GEMM chain in a *single* arena slot: out
/// row `r` depends only on in row `r` (plus all of `rhs`), so rows are
/// processed in an order that never overwrites a row before it is read —
/// forward when `n <= k`, reverse when `n > k` — with each block of rows
/// copied into `scratch` just before its output region is written.
///
/// Results equal [`Tensor::matmul`] exactly for finite operands (the
/// panel kernels share accumulation order; only `0·NaN`/`0·Inf` terms
/// could differ across sparsity dispatch, as with the allocating path).
///
/// # Panics
///
/// Panics when ranks/inner dims are invalid, the LHS batch dims are not
/// exactly the broadcast batch dims (an LHS that is itself broadcast
/// would be read more than once and cannot be overwritten), `buf` is
/// shorter than `max(lhs, out)` numel, or `scratch` is shorter than
/// [`matmul_in_place_scratch_len`].
pub fn matmul_in_place(
    buf: &mut [f32],
    lhs_shape: &[usize],
    rhs: &Tensor<f32>,
    scratch: &mut [f32],
) -> Vec<usize> {
    assert!(
        lhs_shape.len() >= 2 && rhs.ndim() >= 2,
        "matmul requires rank >= 2"
    );
    let (m, k) = (
        lhs_shape[lhs_shape.len() - 2],
        lhs_shape[lhs_shape.len() - 1],
    );
    let (k2, n) = (rhs.shape()[rhs.ndim() - 2], rhs.shape()[rhs.ndim() - 1]);
    assert_eq!(
        k,
        k2,
        "matmul inner dims disagree: {lhs_shape:?} x {:?}",
        rhs.shape()
    );
    let batch_a = &lhs_shape[..lhs_shape.len() - 2];
    let batch_b = &rhs.shape()[..rhs.ndim() - 2];
    let batch =
        broadcast_shapes(batch_a, batch_b).unwrap_or_else(|e| panic!("matmul batch dims: {e}"));
    assert_eq!(
        batch, batch_a,
        "matmul_in_place: LHS batch dims must equal the output batch dims"
    );
    let nbatch = numel(&batch);
    let mut oshape = batch.clone();
    oshape.extend_from_slice(&[m, n]);
    assert!(
        buf.len() >= (nbatch * m * k).max(nbatch * m * n),
        "matmul_in_place: buffer too small"
    );
    if m == 0 || n == 0 || nbatch == 0 {
        return oshape;
    }
    let block = MATMUL_INPLACE_BLOCK_ROWS.min(m).max(1);
    assert!(
        scratch.len() >= block * k,
        "matmul_in_place: scratch too small"
    );

    let b = rhs.to_contiguous();
    let sb = b.as_slice();
    let bstr_full = crate::shape::contiguous_strides(b.shape());
    let b_bstr = crate::shape::broadcast_strides(batch_b, &bstr_full[..batch_b.len()], &batch);
    let b_offset = |bi: usize| -> usize {
        let mut rem = bi;
        let mut off = 0isize;
        for (d, &dim) in batch.iter().enumerate().rev() {
            let pos = rem % dim;
            rem /= dim;
            off += pos as isize * b_bstr[d];
        }
        off as usize
    };

    // Output rows grow (n > k): walk backward so a write at row r only
    // clobbers offsets >= r*n > every unread row r' < r (which ends at
    // (r'+1)*k <= r*k <= r*n). Output rows shrink or match (n <= k):
    // walk forward by the mirrored argument.
    let forward = n <= k;
    let nblocks = m.div_ceil(block);
    let mut panel_order: Vec<usize> = (0..nbatch).collect();
    let mut block_order: Vec<usize> = (0..nblocks).collect();
    if !forward {
        panel_order.reverse();
        block_order.reverse();
    }
    for &bi in &panel_order {
        let ob = b_offset(bi);
        let bpanel = &sb[ob..ob + k * n];
        for &blk in &block_order {
            let r0 = blk * block;
            let rows = block.min(m - r0);
            let fr = bi * m + r0; // flat row index across panels
            scratch[..rows * k].copy_from_slice(&buf[fr * k..(fr + rows) * k]);
            let out = &mut buf[fr * n..(fr + rows) * n];
            out.fill(0.0);
            gemm_parallel(&scratch[..rows * k], bpanel, out, rows, k, n);
        }
    }
    oshape
}

impl Tensor<f32> {
    /// Fallible [`Tensor::matmul`]: validates ranks, inner dimensions, and
    /// batch broadcastability up front and reports violations as a typed
    /// [`TensorError`](crate::TensorError) instead of panicking — the
    /// entry point for input-driven callers (e.g. a serving request whose
    /// feature width disagrees with the model).
    pub fn try_matmul(&self, other: &Tensor<f32>) -> Result<Tensor<f32>, crate::TensorError> {
        if self.ndim() < 2 || other.ndim() < 2 {
            return Err(crate::TensorError::RankMismatch {
                expected: 2,
                got: self.ndim().min(other.ndim()),
            });
        }
        let k = self.shape()[self.ndim() - 1];
        let k2 = other.shape()[other.ndim() - 2];
        if k != k2 {
            return Err(crate::TensorError::ShapeMismatch(format!(
                "matmul inner dims disagree: {:?} x {:?}",
                self.shape(),
                other.shape()
            )));
        }
        broadcast_shapes(
            &self.shape()[..self.ndim() - 2],
            &other.shape()[..other.ndim() - 2],
        )?;
        Ok(self.matmul(other))
    }

    /// Matrix product with batch broadcasting.
    ///
    /// Shapes follow PyTorch `matmul` semantics for rank ≥ 2 operands:
    /// the last two dimensions are multiplied (`[..., m, k] × [..., k, n]`)
    /// and the leading batch dimensions are broadcast together.
    ///
    /// # Panics
    ///
    /// Panics if either operand has rank < 2, the inner dimensions
    /// disagree, or the batch dimensions cannot be broadcast.
    pub fn matmul(&self, other: &Tensor<f32>) -> Tensor<f32> {
        let oshape = self.matmul_out_shape(other);
        let mut out = vec![0.0f32; numel(&oshape)];
        self.matmul_impl(other, &mut out);
        Tensor::from_vec(out, &oshape)
    }

    /// [`Tensor::matmul`] writing into a caller-provided destination of
    /// the output's row-major size. The buffer is fully overwritten
    /// (zeroed, then accumulated), so stale contents are irrelevant.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Tensor::matmul`], plus a
    /// wrong-length destination.
    pub fn matmul_into(&self, other: &Tensor<f32>, out: &mut [f32]) {
        let oshape = self.matmul_out_shape(other);
        assert_eq!(
            out.len(),
            numel(&oshape),
            "matmul_into: destination size mismatch"
        );
        out.fill(0.0);
        self.matmul_impl(other, out);
    }

    /// Validates operand ranks/dims and returns the broadcast output shape.
    fn matmul_out_shape(&self, other: &Tensor<f32>) -> Vec<usize> {
        assert!(
            self.ndim() >= 2 && other.ndim() >= 2,
            "matmul requires rank >= 2"
        );
        let (m, k) = (self.shape()[self.ndim() - 2], self.shape()[self.ndim() - 1]);
        let (k2, n) = (
            other.shape()[other.ndim() - 2],
            other.shape()[other.ndim() - 1],
        );
        assert_eq!(
            k,
            k2,
            "matmul inner dims disagree: {:?} x {:?}",
            self.shape(),
            other.shape()
        );

        let batch_a = &self.shape()[..self.ndim() - 2];
        let batch_b = &other.shape()[..other.ndim() - 2];
        let batch =
            broadcast_shapes(batch_a, batch_b).unwrap_or_else(|e| panic!("matmul batch dims: {e}"));
        let mut oshape = batch;
        oshape.extend_from_slice(&[m, n]);
        oshape
    }

    /// Shared GEMM body: accumulates the product into a pre-zeroed `out`.
    fn matmul_impl(&self, other: &Tensor<f32>, out: &mut [f32]) {
        let (m, k) = (self.shape()[self.ndim() - 2], self.shape()[self.ndim() - 1]);
        let n = other.shape()[other.ndim() - 1];
        let batch_a = &self.shape()[..self.ndim() - 2];
        let batch_b = &other.shape()[..other.ndim() - 2];
        let batch =
            broadcast_shapes(batch_a, batch_b).unwrap_or_else(|e| panic!("matmul batch dims: {e}"));
        let nbatch = numel(&batch);

        // Compact each operand in its own shape; broadcast batch dims are
        // resolved through stride arithmetic rather than materializing
        // replicated panels (a batch-shared LHS is the common case in the
        // GEMM tree strategy: X[n,F] against per-tree A[T,F,I]).
        let a = self.to_contiguous();
        let b = other.to_contiguous();
        let (sa, sb) = (a.as_slice(), b.as_slice());
        let astr_full = crate::shape::contiguous_strides(a.shape());
        let bstr_full = crate::shape::contiguous_strides(b.shape());
        let a_bstr = crate::shape::broadcast_strides(batch_a, &astr_full[..batch_a.len()], &batch);
        let b_bstr = crate::shape::broadcast_strides(batch_b, &bstr_full[..batch_b.len()], &batch);
        // Panel offset of batch index `bi` under broadcast strides.
        let offset = |bi: usize, strides: &[isize]| -> usize {
            let mut rem = bi;
            let mut off = 0isize;
            for (d, &dim) in batch.iter().enumerate().rev() {
                let pos = rem % dim;
                rem /= dim;
                off += pos as isize * strides[d];
            }
            off as usize
        };

        if m == 0 || n == 0 {
            // Degenerate output (e.g. an empty serving batch): nothing to
            // compute, and par_chunks_mut rejects a zero chunk size.
        } else if nbatch == 1 {
            gemm_parallel(sa, sb, out, m, k, n);
        } else {
            out.par_chunks_mut(m * n)
                .enumerate()
                .for_each(|(bi, ochunk)| {
                    let oa = offset(bi, &a_bstr);
                    let ob = offset(bi, &b_bstr);
                    gemm_panel(&sa[oa..oa + m * k], &sb[ob..ob + k * n], ochunk, m, k, n);
                });
        }
    }

    /// Squared Euclidean distance matrix via the quadratic-expansion trick
    /// of paper §4.2: `D[i,j] = |x_i|² + |y_j|² − 2·x_i·y_jᵀ`, avoiding the
    /// `n×m×d` broadcast intermediate.
    ///
    /// `self` is `[n, d]`, `other` is `[m, d]`; the result is `[n, m]`.
    pub fn sqdist(&self, other: &Tensor<f32>) -> Tensor<f32> {
        assert_eq!(self.ndim(), 2, "sqdist expects 2-d inputs");
        assert_eq!(other.ndim(), 2, "sqdist expects 2-d inputs");
        assert_eq!(
            self.shape()[1],
            other.shape()[1],
            "sqdist feature dims disagree"
        );
        let xx = self.mul(self).sum_axis(1, true); // [n,1]
        let yy = other
            .mul(other)
            .sum_axis(1, true)
            .reshape(&[1, other.shape()[0]]);
        let xy = self.matmul(&other.transpose(0, 1)); // [n,m]
                                                      // max(0, ·) guards tiny negative values from floating-point
                                                      // cancellation so downstream sqrt stays finite.
        xx.add(&yy).sub(&xy.mul_scalar(2.0)).relu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], s: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(v.to_vec(), s)
    }

    /// Naive reference used to validate the blocked kernel.
    fn naive_matmul(a: &Tensor<f32>, b: &Tensor<f32>) -> Vec<f32> {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    out[i * n + j] += a.get(&[i, kk]) * b.get(&[kk, j]);
                }
            }
        }
        out
    }

    #[test]
    fn identity_multiplication() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(a.matmul(&i).to_vec(), a.to_vec());
        assert_eq!(i.matmul(&a).to_vec(), a.to_vec());
    }

    #[test]
    fn rectangular_matches_naive() {
        let a = Tensor::from_fn(&[3, 5], |i| (i[0] * 5 + i[1]) as f32 * 0.5);
        let b = Tensor::from_fn(&[5, 4], |i| (i[0] as f32 - i[1] as f32) * 0.25);
        assert_eq!(a.matmul(&b).to_vec(), naive_matmul(&a, &b));
    }

    #[test]
    fn large_parallel_matches_naive() {
        let a = Tensor::from_fn(&[64, 48], |i| ((i[0] * 7 + i[1] * 3) % 11) as f32 - 5.0);
        let b = Tensor::from_fn(&[48, 32], |i| ((i[0] * 5 + i[1]) % 7) as f32 - 3.0);
        let got = a.matmul(&b).to_vec();
        let want = naive_matmul(&a, &b);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn batched_matmul_independent_slices() {
        // Two batches: identity and doubling matrix.
        let a = t(&[1.0, 2.0, 3.0, 4.0, 1.0, 1.0, 1.0, 1.0], &[2, 2, 2]);
        let b = t(&[1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn batch_broadcasting_shares_rhs() {
        // lhs [2,1,3] (one row per batch), rhs [3,2] broadcast to both.
        let a = t(&[1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[2, 1, 3]);
        let b = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 1, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims disagree")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::<f32>::zeros(&[2, 3]);
        let b = Tensor::<f32>::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_on_transposed_view() {
        let a = Tensor::from_fn(&[4, 3], |i| (i[0] * 3 + i[1]) as f32);
        let at = a.transpose(0, 1); // [3,4], non-contiguous
        let b = Tensor::from_fn(&[4, 2], |i| (i[0] + i[1]) as f32);
        let c = at.matmul(&b);
        assert_eq!(c.shape(), &[3, 2]);
        // Reference against a compacted transpose.
        let want = at.to_contiguous().matmul(&b).to_vec();
        assert_eq!(c.to_vec(), want);
    }

    /// Runs matmul_in_place against the allocating kernel on one case.
    fn check_in_place(lhs: &Tensor<f32>, rhs: &Tensor<f32>) {
        let want = lhs.matmul(rhs);
        let nd = lhs.ndim();
        let (m, k) = (lhs.shape()[nd - 2], lhs.shape()[nd - 1]);
        let mut buf = lhs.to_vec();
        buf.resize(buf.len().max(want.numel()), 0.0);
        let mut scratch = vec![0.0f32; matmul_in_place_scratch_len(m, k)];
        let oshape = matmul_in_place(&mut buf, lhs.shape(), rhs, &mut scratch);
        assert_eq!(oshape, want.shape());
        assert_eq!(&buf[..want.numel()], want.to_vec().as_slice());
    }

    #[test]
    fn in_place_matches_allocating_2d() {
        // Shrinking (n < k), growing (n > k), and square outputs.
        let a = Tensor::from_fn(&[37, 11], |i| ((i[0] * 7 + i[1] * 3) % 13) as f32 - 6.0);
        for n in [4usize, 11, 23] {
            let b = Tensor::from_fn(&[11, n], |i| ((i[0] * 5 + i[1]) % 9) as f32 - 4.0);
            check_in_place(&a, &b);
        }
    }

    #[test]
    fn in_place_matches_allocating_batched() {
        let a = Tensor::from_fn(&[3, 29, 7], |i| {
            ((i[0] * 31 + i[1] * 7 + i[2]) % 17) as f32 - 8.0
        });
        // Per-batch RHS panels and a batch-shared broadcast RHS.
        let b = Tensor::from_fn(&[3, 7, 12], |i| {
            ((i[0] * 11 + i[1] * 3 + i[2]) % 7) as f32 - 3.0
        });
        check_in_place(&a, &b);
        let shared = Tensor::from_fn(&[7, 5], |i| ((i[0] + i[1] * 2) % 5) as f32 - 2.0);
        check_in_place(&a, &shared);
    }

    #[test]
    fn in_place_spans_multiple_blocks() {
        // More rows than one scratch block, sparse-ish LHS to exercise
        // both panel kernels.
        let a = Tensor::from_fn(&[MATMUL_INPLACE_BLOCK_ROWS * 2 + 17, 6], |i| {
            if (i[0] + i[1]) % 3 == 0 {
                0.0
            } else {
                (i[0] % 7) as f32 - 3.0
            }
        });
        for n in [3usize, 9] {
            let b = Tensor::from_fn(&[6, n], |i| (i[0] as f32 - i[1] as f32) * 0.5);
            check_in_place(&a, &b);
        }
    }

    #[test]
    #[should_panic(expected = "LHS batch dims")]
    fn in_place_rejects_broadcast_lhs() {
        let a = Tensor::<f32>::zeros(&[1, 2, 3]);
        let b = Tensor::<f32>::zeros(&[4, 3, 2]);
        let mut buf = vec![0.0f32; 16];
        let mut scratch = vec![0.0f32; 16];
        matmul_in_place(&mut buf, a.shape(), &b, &mut scratch);
    }

    #[test]
    fn sqdist_matches_broadcast_formula() {
        let x = Tensor::from_fn(&[5, 3], |i| (i[0] as f32) - (i[1] as f32) * 0.5);
        let y = Tensor::from_fn(&[4, 3], |i| (i[1] as f32) * 0.25 + i[0] as f32);
        let d = x.sqdist(&y);
        for i in 0..5 {
            for j in 0..4 {
                let mut want = 0.0f32;
                for f in 0..3 {
                    let diff = x.get(&[i, f]) - y.get(&[j, f]);
                    want += diff * diff;
                }
                assert!((d.get(&[i, j]) - want).abs() < 1e-4);
            }
        }
    }
}
