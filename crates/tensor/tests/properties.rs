//! Property-based tests of the tensor library's algebraic laws:
//! broadcasting semantics against a naive reference, GEMM against the
//! triple loop, gather/index-select invariants, and view/layout
//! round-trips.

use proptest::prelude::*;

use hb_tensor::{broadcast_shapes, Tensor};

/// Strategy: a shape of rank 1–3 with small dims.
fn shape_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

/// Strategy: a pair of broadcast-compatible shapes.
fn compatible_shapes() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    shape_strategy().prop_flat_map(|out| {
        let a = degrade(out.clone());
        let b = degrade(out.clone());
        (a, b)
    })
}

/// Randomly shrinks dims of `out` to 1 or drops leading dims, producing a
/// shape that broadcasts to `out`.
fn degrade(out: Vec<usize>) -> impl Strategy<Value = Vec<usize>> {
    let n = out.len();
    (prop::collection::vec(prop::bool::ANY, n), 0..=n).prop_map(move |(ones, drop)| {
        let mut s: Vec<usize> = out
            .iter()
            .zip(ones.iter())
            .map(|(&d, &one)| if one { 1 } else { d })
            .collect();
        s.drain(..drop);
        if s.is_empty() {
            vec![1]
        } else {
            s
        }
    })
}

fn tensor_of(shape: &[usize], seed: u64) -> Tensor<f32> {
    let mut state = seed | 1;
    Tensor::from_fn(shape, |_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
    })
}

/// Naive broadcast add: index arithmetic straight from the definition.
fn naive_broadcast_add(a: &Tensor<f32>, b: &Tensor<f32>) -> Tensor<f32> {
    let out_shape = broadcast_shapes(a.shape(), b.shape()).unwrap();
    Tensor::from_fn(&out_shape, |idx| {
        let pick = |t: &Tensor<f32>| {
            let offset = out_shape.len() - t.ndim();
            let coord: Vec<usize> = (0..t.ndim())
                .map(|d| {
                    if t.shape()[d] == 1 {
                        0
                    } else {
                        idx[d + offset]
                    }
                })
                .collect();
            t.get(&coord)
        };
        pick(a) + pick(b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn broadcast_add_matches_naive((sa, sb) in compatible_shapes(), seed in any::<u64>()) {
        let a = tensor_of(&sa, seed);
        let b = tensor_of(&sb, seed.wrapping_add(1));
        let got = a.add(&b);
        let want = naive_broadcast_add(&a, &b);
        prop_assert_eq!(got.shape(), want.shape());
        prop_assert_eq!(got.to_vec(), want.to_vec());
    }

    #[test]
    fn add_is_commutative((sa, sb) in compatible_shapes(), seed in any::<u64>()) {
        let a = tensor_of(&sa, seed);
        let b = tensor_of(&sb, seed.wrapping_add(2));
        prop_assert_eq!(a.add(&b).to_vec(), b.add(&a).to_vec());
    }

    #[test]
    fn matmul_matches_triple_loop(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in any::<u64>()
    ) {
        let a = tensor_of(&[m, k], seed);
        let b = tensor_of(&[k, n], seed.wrapping_add(3));
        let got = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.0f32;
                for kk in 0..k {
                    want += a.get(&[i, kk]) * b.get(&[kk, j]);
                }
                prop_assert!((got.get(&[i, j]) - want).abs() <= 1e-4 * (1.0 + want.abs()));
            }
        }
    }

    #[test]
    fn batched_matmul_equals_per_batch(
        t in 1usize..4, m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in any::<u64>()
    ) {
        let a = tensor_of(&[t, m, k], seed);
        let b = tensor_of(&[t, k, n], seed.wrapping_add(4));
        let full = a.matmul(&b);
        for bi in 0..t {
            let sa = a.slice(0, bi, bi + 1).reshape(&[m, k]);
            let sb = b.slice(0, bi, bi + 1).reshape(&[k, n]);
            let want = sa.matmul(&sb);
            let got = full.slice(0, bi, bi + 1).reshape(&[m, n]);
            prop_assert_eq!(got.to_vec(), want.to_vec());
        }
    }

    #[test]
    fn gather_then_constant_index_is_index_select(
        rows in 1usize..6, cols in 2usize..6, pick in 0usize..6, seed in any::<u64>()
    ) {
        let pick = pick % cols;
        let t = tensor_of(&[rows, cols], seed);
        let idx = Tensor::from_vec(vec![pick as i64; rows], &[rows, 1]);
        let g = t.gather(1, &idx);
        let s = t.index_select(1, &[pick]);
        prop_assert_eq!(g.to_vec(), s.to_vec());
    }

    #[test]
    fn transpose_is_involutive(shape in prop::collection::vec(1usize..5, 2..4), seed in any::<u64>()) {
        let t = tensor_of(&shape, seed);
        let back = t.transpose(0, 1).transpose(0, 1);
        prop_assert_eq!(t.to_vec(), back.to_vec());
    }

    #[test]
    fn reshape_roundtrip_preserves_order(shape in shape_strategy(), seed in any::<u64>()) {
        let t = tensor_of(&shape, seed);
        let n = t.numel();
        let flat = t.reshape(&[n]);
        let back = flat.reshape(&shape);
        prop_assert_eq!(t.to_vec(), back.to_vec());
    }

    #[test]
    fn sum_axis_equals_manual(shape in prop::collection::vec(1usize..5, 1..4), axis_pick in any::<usize>(), seed in any::<u64>()) {
        let t = tensor_of(&shape, seed);
        let axis = axis_pick % shape.len();
        let s = t.sum_axis(axis, true);
        // Total mass is preserved by axis summation.
        let total: f32 = t.iter().sum();
        let reduced: f32 = s.iter().sum();
        prop_assert!((total - reduced).abs() < 1e-3 * (1.0 + total.abs()));
    }

    #[test]
    fn where_select_partitions(shape in shape_strategy(), seed in any::<u64>()) {
        let a = tensor_of(&shape, seed);
        let b = tensor_of(&shape, seed.wrapping_add(7));
        let mask = a.lt(&b);
        let w = mask.where_select(&a, &b);
        // Every output element is one of the two candidates (the min).
        let min = a.minimum(&b);
        prop_assert_eq!(w.to_vec(), min.to_vec());
    }

    #[test]
    fn softmax_rows_normalize(rows in 1usize..6, cols in 1usize..6, seed in any::<u64>()) {
        let t = tensor_of(&[rows, cols], seed);
        let s = t.softmax_axis(1);
        for r in 0..rows {
            let sum: f32 = (0..cols).map(|c| s.get(&[r, c])).sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gather_rows_matches_loop(
        b in 1usize..4, nrows in 1usize..5, w in 1usize..4, n in 1usize..5, seed in any::<u64>()
    ) {
        let data = tensor_of(&[b, nrows, w], seed);
        let mut state = seed | 3;
        let idx = Tensor::from_fn(&[b, n], |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % nrows as u64) as i64
        });
        let g = data.gather_rows(&idx);
        for bi in 0..b {
            for i in 0..n {
                let r = idx.get(&[bi, i]) as usize;
                for wi in 0..w {
                    prop_assert_eq!(g.get(&[bi, i, wi]), data.get(&[bi, r, wi]));
                }
            }
        }
    }
}
