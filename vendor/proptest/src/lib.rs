//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: [`Strategy`] with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, `prop::collection::vec`, `prop::bool::ANY`,
//! [`Just`], `any::<T>()`, the [`proptest!`]/[`prop_oneof!`]/
//! [`prop_assert!`]/[`prop_assert_eq!`] macros, and
//! [`ProptestConfig::with_cases`]. Cases are generated from a
//! deterministic seeded RNG; there is no shrinking — a failing case
//! reports its case index and seed instead.

// Vendored stand-in: exempt from the workspace unwrap/expect ban.
#![allow(clippy::disallowed_methods)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::prelude::*;

/// Deterministic per-case random source.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds a fresh generator.
    pub fn new(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A failed test case (produced by `prop_assert!`-style macros).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Records a failure message.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Number-of-cases configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value generator. Unlike real proptest there is no shrink tree; a
/// strategy is just a seeded generator.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Type-erased strategy (what [`prop_oneof!`] arms become).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed strategies (the [`prop_oneof!`] result).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )+
    };
}
range_strategy!(usize, u64, u32, i64, i32, u8, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+))+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )+
    };
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Full-domain strategies for primitive types (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().next_u64()
    }
}
impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().next_u64() as usize
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().next_u32()
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().next_u64() as i64
    }
}
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().next_u64() & 1 == 1
    }
}
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen_range(-1.0e3f32..1.0e3)
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::prelude::*;

    /// Length specification for [`vec`]: an exact count or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing vectors of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng().gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// Uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// The uniform boolean strategy value.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng().next_u64() & 1 == 1
        }
    }
}

/// Re-exports matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runs `cases` seeded cases of a property body. Used by [`proptest!`].
pub fn run_cases(
    name: &str,
    cases: u32,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for case in 0..cases as u64 {
        let seed = 0x5eed_0000_0000_0000u64 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::new(seed);
        if let Err(e) = body(&mut rng) {
            panic!("property `{name}` failed at case {case} (seed {seed:#x}): {e}");
        }
    }
}

/// Defines property tests: each parameter is drawn from its strategy and
/// the body runs for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), config.cases, |__hb_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __hb_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts within a property body, failing the case (not panicking
/// directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..5).prop_flat_map(|a| (Just(a), 0..=a))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(n in 3usize..9, x in -1.5f32..1.5, seed in any::<u64>()) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-1.5..1.5).contains(&x), "x out of range: {}", x);
            let _ = seed;
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(prop::bool::ANY, 1..12)) {
            prop_assert!(!v.is_empty() && v.len() < 12);
        }

        #[test]
        fn flat_map_dependent_pair((a, b) in pair()) {
            prop_assert!(b <= a);
            prop_assert_eq!(a, a);
        }

        #[test]
        fn oneof_hits_all_arms(v in prop::collection::vec(prop_oneof![Just(0usize), Just(1usize)], 64)) {
            prop_assert!(v.iter().any(|&x| x == 0) || v.iter().any(|&x| x == 1));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        crate::run_cases("demo", 10, |rng| {
            let v: u64 = crate::Strategy::generate(&crate::any::<u64>(), rng);
            crate::prop_assert!(v % 2 == 0, "odd value {}", v);
            Ok(())
        });
    }
}
