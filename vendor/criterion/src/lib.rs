//! Minimal offline stand-in for `criterion`.
//!
//! Provides just enough API for the workspace's benches to compile and
//! run under `cargo bench`: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], `b.iter(..)`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a fixed number of timed
//! iterations with the mean printed — no statistics, plots, or reports.

// Vendored stand-in: exempt from the workspace unwrap/expect ban.
#![allow(clippy::disallowed_methods)]

use std::fmt;
use std::time::Instant;

/// Re-export point for `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Identifier combining a function name and a parameter label.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("fn", param)`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warm-up, then timed runs.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count (criterion's statistical sample size is
    /// reinterpreted as plain iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Measurement-time hint; accepted and ignored.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    fn run(&self, label: impl fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size.min(self.criterion.max_iters),
            mean_ns: 0.0,
        };
        f(&mut b);
        println!("{}/{}: {:.1} ns/iter", self.name, label, b.mean_ns);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        self.run(id, f);
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) {
        self.run(id, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    max_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { max_iters: 30 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let mut b = Bencher {
            iters: 10,
            mean_ns: 0.0,
        };
        f(&mut b);
        println!("{}: {:.1} ns/iter", id, b.mean_ns);
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
