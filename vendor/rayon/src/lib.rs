//! Minimal offline stand-in for `rayon`.
//!
//! The build environment has no crates-io access, so this crate implements
//! the subset of the rayon API the workspace uses, backed by
//! `std::thread::scope`:
//!
//! * `slice.par_chunks_mut(n).enumerate().for_each(f)` — the hot kernel
//!   pattern (matmul, element-wise, gather, fused kernels) — runs on a
//!   work-stealing-ish pool of scoped threads pulling chunks from a shared
//!   queue;
//! * `par_iter()` / `into_par_iter()` — degrade to ordinary sequential
//!   iterators (their call sites are either cold or fall-back paths);
//! * [`ThreadPool`] / [`ThreadPoolBuilder`] — `install` scopes a
//!   thread-count override so `num_threads(1)` pools genuinely pin work to
//!   one thread (the benchmark harness relies on this).
//!
//! Panics inside parallel closures propagate to the caller via
//! `std::thread::scope`'s join, preserving `catch_unwind` semantics in
//! tests.

// Vendored stand-in: exempt from the workspace unwrap/expect ban.
#![allow(clippy::disallowed_methods)]

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`];
    /// 0 means "no override".
    static POOL_WIDTH: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel operations will use on this thread.
pub fn current_num_threads() -> usize {
    let forced = POOL_WIDTH.with(Cell::get);
    if forced > 0 {
        forced
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Error building a thread pool (never produced by this stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A logical pool: a thread-count cap that [`ThreadPool::install`] scopes
/// around closures.
#[derive(Debug)]
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count in effect.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let prev = POOL_WIDTH.with(|w| w.replace(self.n));
        struct Reset(usize);
        impl Drop for Reset {
            fn drop(&mut self) {
                POOL_WIDTH.with(|w| w.set(self.0));
            }
        }
        let _reset = Reset(prev);
        f()
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.n
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    n: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` threads (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.n = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = self.n.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        Ok(ThreadPool { n })
    }
}

/// Runs `f` over every item, distributing items across scoped threads.
/// Sequential when one thread suffices. Panics in `f` propagate.
fn run_parallel<I: Send, F: Fn(I) + Send + Sync>(items: Vec<I>, f: F) {
    let workers = current_num_threads().min(items.len());
    if workers <= 1 {
        items.into_iter().for_each(f);
        return;
    }
    let queue = std::sync::Mutex::new(items.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let item = queue.lock().expect("parallel work queue poisoned").next();
                match item {
                    Some(item) => f(item),
                    None => break,
                }
            });
        }
    });
}

/// Parallel mutable chunk iterator (only `enumerate().for_each` and plain
/// `for_each` are supported — the patterns the workspace uses).
pub struct ParChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    /// Applies `f` to every chunk in parallel.
    pub fn for_each<F: Fn(&mut [T]) + Send + Sync>(self, f: F) {
        run_parallel(self.chunks, f);
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T: Send> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Applies `f` to every `(index, chunk)` pair in parallel.
    pub fn for_each<F: Fn((usize, &mut [T])) + Send + Sync>(self, f: F) {
        run_parallel(self.inner.chunks.into_iter().enumerate().collect(), f);
    }
}

/// Slice extension providing `par_chunks_mut` / `par_iter`.
pub trait ParallelSlice<T: Send> {
    /// Splits into chunks of at most `size` for parallel mutation.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;

    /// "Parallel" shared iterator — sequential in this stand-in, which
    /// keeps the std `zip`/`map`/`collect` adapters available unchanged.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T: Send> ParallelSlice<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "par_chunks_mut: chunk size must be non-zero");
        ParChunksMut {
            chunks: self.chunks_mut(size).collect(),
        }
    }

    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// Conversion into a "parallel" iterator — sequential in this stand-in.
pub trait IntoParallelIterator {
    /// The underlying iterator type.
    type Iter: Iterator;

    /// Converts into an iterator usable with std adapters.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = std::ops::Range<usize>;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// The usual glob import.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_touches_every_chunk() {
        let mut data = vec![0usize; 1000];
        data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[999], 1000usize.div_ceil(7));
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(pool.install(super::current_num_threads), 1);
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 64];
            data.par_chunks_mut(4)
                .enumerate()
                .for_each(|(i, _)| assert!(i < 3, "boom"));
        });
        assert!(caught.is_err());
    }
}
