//! Minimal offline stand-in for `rand_distr`: the [`Normal`] distribution
//! (the only one the workspace uses), sampled with the Box–Muller
//! transform.

// Vendored stand-in: exempt from the workspace unwrap/expect ban.
#![allow(clippy::disallowed_methods)]

use rand::RngCore;

/// Types that can be sampled given a random source.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid normal-distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution with the given mean and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

/// Uniform f64 in `(0, 1]` (open at zero so `ln` is finite).
fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (((rng.next_u64() >> 11) + 1) as f64) / (1u64 << 53) as f64
}

/// Float types [`Normal`] can produce. Mirrors `rand_distr::Float` just
/// enough that `Normal::new(0.0f32, 1.0)` infers a unique `F`.
pub trait NormalFloat: Copy {
    /// Lossy conversion from `f64` (the internal sampling precision).
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64`.
    fn to_f64(self) -> f64;
}

impl NormalFloat for f32 {
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl NormalFloat for f64 {
    fn from_f64(v: f64) -> f64 {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
}

impl<F: NormalFloat> Normal<F> {
    /// Creates the distribution; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        let (m, s) = (mean.to_f64(), std_dev.to_f64());
        if s.is_finite() && s >= 0.0 && m.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

impl<F: NormalFloat> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let u1 = unit_open(rng);
        let u2 = unit_open(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn moments_are_roughly_right() {
        let normal = Normal::new(2.0f32, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(f32::NAN, 1.0).is_err());
    }
}
