//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates-io mirror, so
//! this in-tree crate provides the (small) slice of the `rand 0.8` API the
//! workspace actually uses: a seedable deterministic generator, uniform
//! ranges, booleans, slice shuffling, and index sampling. The generator is
//! xoshiro256++ seeded via SplitMix64 — statistically solid for synthetic
//! data generation and property tests, and fully deterministic per seed.

// Vendored stand-in: exempt from the workspace unwrap/expect ban.
#![allow(clippy::disallowed_methods)]

use std::ops::{Range, RangeInclusive};

/// Core random source: 64-bit output.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ state.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A type a uniform sample can be drawn from (ranges of the primitive
/// numeric types the workspace uses).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Primitives that support uniform range sampling. The `SampleRange`
/// impls are generic over this trait (like the real crate's), so a
/// float-literal range like `-0.8..0.8` unifies with the surrounding
/// expression's type instead of defaulting to `f64`.
pub trait SampleUniform: PartialOrd + Copy + std::fmt::Debug {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "cannot sample empty range {:?}..{:?}",
            self.start,
            self.end
        );
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range {lo:?}..={hi:?}");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Uniform f64 in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! float_uniform {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    };
}
float_uniform!(f32);
float_uniform!(f64);

macro_rules! int_uniform {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    };
}
int_uniform!(usize);
int_uniform!(u64);
int_uniform!(u32);
int_uniform!(i64);
int_uniform!(i32);
int_uniform!(u8);

/// Convenience sampling methods, blanket-implemented for any core.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Sequence helpers (`shuffle`, index sampling).
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place shuffling and element choice for slices.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// `rand::seq::index` — sampling distinct indices.
    pub mod index {
        use super::super::{Rng, RngCore};

        /// A set of sampled indices.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Consumes into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Samples `amount` distinct indices from `0..length` via a
        /// partial Fisher–Yates pass.
        pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

/// `rand::rngs` namespace compatibility.
pub mod rngs {
    pub use super::StdRng;
}

/// The common imports.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = rng.gen_range(-0.1..0.1);
            assert!((-0.1..0.1).contains(&f));
            let u: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&u));
            let v: usize = rng.gen_range(2..=4);
            assert!((2..=4).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let idx = super::seq::index::sample(&mut rng, 100, 10).into_vec();
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(idx.iter().all(|&i| i < 100));
    }
}
