//! Chaos suite: every injected fault, on every backend, must surface as
//! a typed error or a degraded-but-correct answer — never a panic,
//! never silent corruption.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use hummingbird::backend::{Backend, FaultPlan, FaultScope};
use hummingbird::compiler::{compile, CompileOptions};
use hummingbird::ml::forest::ForestConfig;
use hummingbird::ml::metrics::allclose;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Pipeline, Targets};
use hummingbird::serve::{
    BreakerConfig, BreakerState, IncidentKind, OpenReason, Rung, ServeConfig, ServeError,
    ServingModel, Supervisor,
};
use hummingbird::tensor::Tensor;

fn fixture() -> (Pipeline, Tensor<f32>) {
    let x = Tensor::from_fn(&[80, 5], |i| ((i[0] * 7 + i[1] * 3) % 13) as f32 * 0.3);
    let y = Targets::Classes((0..80).map(|i| (i % 2) as i64).collect());
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::RandomForestClassifier(ForestConfig {
                n_trees: 5,
                max_depth: 4,
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    (pipe, x)
}

/// Applies the `HB_CHAOS_SEED` override to a fault plan and prints the
/// effective seed once, so any chaos failure can be re-run bit-exact.
fn seeded(plan: FaultPlan) -> FaultPlan {
    static PRINTED: std::sync::Once = std::sync::Once::new();
    let plan = plan.with_env_seed();
    PRINTED.call_once(|| eprintln!("chaos: fault seed = {:#x}", plan.seed));
    plan
}

fn all_faults() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "oom",
            FaultPlan {
                oom: true,
                ..FaultPlan::none()
            },
        ),
        (
            "slow_kernel",
            FaultPlan {
                slow_kernel: Some(Duration::from_micros(50)),
                ..FaultPlan::none()
            },
        ),
        (
            "kernel_error",
            FaultPlan {
                kernel_error: true,
                ..FaultPlan::none()
            },
        ),
        (
            "compile_fail",
            FaultPlan {
                compile_fail: true,
                ..FaultPlan::none()
            },
        ),
        (
            "nan_poison",
            FaultPlan {
                nan_poison: true,
                ..FaultPlan::none()
            },
        ),
    ]
    .into_iter()
    .map(|(name, plan)| (name, seeded(plan)))
    .collect()
}

/// The core chaos matrix: each fault on each backend, straight through
/// the compiler API. Every outcome must be a typed error or an answer
/// matching the imperative reference — observed under `catch_unwind` so
/// a panic anywhere fails the test explicitly.
#[test]
fn every_fault_on_every_backend_is_typed_or_correct() {
    let (pipe, x) = fixture();
    let want = pipe.predict_proba(&x);
    for (name, faults) in all_faults() {
        for backend in Backend::ALL {
            let faults = faults.clone();
            let pipe2 = pipe.clone();
            let x2 = x.clone();
            let want2 = want.clone();
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                let opts = CompileOptions {
                    backend,
                    faults,
                    ..Default::default()
                };
                match compile(&pipe2, &opts) {
                    // compile_fail (Compiled backend only) lands here: a
                    // typed CompileError, which is an acceptable outcome.
                    Err(_) => {}
                    Ok(model) => match model.predict_proba(&x2) {
                        // Typed failure: acceptable.
                        Err(_) => {}
                        // Success: must be correct *or* be the one fault
                        // (nan_poison) that corrupts silently — the raw
                        // compiler API does not detect it; the serving
                        // layer test below proves the runtime does.
                        Ok(out) => {
                            let correct = allclose(&out, &want2, 1e-5, 1e-5);
                            let poisoned = out.iter().all(|v| v.is_nan());
                            assert!(
                                correct || poisoned,
                                "{name}/{}: silently wrong output",
                                backend.label()
                            );
                        }
                    },
                }
            }));
            assert!(outcome.is_ok(), "{name} panicked on {}", backend.label());
        }
    }
}

/// Same matrix through the serving runtime: every request returns a
/// typed error or an answer within 1e-5 of the reference. The ladder
/// means most faults still produce a correct answer from a lower rung.
#[test]
fn serving_layer_survives_every_fault_with_correct_or_typed_outcome() {
    let (pipe, x) = fixture();
    let want = pipe.predict_proba(&x);
    for (name, faults) in all_faults() {
        let pipe2 = pipe.clone();
        let x2 = x.clone();
        let want2 = want.clone();
        let outcome = catch_unwind(AssertUnwindSafe(move || {
            let config = ServeConfig {
                faults,
                max_retries: 1,
                ..ServeConfig::default()
            };
            let server = ServingModel::new(&pipe2, config).expect("non-empty pipeline");
            match server.predict_detailed(&x2) {
                Ok(served) => {
                    assert!(
                        allclose(&served.output, &want2, 1e-5, 1e-5),
                        "{name}: served output diverges from reference (rung {:?})",
                        served.rung
                    );
                }
                Err(e) => {
                    // Typed is fine; but these faults all leave the
                    // reference rung healthy, so they must degrade, not
                    // fail outright.
                    panic!("{name}: expected degraded success, got {e}");
                }
            }
        }));
        assert!(outcome.is_ok(), "{name} panicked in the serving layer");
    }
}

/// Acceptance: with the Compiled backend forced to fail lowering, the
/// server transparently degrades and reports the serving rung.
#[test]
fn degradation_ladder_serves_identical_output_from_lower_rung() {
    let (pipe, x) = fixture();
    let healthy = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
    let baseline = healthy.predict_detailed(&x).unwrap();
    assert_eq!(baseline.rung, Rung::Compiled);

    let config = ServeConfig {
        faults: FaultPlan {
            compile_fail: true,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    };
    let degraded = ServingModel::new(&pipe, config).unwrap();
    assert!(
        !degraded.available_rungs().contains(&Rung::Compiled),
        "compile_fail must knock out the Compiled rung"
    );
    let served = degraded.predict_detailed(&x).unwrap();
    assert_ne!(served.rung, Rung::Compiled);
    assert!(
        allclose(&served.output, &baseline.output, 1e-5, 1e-5),
        "degraded rung {:?} diverges from the healthy answer",
        served.rung
    );
    let stats = degraded.stats();
    assert_eq!(
        stats.served_by(served.rung),
        1,
        "serving rung must be recorded"
    );
}

/// NaN poisoning is silent at the executor; the serving layer must catch
/// it and fall through to the clean reference scorer.
#[test]
fn nan_poisoning_is_detected_and_served_from_reference() {
    let (pipe, x) = fixture();
    let want = pipe.predict_proba(&x);
    let config = ServeConfig {
        faults: FaultPlan {
            nan_poison: true,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    };
    let server = ServingModel::new(&pipe, config).unwrap();
    let served = server.predict_detailed(&x).unwrap();
    assert_eq!(
        served.rung,
        Rung::Reference,
        "all compiled rungs are poisoned"
    );
    assert!(allclose(&served.output, &want, 1e-5, 1e-5));
    assert!(
        served.output.iter().all(|v| v.is_finite()),
        "poison leaked through"
    );
    assert_eq!(server.stats().degraded, 1);
}

/// Slow kernels + a tight deadline must yield DeadlineExceeded, not a
/// late answer.
#[test]
fn slow_kernels_blow_the_deadline_with_a_typed_error() {
    let (pipe, x) = fixture();
    let config = ServeConfig {
        faults: FaultPlan {
            slow_kernel: Some(Duration::from_millis(20)),
            ..FaultPlan::none()
        },
        deadline: Some(Duration::from_millis(5)),
        ..ServeConfig::default()
    };
    let server = ServingModel::new(&pipe, config).unwrap();
    match server.predict(&x) {
        Err(ServeError::DeadlineExceeded { elapsed, deadline }) => {
            assert!(elapsed > deadline);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(server.stats().deadline_misses, 1);
}

/// Transient faults (FirstRuns scope) are absorbed by same-rung retries
/// without degrading.
#[test]
fn transient_kernel_faults_are_retried_on_the_same_rung() {
    let (pipe, x) = fixture();
    let config = ServeConfig {
        faults: FaultPlan {
            kernel_error: true,
            scope: FaultScope::FirstRuns(2),
            ..FaultPlan::none()
        },
        max_retries: 3,
        ..ServeConfig::default()
    };
    let server = ServingModel::new(&pipe, config).unwrap();
    let served = server.predict_detailed(&x).unwrap();
    assert_eq!(
        served.rung,
        Rung::Compiled,
        "retries should keep the best rung"
    );
    assert!(
        served.retries >= 1,
        "the transient fault must cost at least one retry"
    );
    let want = pipe.predict_proba(&x);
    assert!(allclose(&served.output, &want, 1e-5, 1e-5));
    assert_eq!(server.stats().degraded, 0);
}

/// Admission control under concurrency: with capacity 1 and slow
/// kernels, parallel callers see typed Overloaded rejections and the
/// counter drains afterwards.
#[test]
fn overload_rejections_are_typed_and_the_budget_recovers() {
    let (pipe, x) = fixture();
    let config = ServeConfig {
        faults: FaultPlan {
            slow_kernel: Some(Duration::from_millis(10)),
            ..FaultPlan::none()
        },
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let server = std::sync::Arc::new(ServingModel::new(&pipe, config).unwrap());
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let server = server.clone();
            let x = x.clone();
            std::thread::spawn(move || server.predict(&x).map(|_| ()))
        })
        .collect();
    let results: Vec<_> = threads
        .into_iter()
        .map(|t| t.join().expect("no panics"))
        .collect();
    let rejected = results
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Overloaded { .. })))
        .count();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    assert!(ok >= 1, "at least one request must be admitted");
    assert_eq!(
        ok + rejected,
        results.len(),
        "every outcome must be success or Overloaded"
    );
    assert_eq!(server.stats().rejected_overload as usize, rejected);
    // The budget drains: a later request is admitted again.
    assert!(server.predict(&x).is_ok());
}

/// A blown deadline must stop execution *mid-graph* via cooperative
/// cancellation, not just be noticed after a full (slow) run completes.
#[test]
fn deadline_cancellation_is_observed_mid_graph() {
    let (pipe, x) = fixture();
    let config = ServeConfig {
        faults: FaultPlan {
            slow_kernel: Some(Duration::from_millis(20)),
            ..FaultPlan::none()
        },
        deadline: Some(Duration::from_millis(5)),
        ..ServeConfig::default()
    };
    let server = ServingModel::new(&pipe, config).unwrap();
    assert!(matches!(
        server.predict(&x),
        Err(ServeError::DeadlineExceeded { .. })
    ));
    let stats = server.stats();
    assert!(
        stats.cancelled >= 1,
        "the executor must observe the cancel token between nodes, got {stats:?}"
    );
    assert!(server
        .incidents()
        .iter()
        .any(|i| i.kind == IncidentKind::DeadlineCancelled));
}

/// Multi-threaded soak: 8 client threads hammering a supervised pool
/// under several fault plans (plus injected worker panics). Every
/// outcome must be typed, zero workers may die, the drain must not
/// deadlock, and the incident log's sequence numbers must be strictly
/// monotonic.
#[test]
fn concurrent_soak_under_mixed_faults_kills_no_workers() {
    let (pipe, x) = fixture();
    let want = pipe.predict_proba(&x);
    let plans = vec![
        ("clean", FaultPlan::none()),
        (
            "kernel_error",
            FaultPlan {
                kernel_error: true,
                ..FaultPlan::none()
            },
        ),
        (
            "nan_poison",
            FaultPlan {
                nan_poison: true,
                ..FaultPlan::none()
            },
        ),
        (
            "slow+error",
            FaultPlan {
                slow_kernel: Some(Duration::from_micros(50)),
                kernel_error: true,
                ..FaultPlan::none()
            },
        ),
    ];
    for (name, faults) in plans.into_iter().map(|(n, p)| (n, seeded(p))) {
        let config = ServeConfig {
            faults,
            max_retries: 1,
            queue_capacity: 256,
            canary_period: 4,
            ..ServeConfig::default()
        };
        let model = ServingModel::new(&pipe, config).unwrap();
        let sup = std::sync::Arc::new(Supervisor::spawn(model, 4));
        let clients: Vec<_> = (0..8)
            .map(|c| {
                let sup = std::sync::Arc::clone(&sup);
                let x = x.clone();
                let want = want.clone();
                std::thread::spawn(move || {
                    for i in 0..12 {
                        if i == 5 {
                            // A panicking request must come back typed.
                            let err = sup.inject_worker_panic().unwrap_err();
                            assert!(
                                matches!(err, ServeError::Internal(_)),
                                "client {c}: panic pill not typed"
                            );
                            continue;
                        }
                        match sup.predict_detailed(&x) {
                            Ok(served) => {
                                assert!(
                                    allclose(&served.output, &want, 1e-5, 1e-5),
                                    "client {c}: silently wrong output from {:?}",
                                    served.rung
                                );
                            }
                            Err(ServeError::Overloaded { .. }) => {}
                            Err(e) => panic!("client {c}: untyped-ish failure {e}"),
                        }
                    }
                })
            })
            .collect();
        for t in clients {
            t.join()
                .unwrap_or_else(|_| panic!("{name}: client thread panicked"));
        }
        let health = sup.health();
        assert_eq!(
            health.workers_alive, 4,
            "{name}: worker died despite panic isolation"
        );
        let incidents = sup.incidents();
        assert!(
            incidents
                .iter()
                .any(|i| i.kind == IncidentKind::WorkerPanic),
            "{name}: injected panics must be logged"
        );
        let seqs: Vec<u64> = incidents.iter().map(|i| i.seq).collect();
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "{name}: incident sequence not strictly monotonic: {seqs:?}"
        );
        // Graceful, non-deadlocking shutdown (a hang here times the
        // whole test out, which is the failure signal).
        sup.drain();
        assert!(matches!(sup.predict(&x), Err(ServeError::ShuttingDown)));
    }
}

/// Acceptance: a NaN-poisoned rung is caught by the background canary
/// within a few sampled requests, quarantined (visible in the health
/// snapshot), served around via the ladder, and re-admitted by a
/// canary-validated probe once the fault clears.
#[test]
fn canary_quarantines_poisoned_rung_and_probe_recovers_it() {
    let (pipe, x) = fixture();
    let config = ServeConfig {
        faults: FaultPlan {
            nan_poison: true,
            // The fault clears after each executable's first 12 runs, so
            // background probes (which advance the run index) eventually
            // see a clean rung — modelling a transient corrupting
            // deploy that gets rolled back.
            scope: FaultScope::FirstRuns(12),
            ..FaultPlan::none()
        },
        canary_period: 1,
        canary_tolerance: 1e-4,
        watchdog_interval: Duration::from_millis(5),
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(5),
        },
        ..ServeConfig::default()
    };
    let model = ServingModel::new(&pipe, config).unwrap();
    let sup = Supervisor::spawn(model, 2);

    // Phase 1: drive traffic until the canary quarantines the poisoned
    // compiled rung. Clients must never see a NaN in the meantime.
    let start = Instant::now();
    let mut quarantined = false;
    while start.elapsed() < Duration::from_secs(10) {
        if let Ok(served) = sup.predict_detailed(&x) {
            assert!(
                served.output.iter().all(|v| v.is_finite()),
                "poison reached a client via {:?}",
                served.rung
            );
        }
        let health = sup.model().health();
        if health.rungs.iter().any(|r| r.quarantined) {
            quarantined = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(quarantined, "canary never quarantined the poisoned rung");
    let incidents = sup.incidents();
    assert!(incidents
        .iter()
        .any(|i| i.kind == IncidentKind::CanaryDivergence));
    assert!(incidents
        .iter()
        .any(|i| i.kind == IncidentKind::Quarantined));

    // Phase 2: once the fault expires, a background probe (validated
    // against the reference) must lift the quarantine and traffic must
    // climb back to a compiled rung.
    let start = Instant::now();
    let mut recovered = false;
    while start.elapsed() < Duration::from_secs(10) {
        if let Ok(served) = sup.predict_detailed(&x) {
            if served.rung != Rung::Reference {
                recovered = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(3));
    }
    assert!(
        recovered,
        "quarantine was never lifted after the fault cleared"
    );
    assert!(
        sup.incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::BreakerClosed),
        "recovery must be logged as a breaker-close incident"
    );
    sup.drain();
}

/// The watchdog trips rungs that chronically blow the deadline, so later
/// requests skip them instead of burning their budget on a doomed rung.
#[test]
fn watchdog_trips_chronically_slow_rung() {
    let (pipe, x) = fixture();
    let config = ServeConfig {
        faults: FaultPlan {
            slow_kernel: Some(Duration::from_millis(5)),
            ..FaultPlan::none()
        },
        deadline: Some(Duration::from_millis(2)),
        watchdog_interval: Duration::from_millis(15),
        deadline_blow_threshold: 2,
        breaker: BreakerConfig {
            failure_threshold: 3,
            // Long cooldown: once slow-tripped, the rung stays out for
            // the remainder of the test.
            cooldown: Duration::from_secs(60),
        },
        ..ServeConfig::default()
    };
    let model = ServingModel::new(&pipe, config).unwrap();
    let sup = std::sync::Arc::new(Supervisor::spawn(model, 4));

    // Hammer until the watchdog has tripped every slow compiled rung and
    // the ladder lands on the (un-faulted, fast) reference scorer.
    let start = Instant::now();
    let mut reference_serve = false;
    while start.elapsed() < Duration::from_secs(10) && !reference_serve {
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let sup = std::sync::Arc::clone(&sup);
                let x = x.clone();
                std::thread::spawn(move || sup.predict_detailed(&x).ok().map(|s| s.rung))
            })
            .collect();
        for t in clients {
            if let Ok(Some(Rung::Reference)) = t.join() {
                reference_serve = true;
            }
        }
    }
    assert!(
        reference_serve,
        "traffic never settled on the reference rung"
    );
    assert!(
        sup.incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::WatchdogSlowTrip),
        "watchdog never tripped a slow rung"
    );
    let health = sup.model().health();
    let slow_tripped = health.rungs.iter().any(|r| {
        matches!(
            r.breaker,
            Some(BreakerState::Open {
                reason: OpenReason::Slow,
                ..
            })
        )
    });
    assert!(
        slow_tripped,
        "expected at least one Slow-opened breaker, got {:?}",
        health.rungs
    );
    assert!(sup.model().stats().cancelled > 0);
    sup.drain();
}
