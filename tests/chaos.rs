//! Chaos suite: every injected fault, on every backend, must surface as
//! a typed error or a degraded-but-correct answer — never a panic,
//! never silent corruption.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use hummingbird::backend::{Backend, FaultPlan, FaultScope};
use hummingbird::compiler::{compile, CompileOptions};
use hummingbird::ml::forest::ForestConfig;
use hummingbird::ml::metrics::allclose;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Pipeline, Targets};
use hummingbird::serve::{Rung, ServeConfig, ServeError, ServingModel};
use hummingbird::tensor::Tensor;

fn fixture() -> (Pipeline, Tensor<f32>) {
    let x = Tensor::from_fn(&[80, 5], |i| ((i[0] * 7 + i[1] * 3) % 13) as f32 * 0.3);
    let y = Targets::Classes((0..80).map(|i| (i % 2) as i64).collect());
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::RandomForestClassifier(ForestConfig {
                n_trees: 5,
                max_depth: 4,
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    (pipe, x)
}

fn all_faults() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "oom",
            FaultPlan {
                oom: true,
                ..FaultPlan::none()
            },
        ),
        (
            "slow_kernel",
            FaultPlan {
                slow_kernel: Some(Duration::from_micros(50)),
                ..FaultPlan::none()
            },
        ),
        (
            "kernel_error",
            FaultPlan {
                kernel_error: true,
                ..FaultPlan::none()
            },
        ),
        (
            "compile_fail",
            FaultPlan {
                compile_fail: true,
                ..FaultPlan::none()
            },
        ),
        (
            "nan_poison",
            FaultPlan {
                nan_poison: true,
                ..FaultPlan::none()
            },
        ),
    ]
}

/// The core chaos matrix: each fault on each backend, straight through
/// the compiler API. Every outcome must be a typed error or an answer
/// matching the imperative reference — observed under `catch_unwind` so
/// a panic anywhere fails the test explicitly.
#[test]
fn every_fault_on_every_backend_is_typed_or_correct() {
    let (pipe, x) = fixture();
    let want = pipe.predict_proba(&x);
    for (name, faults) in all_faults() {
        for backend in Backend::ALL {
            let faults = faults.clone();
            let pipe2 = pipe.clone();
            let x2 = x.clone();
            let want2 = want.clone();
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                let opts = CompileOptions {
                    backend,
                    faults,
                    ..Default::default()
                };
                match compile(&pipe2, &opts) {
                    // compile_fail (Compiled backend only) lands here: a
                    // typed CompileError, which is an acceptable outcome.
                    Err(_) => {}
                    Ok(model) => match model.predict_proba(&x2) {
                        // Typed failure: acceptable.
                        Err(_) => {}
                        // Success: must be correct *or* be the one fault
                        // (nan_poison) that corrupts silently — the raw
                        // compiler API does not detect it; the serving
                        // layer test below proves the runtime does.
                        Ok(out) => {
                            let correct = allclose(&out, &want2, 1e-5, 1e-5);
                            let poisoned = out.iter().all(|v| v.is_nan());
                            assert!(
                                correct || poisoned,
                                "{name}/{}: silently wrong output",
                                backend.label()
                            );
                        }
                    },
                }
            }));
            assert!(outcome.is_ok(), "{name} panicked on {}", backend.label());
        }
    }
}

/// Same matrix through the serving runtime: every request returns a
/// typed error or an answer within 1e-5 of the reference. The ladder
/// means most faults still produce a correct answer from a lower rung.
#[test]
fn serving_layer_survives_every_fault_with_correct_or_typed_outcome() {
    let (pipe, x) = fixture();
    let want = pipe.predict_proba(&x);
    for (name, faults) in all_faults() {
        let pipe2 = pipe.clone();
        let x2 = x.clone();
        let want2 = want.clone();
        let outcome = catch_unwind(AssertUnwindSafe(move || {
            let config = ServeConfig {
                faults,
                max_retries: 1,
                ..ServeConfig::default()
            };
            let server = ServingModel::new(&pipe2, config).expect("non-empty pipeline");
            match server.predict_detailed(&x2) {
                Ok(served) => {
                    assert!(
                        allclose(&served.output, &want2, 1e-5, 1e-5),
                        "{name}: served output diverges from reference (rung {:?})",
                        served.rung
                    );
                }
                Err(e) => {
                    // Typed is fine; but these faults all leave the
                    // reference rung healthy, so they must degrade, not
                    // fail outright.
                    panic!("{name}: expected degraded success, got {e}");
                }
            }
        }));
        assert!(outcome.is_ok(), "{name} panicked in the serving layer");
    }
}

/// Acceptance: with the Compiled backend forced to fail lowering, the
/// server transparently degrades and reports the serving rung.
#[test]
fn degradation_ladder_serves_identical_output_from_lower_rung() {
    let (pipe, x) = fixture();
    let healthy = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
    let baseline = healthy.predict_detailed(&x).unwrap();
    assert_eq!(baseline.rung, Rung::Compiled);

    let config = ServeConfig {
        faults: FaultPlan {
            compile_fail: true,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    };
    let degraded = ServingModel::new(&pipe, config).unwrap();
    assert!(
        !degraded.available_rungs().contains(&Rung::Compiled),
        "compile_fail must knock out the Compiled rung"
    );
    let served = degraded.predict_detailed(&x).unwrap();
    assert_ne!(served.rung, Rung::Compiled);
    assert!(
        allclose(&served.output, &baseline.output, 1e-5, 1e-5),
        "degraded rung {:?} diverges from the healthy answer",
        served.rung
    );
    let stats = degraded.stats();
    assert_eq!(
        stats.served_by(served.rung),
        1,
        "serving rung must be recorded"
    );
}

/// NaN poisoning is silent at the executor; the serving layer must catch
/// it and fall through to the clean reference scorer.
#[test]
fn nan_poisoning_is_detected_and_served_from_reference() {
    let (pipe, x) = fixture();
    let want = pipe.predict_proba(&x);
    let config = ServeConfig {
        faults: FaultPlan {
            nan_poison: true,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    };
    let server = ServingModel::new(&pipe, config).unwrap();
    let served = server.predict_detailed(&x).unwrap();
    assert_eq!(
        served.rung,
        Rung::Reference,
        "all compiled rungs are poisoned"
    );
    assert!(allclose(&served.output, &want, 1e-5, 1e-5));
    assert!(
        served.output.iter().all(|v| v.is_finite()),
        "poison leaked through"
    );
    assert_eq!(server.stats().degraded, 1);
}

/// Slow kernels + a tight deadline must yield DeadlineExceeded, not a
/// late answer.
#[test]
fn slow_kernels_blow_the_deadline_with_a_typed_error() {
    let (pipe, x) = fixture();
    let config = ServeConfig {
        faults: FaultPlan {
            slow_kernel: Some(Duration::from_millis(20)),
            ..FaultPlan::none()
        },
        deadline: Some(Duration::from_millis(5)),
        ..ServeConfig::default()
    };
    let server = ServingModel::new(&pipe, config).unwrap();
    match server.predict(&x) {
        Err(ServeError::DeadlineExceeded { elapsed, deadline }) => {
            assert!(elapsed > deadline);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(server.stats().deadline_misses, 1);
}

/// Transient faults (FirstRuns scope) are absorbed by same-rung retries
/// without degrading.
#[test]
fn transient_kernel_faults_are_retried_on_the_same_rung() {
    let (pipe, x) = fixture();
    let config = ServeConfig {
        faults: FaultPlan {
            kernel_error: true,
            scope: FaultScope::FirstRuns(2),
            ..FaultPlan::none()
        },
        max_retries: 3,
        ..ServeConfig::default()
    };
    let server = ServingModel::new(&pipe, config).unwrap();
    let served = server.predict_detailed(&x).unwrap();
    assert_eq!(
        served.rung,
        Rung::Compiled,
        "retries should keep the best rung"
    );
    assert!(
        served.retries >= 1,
        "the transient fault must cost at least one retry"
    );
    let want = pipe.predict_proba(&x);
    assert!(allclose(&served.output, &want, 1e-5, 1e-5));
    assert_eq!(server.stats().degraded, 0);
}

/// Admission control under concurrency: with capacity 1 and slow
/// kernels, parallel callers see typed Overloaded rejections and the
/// counter drains afterwards.
#[test]
fn overload_rejections_are_typed_and_the_budget_recovers() {
    let (pipe, x) = fixture();
    let config = ServeConfig {
        faults: FaultPlan {
            slow_kernel: Some(Duration::from_millis(10)),
            ..FaultPlan::none()
        },
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let server = std::sync::Arc::new(ServingModel::new(&pipe, config).unwrap());
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let server = server.clone();
            let x = x.clone();
            std::thread::spawn(move || server.predict(&x).map(|_| ()))
        })
        .collect();
    let results: Vec<_> = threads
        .into_iter()
        .map(|t| t.join().expect("no panics"))
        .collect();
    let rejected = results
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Overloaded { .. })))
        .count();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    assert!(ok >= 1, "at least one request must be admitted");
    assert_eq!(
        ok + rejected,
        results.len(),
        "every outcome must be success or Overloaded"
    );
    assert_eq!(server.stats().rejected_overload as usize, rejected);
    // The budget drains: a later request is admitted again.
    assert!(server.predict(&x).is_ok());
}
