//! Property-based validation of the static shape verifier against the
//! ground truth of eager execution:
//!
//! * **Soundness of inference** — on random well-formed graphs with
//!   concrete declared input shapes, the verifier must accept, and the
//!   shape it infers for *every node* must exactly equal the shape eager
//!   evaluation produces.
//! * **No false negatives** — when a random graph is seeded with a
//!   defect and the verifier rejects it, eager execution of the same
//!   graph must also fail; the verifier never rejects a graph the
//!   runtime would happily execute at its declared shapes.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use hummingbird::backend::{Graph, GraphBuilder, Op, ShapeFact};
use hummingbird::tensor::{DType, DynTensor, Tensor};

/// One randomly chosen op layered onto the graph. Ops that need shape
/// preconditions are applied only when the tracked concrete shape allows
/// them (otherwise the step is skipped), so the base graph is always
/// well-formed by construction.
#[derive(Debug, Clone)]
enum Step {
    AddConst(f32),
    Relu,
    Sigmoid,
    AddSelf,
    MatMul(usize),
    Transpose,
    Unsqueeze(usize),
    SqueezeIfUnit,
    Flatten,
    SplitRows,
    Sum { axis: usize, keepdim: bool },
    Softmax(usize),
    Slice(usize),
    IndexSelect(usize),
    ConcatSelf(usize),
}

/// A defect appended after the random prefix; each is guaranteed to be
/// ill-formed at the graph's concrete shapes.
#[derive(Debug, Clone, Copy)]
enum Defect {
    None,
    ReshapeOffByOne,
    IndexSelectPastEnd,
    BroadcastMismatch,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-2.0f32..2.0).prop_map(Step::AddConst),
        Just(Step::Relu),
        Just(Step::Sigmoid),
        Just(Step::AddSelf),
        (1usize..5).prop_map(Step::MatMul),
        Just(Step::Transpose),
        (0usize..3).prop_map(Step::Unsqueeze),
        Just(Step::SqueezeIfUnit),
        Just(Step::Flatten),
        Just(Step::SplitRows),
        ((0usize..3), any::<bool>()).prop_map(|(axis, keepdim)| Step::Sum { axis, keepdim }),
        (0usize..3).prop_map(Step::Softmax),
        (0usize..3).prop_map(Step::Slice),
        (0usize..4).prop_map(Step::IndexSelect),
        (0usize..3).prop_map(Step::ConcatSelf),
    ]
}

fn defect_strategy() -> impl Strategy<Value = Defect> {
    prop_oneof![
        Just(Defect::None),
        Just(Defect::ReshapeOffByOne),
        Just(Defect::IndexSelectPastEnd),
        Just(Defect::BroadcastMismatch),
    ]
}

/// Deterministic pseudo-random input tensor.
fn input_of(n: usize, m: usize, seed: u64) -> Tensor<f32> {
    let mut state = seed | 1;
    Tensor::from_fn(&[n, m], |_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
    })
}

/// Builds a random well-formed graph, evaluating every node as it goes
/// so shape preconditions are checked against ground truth (not against
/// the inference logic under test). Returns the builder, the current
/// node, and the per-node eager values.
struct Grown {
    builder: GraphBuilder,
    cur: usize,
    vals: Vec<DynTensor>,
}

fn grow(steps: &[Step], input: &Tensor<f32>) -> Grown {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::fixed(input.shape()));
    let mut vals: Vec<DynTensor> = vec![DynTensor::F32(input.clone())];
    let mut cur = x;

    // Pushes `op` over existing nodes and records its eager value.
    fn apply(vals: &mut Vec<DynTensor>, b: &mut GraphBuilder, op: Op, ins: Vec<usize>) -> usize {
        let operands: Vec<&DynTensor> = ins.iter().map(|&i| &vals[i]).collect();
        let v = op.eval(&operands);
        let id = b.push(op, ins);
        assert_eq!(id, vals.len(), "generator lost sync with the builder");
        vals.push(v);
        id
    }
    fn constant(vals: &mut Vec<DynTensor>, b: &mut GraphBuilder, t: Tensor<f32>) -> usize {
        let id = b.constant(t.clone());
        assert_eq!(id, vals.len(), "generator lost sync with the builder");
        vals.push(DynTensor::F32(t));
        id
    }

    for s in steps {
        let shape: Vec<usize> = vals[cur].shape().to_vec();
        let rank = shape.len();
        cur = match s {
            Step::AddConst(c) => apply(&mut vals, &mut b, Op::AddScalar(f64::from(*c)), vec![cur]),
            Step::Relu => apply(&mut vals, &mut b, Op::Relu, vec![cur]),
            Step::Sigmoid => apply(&mut vals, &mut b, Op::Sigmoid, vec![cur]),
            Step::AddSelf => apply(&mut vals, &mut b, Op::Add, vec![cur, cur]),
            Step::MatMul(k) => {
                if rank < 2 {
                    continue;
                }
                let inner = shape[rank - 1];
                let w = constant(
                    &mut vals,
                    &mut b,
                    Tensor::from_fn(&[inner, *k], |i| (i[0] + i[1]) as f32 * 0.1),
                );
                apply(&mut vals, &mut b, Op::MatMul, vec![cur, w])
            }
            Step::Transpose => {
                if rank < 2 {
                    continue;
                }
                apply(
                    &mut vals,
                    &mut b,
                    Op::Transpose(rank - 2, rank - 1),
                    vec![cur],
                )
            }
            Step::Unsqueeze(axis) => {
                let axis = axis % (rank + 1);
                apply(&mut vals, &mut b, Op::Unsqueeze(axis), vec![cur])
            }
            Step::SqueezeIfUnit => match shape.iter().position(|&d| d == 1) {
                Some(axis) => apply(&mut vals, &mut b, Op::Squeeze(axis), vec![cur]),
                None => continue,
            },
            Step::Flatten => apply(&mut vals, &mut b, Op::Reshape { dims: vec![-1] }, vec![cur]),
            Step::SplitRows => {
                if rank == 0 || shape[0] == 0 {
                    continue;
                }
                let d0 = i64::try_from(shape[0]).unwrap_or(1);
                apply(
                    &mut vals,
                    &mut b,
                    Op::Reshape { dims: vec![d0, -1] },
                    vec![cur],
                )
            }
            Step::Sum { axis, keepdim } => {
                if rank == 0 {
                    continue;
                }
                let axis = axis % rank;
                apply(
                    &mut vals,
                    &mut b,
                    Op::Sum {
                        axis,
                        keepdim: *keepdim,
                    },
                    vec![cur],
                )
            }
            Step::Softmax(axis) => {
                if rank == 0 {
                    continue;
                }
                let axis = axis % rank;
                if shape[axis] == 0 {
                    continue;
                }
                apply(&mut vals, &mut b, Op::Softmax { axis }, vec![cur])
            }
            Step::Slice(axis) => {
                if rank == 0 {
                    continue;
                }
                let axis = axis % rank;
                if shape[axis] < 2 {
                    continue;
                }
                apply(
                    &mut vals,
                    &mut b,
                    Op::Slice {
                        axis,
                        start: 0,
                        end: shape[axis] - 1,
                    },
                    vec![cur],
                )
            }
            Step::IndexSelect(axis) => {
                if rank == 0 {
                    continue;
                }
                let axis = axis % rank;
                if shape[axis] == 0 {
                    continue;
                }
                let indices = vec![0, shape[axis] - 1];
                apply(
                    &mut vals,
                    &mut b,
                    Op::IndexSelect {
                        axis,
                        indices: indices.into(),
                    },
                    vec![cur],
                )
            }
            Step::ConcatSelf(axis) => {
                if rank == 0 {
                    continue;
                }
                let axis = axis % rank;
                apply(&mut vals, &mut b, Op::Concat { axis }, vec![cur, cur])
            }
        };
    }
    Grown {
        builder: b,
        cur,
        vals,
    }
}

/// Appends `defect` to the grown graph; returns false when the defect
/// could not be expressed at the current shape (caller treats the graph
/// as clean).
fn inject(g: &mut Grown, defect: Defect) -> bool {
    let shape: Vec<usize> = g.vals[g.cur].shape().to_vec();
    let total: usize = shape.iter().product();
    match defect {
        Defect::None => false,
        Defect::ReshapeOffByOne => {
            let bad = i64::try_from(total + 1).unwrap_or(i64::MAX);
            g.cur = g.builder.push(Op::Reshape { dims: vec![bad] }, vec![g.cur]);
            true
        }
        Defect::IndexSelectPastEnd => {
            if shape.is_empty() {
                return false;
            }
            g.cur = g.builder.index_select(0, g.cur, vec![shape[0]]);
            true
        }
        Defect::BroadcastMismatch => {
            let Some(&last) = shape.last() else {
                return false;
            };
            if last < 2 {
                return false;
            }
            let c = g
                .builder
                .constant(Tensor::from_fn(&[last + 1], |i| i[0] as f32));
            g.cur = g.builder.add(g.cur, c);
            true
        }
    }
}

/// Eagerly evaluates every node; panics exactly where a kernel would.
fn run_all(graph: &Graph, input: &Tensor<f32>) -> Vec<DynTensor> {
    let mut vals: Vec<DynTensor> = Vec::with_capacity(graph.nodes.len());
    for node in &graph.nodes {
        let v = match &node.op {
            Op::Input(_) => DynTensor::F32(input.clone()),
            op => {
                let ins: Vec<&DynTensor> = node.inputs.iter().map(|&i| &vals[i]).collect();
                op.eval(&ins)
            }
        };
        vals.push(v);
    }
    vals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Well-formed graphs: the verifier accepts, and its per-node
    // inferred shape exactly equals the eager-execution shape.
    #[test]
    fn inferred_shapes_match_eager_execution(
        steps in prop::collection::vec(step_strategy(), 1..10),
        n in 1usize..6,
        m in 1usize..5,
        seed in any::<u64>(),
    ) {
        let input = input_of(n, m, seed);
        let mut g = grow(&steps, &input);
        let out = g.cur;
        g.builder.output(out);
        let graph = g.builder.build();
        let sig = graph.verify();
        prop_assert!(sig.is_ok(), "false positive on a well-formed graph: {}", sig.unwrap_err());
        let facts = graph.infer_shapes().map_err(|e| TestCaseError::fail(e.to_string()))?;
        for (id, (fact, val)) in facts.iter().zip(g.vals.iter()).enumerate() {
            prop_assert_eq!(
                fact.clone(),
                ShapeFact::fixed(val.shape()),
                "node {} inferred {} but eager produced {:?}",
                id,
                fact,
                val.shape()
            );
        }
    }

    // Defective graphs: when the verifier rejects, eager execution of
    // the same graph must fail too — rejection is never spurious.
    #[test]
    fn rejected_graphs_also_fail_at_runtime(
        steps in prop::collection::vec(step_strategy(), 1..10),
        defect in defect_strategy(),
        n in 1usize..6,
        m in 1usize..5,
        seed in any::<u64>(),
    ) {
        let input = input_of(n, m, seed);
        let mut g = grow(&steps, &input);
        let defective = inject(&mut g, defect);
        let out = g.cur;
        g.builder.output(out);
        let graph = g.builder.build();
        match graph.verify() {
            Ok(_) => {
                // Accepted graphs must run clean.
                let ran = catch_unwind(AssertUnwindSafe(|| run_all(&graph, &input)));
                prop_assert!(ran.is_ok(), "verifier accepted a graph that fails at runtime");
            }
            Err(e) => {
                // Rejections must be confirmed by the runtime.
                prop_assert!(defective, "verifier rejected a clean graph: {e}");
                let ran = catch_unwind(AssertUnwindSafe(|| run_all(&graph, &input)));
                prop_assert!(
                    ran.is_err(),
                    "verifier rejected ({e}) but eager execution succeeded"
                );
            }
        }
    }
}
