//! Regression tests for latent shape edge cases the static verifier
//! audit surfaced: zero-row batches, zero-size dimensions flowing
//! through broadcasts and reductions, and empty `IndexSelect` index
//! lists. A serving system sees empty batches routinely (e.g. a filter
//! stage upstream dropped every row) — they must score to an empty
//! output, not panic.

use hummingbird::backend::{Backend, Device, Executable, GraphBuilder, ShapeFact};
use hummingbird::compiler::{compile, CompileOptions, TreeStrategy};
use hummingbird::ml::forest::ForestConfig;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Pipeline, Targets};
use hummingbird::tensor::{DType, DynTensor, Tensor};

fn forest_pipeline(n_features: usize) -> Pipeline {
    let n = 80;
    let x = Tensor::from_fn(&[n, n_features], |i| {
        ((i[0] * 7 + i[1] * 3) % 13) as f32 * 0.3
    });
    let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
    fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::RandomForestClassifier(ForestConfig {
                n_trees: 4,
                max_depth: 3,
                ..ForestConfig::default()
            }),
        ],
        &x,
        &y,
    )
}

#[test]
fn zero_row_batch_scores_to_empty_output_on_all_strategies() {
    let pipe = forest_pipeline(5);
    let empty = Tensor::<f32>::from_vec(vec![], &[0, 5]);
    for strategy in [
        TreeStrategy::Gemm,
        TreeStrategy::TreeTraversal,
        TreeStrategy::PerfectTreeTraversal,
    ] {
        for backend in Backend::ALL {
            let opts = CompileOptions {
                backend,
                tree_strategy: strategy,
                ..CompileOptions::default()
            };
            let model = compile(&pipe, &opts).expect("compiles");
            let proba = model.predict_proba(&empty).unwrap_or_else(|e| {
                panic!(
                    "{}/{}: empty batch failed: {e}",
                    strategy.label(),
                    backend.label()
                )
            });
            assert_eq!(
                proba.shape(),
                &[0, 2],
                "{}/{}: wrong empty-batch output shape",
                strategy.label(),
                backend.label()
            );
            let pred = model.predict(&empty).unwrap_or_else(|e| {
                panic!(
                    "{}/{}: empty predict failed: {e}",
                    strategy.label(),
                    backend.label()
                )
            });
            assert_eq!(pred.shape(), &[0]);
        }
    }
}

#[test]
fn zero_row_batch_matches_reference_on_featurizer_chain() {
    let n = 60;
    let x = Tensor::from_fn(&[n, 4], |i| ((i[0] * 5 + i[1]) % 11) as f32 * 0.2);
    let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::Binarizer { threshold: 0.4 },
            OpSpec::GaussianNb,
        ],
        &x,
        &y,
    );
    let model = compile(&pipe, &CompileOptions::default()).expect("compiles");
    let empty = Tensor::<f32>::from_vec(vec![], &[0, 4]);
    let proba = model.predict_proba(&empty).expect("empty batch scores");
    assert_eq!(proba.shape(), &[0, 2]);
}

#[test]
fn verifier_accepts_zero_size_dims_and_inference_is_exact() {
    // A declared zero-width input: every fact downstream carries the 0.
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::fixed(&[0, 3]));
    let r = b.push(hummingbird::backend::Op::Relu, vec![x]);
    let s = b.sum(r, 0, false);
    b.output(s);
    let graph = b.build();
    let facts = graph.infer_shapes().expect("verifies");
    assert_eq!(facts[s as usize], ShapeFact::fixed(&[3]));

    let exe = Executable::new(graph, Backend::Script, Device::cpu());
    let input = DynTensor::F32(Tensor::from_vec(vec![], &[0, 3]));
    let out = exe.run(std::slice::from_ref(&input)).expect("runs");
    // Summing an empty axis yields zeros, matching the inferred shape.
    assert_eq!(out[0].as_f32().shape(), &[3]);
    assert_eq!(out[0].as_f32().to_vec(), vec![0.0; 3]);
}

#[test]
fn zero_size_broadcast_follows_numpy_rules() {
    // [0, 3] + [3] broadcasts to [0, 3]; [0, 3] + [2, 3] is an error the
    // verifier must catch statically.
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::fixed(&[0, 3]));
    let c = b.constant(Tensor::from_vec(vec![1.0f32, 2.0, 3.0], &[3]));
    let s = b.add(x, c);
    b.output(s);
    let graph = b.build();
    assert_eq!(
        graph.infer_shapes().expect("verifies")[s as usize],
        ShapeFact::fixed(&[0, 3])
    );
    let exe = Executable::new(graph, Backend::Eager, Device::cpu());
    let input = DynTensor::F32(Tensor::from_vec(vec![], &[0, 3]));
    let out = exe.run(std::slice::from_ref(&input)).expect("runs");
    assert_eq!(out[0].as_f32().shape(), &[0, 3]);

    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::fixed(&[0, 3]));
    let c = b.constant(Tensor::from_fn(&[2, 3], |_| 1.0f32));
    let s = b.add(x, c);
    b.output(s);
    assert!(
        b.build().verify().is_err(),
        "[0,3] + [2,3] must be rejected (0 broadcasts with nothing but 0 and 1)"
    );
}

#[test]
fn empty_index_select_yields_zero_width() {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
    let s = b.index_select(1, x, vec![]);
    b.output(s);
    let graph = b.build();
    // Statically: [B, 0].
    let facts = graph.infer_shapes().expect("verifies");
    assert_eq!(
        facts[s as usize].to_string(),
        "[B, 0]",
        "empty index list infers zero width"
    );
    // Dynamically: [n, 0], on every backend.
    for backend in Backend::ALL {
        let exe = Executable::new(graph.clone(), backend, Device::cpu());
        let input = DynTensor::F32(Tensor::from_fn(&[3, 4], |i| (i[0] + i[1]) as f32));
        let out = exe
            .run(std::slice::from_ref(&input))
            .unwrap_or_else(|e| panic!("{}: empty index_select failed: {e}", backend.label()));
        assert_eq!(out[0].as_f32().shape(), &[3, 0], "{}", backend.label());
    }
}
