//! Multi-model chaos suite: a supervised [`ModelStore`] hosting dozens
//! of models must confine every fault to the model that caused it.
//!
//! The headline test registers 50+ models, poisons exactly one, and
//! proves the blast radius: the poisoned model degrades (or is
//! quarantined) while every healthy neighbor keeps its rungs, its
//! throughput, and a clean incident record. The rest of the suite
//! drives hot-swap promotion/rollback, fair-share admission under a
//! greedy flood, budget rejections, and eviction — all through
//! `Supervisor::spawn_store`, so the worker pool, health thread, and
//! per-model canaries are live.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hummingbird::backend::{FaultPlan, FaultScope};
use hummingbird::ml::forest::ForestConfig;
use hummingbird::ml::metrics::allclose;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Pipeline, Targets};
use hummingbird::serve::{
    IncidentKind, ModelStore, ServeConfig, ServeError, StoreConfig, Supervisor,
};
use hummingbird::tensor::Tensor;

/// A tiny, cheap-to-compile pipeline; `seed` perturbs the fitted
/// parameters so different models produce different outputs.
fn tiny_fixture(seed: usize) -> (Pipeline, Tensor<f32>) {
    let x = Tensor::from_fn(&[24, 6], |i| {
        ((i[0] * 7 + i[1] * (seed + 3)) % 13) as f32 * 0.25
    });
    let y = Targets::Classes((0..24).map(|i| ((i + seed) % 2) as i64).collect());
    let pipe = fit_pipeline(&[OpSpec::StandardScaler, OpSpec::GaussianNb], &x, &y);
    (pipe, x)
}

/// A forest fixture for the hot-swap tests (distinct architecture, so a
/// shuffled-label retrain genuinely diverges).
fn forest_fixture(label_shift: usize) -> (Pipeline, Tensor<f32>) {
    let x = Tensor::from_fn(&[40, 5], |i| ((i[0] * 7 + i[1] * 3) % 13) as f32 * 0.3);
    let y = Targets::Classes(
        (0..40)
            .map(|i| ((i / (label_shift + 1)) % 2) as i64)
            .collect(),
    );
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::RandomForestClassifier(ForestConfig {
                n_trees: 3,
                max_depth: 3,
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    (pipe, x)
}

/// Incident kinds that implicate a model's own execution health. A
/// healthy model must never be tagged with one of these just because a
/// neighbor is on fire.
fn is_fault_kind(kind: IncidentKind) -> bool {
    matches!(
        kind,
        IncidentKind::WorkerPanic
            | IncidentKind::BreakerOpened
            | IncidentKind::CanaryDivergence
            | IncidentKind::Quarantined
            | IncidentKind::WatchdogSlowTrip
            | IncidentKind::RolledBack
    )
}

/// Acceptance: 50 healthy models plus one nan-poisoned neighbor, all
/// behind one supervised store. The poisoned model is served from its
/// reference rung (never leaking a NaN); every healthy model sustains
/// >= 95% ok-throughput, keeps its compiled rung, and accrues zero
/// fault-kind incidents. No worker dies.
#[test]
fn one_poisoned_model_among_fifty_cannot_hurt_its_neighbors() {
    // Chaos runs are reproducible: HB_CHAOS_SEED overrides this seed
    // (threaded through FaultPlan::with_env_seed below).
    let faults = FaultPlan {
        nan_poison: true,
        seed: 0xC0FFEE,
        ..FaultPlan::none()
    }
    .with_env_seed();
    eprintln!("store_chaos: fault seed = {:#x}", faults.seed);

    let store = Arc::new(ModelStore::new(StoreConfig {
        in_flight: 256,
        canary_fraction: 2,
        ..StoreConfig::default()
    }));
    const N_HEALTHY: usize = 50;
    let mut inputs = Vec::new();
    for m in 0..N_HEALTHY {
        let (pipe, x) = tiny_fixture(m);
        let name = format!("model-{m:02}");
        store
            .register(
                &name,
                &pipe,
                ServeConfig {
                    canary_period: 3,
                    ..ServeConfig::default()
                },
            )
            .unwrap_or_else(|e| panic!("{name}: registration failed: {e}"));
        inputs.push((name, pipe.predict_proba(&x), x));
    }
    let (bad_pipe, bad_x) = tiny_fixture(99);
    store
        .register(
            "poisoned",
            &bad_pipe,
            ServeConfig {
                faults,
                canary_period: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
    assert_eq!(store.len(), N_HEALTHY + 1);

    let sup = Arc::new(Supervisor::spawn_store(Arc::clone(&store), 4));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let sup = Arc::clone(&sup);
            let inputs: Vec<_> = inputs
                .iter()
                .map(|(n, w, x)| (n.clone(), w.clone(), x.clone()))
                .collect();
            let bad_x = bad_x.clone();
            std::thread::spawn(move || {
                let mut ok = vec![0usize; inputs.len()];
                let mut sent = vec![0usize; inputs.len()];
                for round in 0..6 {
                    for (m, (name, want, x)) in inputs.iter().enumerate() {
                        sent[m] += 1;
                        match sup.predict_detailed_for(name, x) {
                            Ok(served) => {
                                assert!(
                                    allclose(&served.output, want, 1e-5, 1e-5),
                                    "client {c}: {name} silently wrong via {:?}",
                                    served.rung
                                );
                                ok[m] += 1;
                            }
                            Err(ServeError::Overloaded { .. }) => {}
                            Err(e) => panic!("client {c}: {name} round {round}: {e}"),
                        }
                    }
                    // The poisoned neighbor takes traffic too — and must
                    // never leak a NaN to a client.
                    if let Ok(served) = sup.predict_detailed_for("poisoned", &bad_x) {
                        assert!(
                            served.output.iter().all(|v| v.is_finite()),
                            "client {c}: poison leaked via {:?}",
                            served.rung
                        );
                    }
                }
                (ok, sent)
            })
        })
        .collect();
    let mut ok = vec![0usize; inputs.len()];
    let mut sent = vec![0usize; inputs.len()];
    for t in clients {
        let (o, s) = t.join().expect("client thread panicked");
        for m in 0..ok.len() {
            ok[m] += o[m];
            sent[m] += s[m];
        }
    }

    // Healthy throughput: every healthy model individually >= 95% ok.
    for (m, (name, _, _)) in inputs.iter().enumerate() {
        assert!(
            ok[m] * 100 >= sent[m] * 95,
            "{name}: only {}/{} ok — a neighbor's fault starved it",
            ok[m],
            sent[m]
        );
    }

    // Fault isolation: the poisoned model degrades alone.
    let health = sup.health();
    assert_eq!(health.workers_alive, 4, "a worker died");
    for mh in &health.models {
        if mh.name == "poisoned" {
            continue;
        }
        assert!(mh.health.ready, "{}: not ready", mh.name);
        assert!(
            !mh.health.degraded_mode,
            "{}: degraded by a neighbor's poison",
            mh.name
        );
    }

    // Incident attribution: every fault-kind incident names the
    // poisoned model; healthy tags stay clean.
    let incidents = store.incidents();
    for i in incidents.iter().filter(|i| is_fault_kind(i.kind)) {
        let tag = i.model.as_deref().unwrap_or("<untagged>");
        assert!(
            tag.starts_with("poisoned@"),
            "cross-model incident leakage: {:?} tagged {tag}: {}",
            i.kind,
            i.detail
        );
    }
    let seqs: Vec<u64> = incidents.iter().map(|i| i.seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "incident sequence not monotonic"
    );
    sup.drain();
}

/// A clean v2 deployed behind a canary fraction auto-promotes after
/// `promote_after` clean comparisons; a divergent v3 auto-rolls-back
/// while the promoted v2 keeps serving correct answers throughout.
#[test]
fn hot_swap_promotes_clean_and_rolls_back_divergent_versions() {
    let store = Arc::new(ModelStore::new(StoreConfig {
        canary_fraction: 2,
        promote_after: 4,
        max_canary_failures: 2,
        ..StoreConfig::default()
    }));
    let (v1, x) = forest_fixture(0);
    let want = v1.predict_proba(&x);
    store
        .register("ranker", &v1, ServeConfig::default())
        .unwrap();
    let sup = Supervisor::spawn_store(Arc::clone(&store), 2);

    // Phase 1: deploy an identical retrain. Canary comparisons are
    // clean, so it must promote within the traffic below.
    let card = store.deploy("ranker", &v1, ServeConfig::default()).unwrap();
    assert_eq!(card.version, 2);
    assert!(store.deploying("ranker"));
    let start = Instant::now();
    while store.version("ranker") != Some(2) {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "v2 never promoted; incidents: {:?}",
            store
                .incidents()
                .iter()
                .map(|i| (i.kind, i.detail.clone()))
                .collect::<Vec<_>>()
        );
        let served = sup.predict_detailed_for("ranker", &x).unwrap();
        assert!(allclose(&served.output, &want, 1e-5, 1e-5));
    }
    assert!(!store.deploying("ranker"));
    assert!(store
        .incidents()
        .iter()
        .any(|i| i.kind == IncidentKind::Promoted && i.model.as_deref() == Some("ranker@v2")));

    // Phase 2: deploy a shuffled-label retrain that genuinely diverges.
    // The canary must catch it and roll back; v2 keeps serving.
    let (v3, _) = forest_fixture(2);
    let card = store.deploy("ranker", &v3, ServeConfig::default()).unwrap();
    assert_eq!(card.version, 3);
    let start = Instant::now();
    while store.deploying("ranker") {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "divergent v3 was never rolled back"
        );
        let served = sup.predict_detailed_for("ranker", &x).unwrap();
        assert!(
            allclose(&served.output, &want, 1e-5, 1e-5),
            "divergent canary answer reached a client via {:?}",
            served.rung
        );
    }
    assert_eq!(store.version("ranker"), Some(2), "rollback must keep v2");
    assert!(store
        .incidents()
        .iter()
        .any(|i| i.kind == IncidentKind::RolledBack && i.model.as_deref() == Some("ranker@v3")));
    // And the store still serves the v2 answer afterwards.
    let served = sup.predict_detailed_for("ranker", &x).unwrap();
    assert!(allclose(&served.output, &want, 1e-5, 1e-5));
    sup.drain();
}

/// Fair-share admission under a greedy flood: a slow model's clients
/// saturating the store-wide in-flight budget must not starve a quiet
/// neighbor — the neighbor's guaranteed slots always admit it.
#[test]
fn greedy_slow_model_cannot_starve_a_quiet_neighbor() {
    let store = Arc::new(ModelStore::new(StoreConfig {
        in_flight: 8,
        canary_fraction: 0,
        ..StoreConfig::default()
    }));
    let (slow_pipe, slow_x) = tiny_fixture(0);
    let (quiet_pipe, quiet_x) = tiny_fixture(1);
    store
        .register(
            "greedy",
            &slow_pipe,
            ServeConfig {
                faults: FaultPlan {
                    slow_kernel: Some(Duration::from_millis(4)),
                    ..FaultPlan::none()
                },
                canary_period: 0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
    store
        .register(
            "quiet",
            &quiet_pipe,
            ServeConfig {
                canary_period: 0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
    let sup = Arc::new(Supervisor::spawn_store(Arc::clone(&store), 4));

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flood: Vec<_> = (0..8)
        .map(|_| {
            let sup = Arc::clone(&sup);
            let x = slow_x.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    // Overloaded is expected for the greedy model itself.
                    let _ = sup.predict_for("greedy", &x);
                }
            })
        })
        .collect();

    // The quiet model keeps its guaranteed slots: sequential requests
    // (never exceeding its guarantee) must all be admitted.
    let mut quiet_ok = 0;
    for i in 0..40 {
        match sup.predict_for("quiet", &quiet_x) {
            Ok(_) => quiet_ok += 1,
            Err(e) => panic!("quiet request {i} refused under flood: {e}"),
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for t in flood {
        t.join().expect("flood thread panicked");
    }
    assert_eq!(quiet_ok, 40);
    assert_eq!(sup.health().workers_alive, 4);
    sup.drain();
}

/// Budget enforcement is typed and leak-free: a refused registration
/// releases every pool reference it interned and charges nothing.
#[test]
fn budget_rejection_is_typed_and_releases_the_pool() {
    let store = ModelStore::new(StoreConfig {
        model_budget: Some(64),
        ..StoreConfig::default()
    });
    let (pipe, _) = tiny_fixture(0);
    let err = store
        .register("huge", &pipe, ServeConfig::default())
        .unwrap_err();
    match err {
        ServeError::BudgetExceeded {
            model,
            requested,
            budget,
        } => {
            assert_eq!(model, "huge");
            assert!(requested > budget);
            assert_eq!(budget, 64);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    assert_eq!(store.len(), 0);
    assert_eq!(
        store.resident_bytes(),
        0,
        "refused charge must be credited back"
    );
    assert_eq!(store.pool_entries(), 0, "refused intern must be released");
    assert!(store
        .incidents()
        .iter()
        .any(|i| i.kind == IncidentKind::BudgetRejected));
}

/// Store-mode request routing stays typed end to end: unknown models,
/// post-eviction requests, and single-model entry points all fail with
/// the right error instead of panicking.
#[test]
fn store_routing_errors_are_typed() {
    let store = Arc::new(ModelStore::new(StoreConfig::default()));
    let (pipe, x) = tiny_fixture(0);
    store.register("m", &pipe, ServeConfig::default()).unwrap();
    let sup = Supervisor::spawn_store(Arc::clone(&store), 2);
    assert!(matches!(
        sup.predict_for("nope", &x),
        Err(ServeError::UnknownModel(name)) if name == "nope"
    ));
    assert!(matches!(
        sup.predict(&x),
        Err(ServeError::BadRequest(msg)) if msg.contains("predict_for")
    ));
    assert!(sup.predict_for("m", &x).is_ok());
    store.evict("m").unwrap();
    assert!(matches!(
        sup.predict_for("m", &x),
        Err(ServeError::UnknownModel(_))
    ));
    assert_eq!(store.resident_bytes(), 0);
    sup.drain();
    assert!(matches!(
        sup.predict_for("m", &x),
        Err(ServeError::ShuttingDown)
    ));
}

/// A transient seeded fault plan is reproducible: the same seed yields
/// the same fault schedule, and `HB_CHAOS_SEED` (when set) overrides it
/// for ad-hoc reruns. The seeded model still serves correct answers —
/// retries and the ladder absorb the scheduled faults.
#[test]
fn seeded_faults_are_reproducible_and_absorbed() {
    let faults = FaultPlan {
        kernel_error: true,
        scope: FaultScope::Seeded { period: 3 },
        seed: 7,
        ..FaultPlan::none()
    }
    .with_env_seed();
    eprintln!("store_chaos: seeded-fault seed = {:#x}", faults.seed);
    let schedule: Vec<bool> = (0..16).map(|i| faults.active_for_run(i)).collect();
    assert_eq!(
        schedule,
        (0..16)
            .map(|i| faults.active_for_run(i))
            .collect::<Vec<bool>>(),
        "seeded schedule must be deterministic"
    );

    let store = ModelStore::new(StoreConfig::default());
    let (pipe, x) = tiny_fixture(3);
    let want = pipe.predict_proba(&x);
    store
        .register(
            "seeded",
            &pipe,
            ServeConfig {
                faults,
                max_retries: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap();
    for _ in 0..12 {
        let served = store.predict_detailed("seeded", &x).unwrap();
        assert!(
            allclose(&served.output, &want, 1e-5, 1e-5),
            "seeded fault corrupted an answer via {:?}",
            served.rung
        );
    }
}
