//! Analysis-directed rewrite acceptance: the interval/taint analysis
//! must actually pay for itself on real compiled pipelines. The
//! sanitizing epilogue `where(isnan(p), p, clamp(p, 0, 1))` that every
//! probability head carries is designed to be statically discharged —
//! Where-elimination on NaN-free forest heads, Clamp-elimination on
//! hard-[0,1] softmax/sigmoid heads — and the rewritten graphs must be
//! bit-identical to the unrewritten ones.

use hummingbird::backend::{Device, Executable, Op};
use hummingbird::compiler::{compile, CompileOptions, TreeStrategy};
use hummingbird::ml::forest::ForestConfig;
use hummingbird::ml::linear::LinearConfig;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Pipeline, Targets};
use hummingbird::tensor::{DynTensor, Tensor};

fn class_data(n: usize, d: usize, classes: usize) -> (Tensor<f32>, Targets) {
    let x = Tensor::from_fn(&[n, d], |i| {
        let cls = (i[0] % classes) as f32;
        cls * 1.1 + ((i[0] * 13 + i[1] * 7) % 11) as f32 * 0.2 - 1.0
    });
    let y = Targets::Classes((0..n).map(|i| (i % classes) as i64).collect());
    (x, y)
}

fn forest_pipe() -> (Pipeline, Tensor<f32>) {
    let (x, y) = class_data(150, 6, 3);
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::RandomForestClassifier(ForestConfig {
                n_trees: 6,
                max_depth: 4,
                ..ForestConfig::default()
            }),
        ],
        &x,
        &y,
    );
    (pipe, x)
}

fn logreg_pipe() -> (Pipeline, Tensor<f32>) {
    let (x, y) = class_data(150, 6, 3);
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::LogisticRegression(LinearConfig {
                epochs: 40,
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    (pipe, x)
}

/// Where-elimination: a forest head's tree comparisons launder NaN, so
/// the analysis proves the probability NaN-free and the epilogue's
/// `where(isnan(p), ..)` collapses to its clamp branch.
#[test]
fn where_elimination_fires_on_forest_classifier() {
    let (pipe, _) = forest_pipe();
    let opts = CompileOptions {
        tree_strategy: TreeStrategy::Gemm,
        ..CompileOptions::default()
    };
    let model = compile(&pipe, &opts).expect("compile");
    let exe = model.executable();
    let stats = exe.opt_stats().expect("compiled backend records stats");
    assert!(
        stats.value_rewrites >= 1,
        "no analysis-directed rewrite fired on the forest head: {stats:?}"
    );
    for node in &exe.graph().nodes {
        assert!(
            !matches!(node.op, Op::Where | Op::IsNan),
            "sanitize epilogue survived: {} still in the optimized graph",
            node.op.label()
        );
    }
}

/// Clamp-elimination: a softmax head is proven inside [0, 1], so the
/// epilogue's `clamp(p, 0, 1)` is the identity and disappears.
#[test]
fn clamp_elimination_fires_on_softmax_head() {
    let (pipe, _) = logreg_pipe();
    let model = compile(&pipe, &CompileOptions::default()).expect("compile");
    let exe = model.executable();
    let stats = exe.opt_stats().expect("compiled backend records stats");
    assert!(
        stats.value_rewrites >= 1,
        "no analysis-directed rewrite fired on the softmax head: {stats:?}"
    );
    for node in &exe.graph().nodes {
        assert!(
            !matches!(node.op, Op::Clamp { .. }),
            "identity clamp survived on a hard-[0,1] softmax head"
        );
    }
}

/// Translation-validation acceptance: the same raw graph lowered with
/// and without value rewrites must produce bit-identical outputs.
#[test]
fn value_rewrites_are_bit_identical() {
    for (name, (pipe, x)) in [("forest", forest_pipe()), ("logreg", logreg_pipe())] {
        // The Script backend lowers without optimizing — its graph is
        // the raw translation both ablation arms start from.
        let raw = compile(
            &pipe,
            &CompileOptions {
                backend: hummingbird::backend::Backend::Script,
                ..CompileOptions::default()
            },
        )
        .expect("compile raw");
        let graph = raw.executable().graph().clone();
        let off = Executable::with_toggles(
            graph.clone(),
            hummingbird::backend::optimize::PassToggles {
                value_rewrites: false,
                ..Default::default()
            },
            Device::cpu(),
        );
        let on = Executable::with_toggles(graph, Default::default(), Device::cpu());
        let stats = on.opt_stats().expect("stats");
        assert!(
            stats.value_rewrites >= 1,
            "{name}: rewrites did not fire: {stats:?}"
        );
        let inputs = [DynTensor::F32(x)];
        let want = off.run(&inputs).expect("run without rewrites");
        let got = on.run(&inputs).expect("run with rewrites");
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            let (g, w) = (g.as_f32(), w.as_f32());
            assert_eq!(g.shape(), w.shape(), "{name}: shape diverged");
            for (a, b) in g.iter().zip(w.iter()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name}: rewritten output not bit-identical ({a} vs {b})"
                );
            }
        }
    }
}
