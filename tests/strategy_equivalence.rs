//! Property-based tests of the core compilation invariant: for *any*
//! tree ensemble, the GEMM, TreeTraversal, and PerfectTreeTraversal
//! strategies produce the same predictions as the imperative reference
//! scorer (paper §4.1 — all three are exact rewritings, not
//! approximations).

use proptest::prelude::*;

use hummingbird::backend::optimize::{cse, dce, fold_constants};
use hummingbird::backend::{fuse::fuse_elementwise, Graph};
use hummingbird::compiler::{compile, CompileOptions, TreeStrategy};
use hummingbird::ml::ensemble::{Aggregation, Link, TreeEnsemble};
use hummingbird::ml::metrics::allclose;
use hummingbird::ml::tree::Tree;
use hummingbird::pipeline::Pipeline;
use hummingbird::tensor::Tensor;

/// Builds a random binary tree of at most `depth` with `value_width`
/// leaf payloads, from a flat randomness vector.
fn random_tree(
    depth: usize,
    n_features: usize,
    value_width: usize,
    rand: &mut impl FnMut() -> f32,
) -> Tree {
    fn build(
        depth: usize,
        n_features: usize,
        value_width: usize,
        rand: &mut impl FnMut() -> f32,
        tree: &mut Tree,
    ) -> i32 {
        let id = tree.left.len();
        tree.left.push(-1);
        tree.right.push(-1);
        tree.feature.push(0);
        tree.threshold.push(0.0);
        for _ in 0..value_width {
            tree.values.push(rand() * 2.0 - 1.0);
        }
        // ~60% chance of splitting while depth remains.
        if depth > 0 && rand() < 0.6 {
            let f = ((rand() * n_features as f32) as usize).min(n_features - 1);
            let l = build(depth - 1, n_features, value_width, rand, tree);
            let r = build(depth - 1, n_features, value_width, rand, tree);
            tree.left[id] = l;
            tree.right[id] = r;
            tree.feature[id] = f as u32;
            tree.threshold[id] = rand() * 2.0 - 1.0;
        }
        id as i32
    }
    let mut tree = Tree {
        left: vec![],
        right: vec![],
        feature: vec![],
        threshold: vec![],
        values: vec![],
        value_width,
    };
    build(depth, n_features, value_width, rand, &mut tree);
    tree
}

fn check_strategies(ensemble: TreeEnsemble, x: Tensor<f32>) {
    let want = ensemble.predict_proba(&x);
    let pipe = Pipeline::from_op(ensemble);
    for strategy in [
        TreeStrategy::Gemm,
        TreeStrategy::TreeTraversal,
        TreeStrategy::PerfectTreeTraversal,
    ] {
        let opts = CompileOptions {
            tree_strategy: strategy,
            optimize_pipeline: false,
            ..Default::default()
        };
        let model = compile(&pipe, &opts).expect("strategies compile");
        // Every strategy's lowered graph must pass the static verifier,
        // and every optimizer pass must preserve its inferred signature
        // (translation validation, run here pass-by-pass).
        assert_passes_preserve_signature(model.executable().graph(), strategy.label());
        let got = model.predict_proba(&x).expect("strategies score");
        prop_assert_eq_ok(&got, &want, strategy.label()).unwrap();
    }
}

/// Re-runs each Compiled-backend pass on `graph` and checks that the
/// statically inferred output signature never changes.
fn assert_passes_preserve_signature(graph: &Graph, label: &str) {
    let want = graph
        .verify()
        .unwrap_or_else(|e| panic!("{label}: compiled graph fails the verifier: {e}"));
    let mut g = graph.clone();
    let passes: [(&str, fn(&Graph) -> Graph); 4] = [
        ("fold", |g| fold_constants(g).0),
        ("cse", |g| cse(g).0),
        ("dce", dce),
        ("fuse", |g| fuse_elementwise(g).0),
    ];
    for (pass, run) in passes {
        g = run(&g);
        let got = g
            .verify()
            .unwrap_or_else(|e| panic!("{label}/{pass}: rewritten graph fails the verifier: {e}"));
        assert_eq!(got, want, "{label}/{pass}: output signature changed");
    }
}

fn prop_assert_eq_ok(got: &Tensor<f32>, want: &Tensor<f32>, label: &str) -> Result<(), String> {
    if allclose(got, want, 1e-4, 1e-4) {
        Ok(())
    } else {
        Err(format!(
            "{label} diverged: got {:?} want {:?}",
            got.to_vec().iter().take(8).collect::<Vec<_>>(),
            want.to_vec().iter().take(8).collect::<Vec<_>>()
        ))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_forest_proba_strategies_agree(
        seed in any::<u64>(),
        n_trees in 1usize..6,
        depth in 0usize..6,
        n_features in 1usize..8,
        n_classes in 2usize..5,
        n_rows in 1usize..40,
    ) {
        let mut state = seed | 1;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32
        };
        let trees: Vec<Tree> = (0..n_trees)
            .map(|_| random_tree(depth, n_features, n_classes, &mut rand))
            .collect();
        let ensemble = TreeEnsemble {
            trees,
            n_features,
            n_classes,
            agg: Aggregation::AverageProba,
        };
        let x = Tensor::from_fn(&[n_rows, n_features], |_| rand() * 2.0 - 1.0);
        check_strategies(ensemble, x);
    }

    #[test]
    fn boosted_ensemble_strategies_agree(
        seed in any::<u64>(),
        rounds in 1usize..4,
        n_groups in 1usize..4,
        depth in 0usize..5,
        n_features in 1usize..6,
        n_rows in 1usize..30,
    ) {
        let mut state = seed | 1;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32
        };
        let trees: Vec<Tree> = (0..rounds * n_groups)
            .map(|_| random_tree(depth, n_features, 1, &mut rand))
            .collect();
        let base: Vec<f32> = (0..n_groups).map(|_| rand() - 0.5).collect();
        let link = match n_groups {
            1 => if rand() < 0.5 { Link::Identity } else { Link::Sigmoid },
            _ => Link::Softmax,
        };
        let n_classes = match link {
            Link::Identity => 1,
            Link::Sigmoid => 2,
            Link::Softmax => n_groups,
        };
        let ensemble = TreeEnsemble {
            trees,
            n_features,
            n_classes,
            agg: Aggregation::SumWithLink { base, link, n_groups },
        };
        let x = Tensor::from_fn(&[n_rows, n_features], |_| rand() * 2.0 - 1.0);
        check_strategies(ensemble, x);
    }

    #[test]
    fn thresholds_at_feature_values_stay_exact(
        seed in any::<u64>(),
        n_rows in 1usize..20,
    ) {
        // Records landing exactly on a threshold exercise the strict `<`
        // convention; all strategies must agree with the reference.
        let mut state = seed | 1;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) % 5) as f32 * 0.25
        };
        let trees: Vec<Tree> = (0..3).map(|_| random_tree(4, 3, 2, &mut rand)).collect();
        let ensemble =
            TreeEnsemble { trees, n_features: 3, n_classes: 2, agg: Aggregation::AverageProba };
        // Features drawn from the same quantized grid as the thresholds.
        let x = Tensor::from_fn(&[n_rows, 3], |_| rand());
        check_strategies(ensemble, x);
    }
}
