//! Failure-injection tests: degenerate and adversarial inputs must fail
//! loudly or behave identically to the imperative path — never corrupt
//! results silently.

use hummingbird::backend::{Backend, Device, DeviceSpec, ExecError};
use hummingbird::compiler::{compile, CompileOptions, HbError, TreeStrategy};
use hummingbird::ml::forest::ForestConfig;
use hummingbird::ml::linear::LinearConfig;
use hummingbird::ml::metrics::allclose;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Targets};
use hummingbird::tensor::Tensor;

fn data(n: usize, d: usize) -> (Tensor<f32>, Targets) {
    let x = Tensor::from_fn(&[n, d], |i| ((i[0] * 7 + i[1] * 3) % 13) as f32 * 0.3);
    let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
    (x, y)
}

#[test]
fn nan_inputs_propagate_identically_without_imputer() {
    // No imputer in the pipeline: NaNs flow through both paths the same
    // way (the affine scaler keeps them NaN).
    let (x, y) = data(60, 4);
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::LogisticRegression(LinearConfig {
                epochs: 30,
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    let mut poisoned = x.to_vec();
    poisoned[5] = f32::NAN;
    let px = Tensor::from_vec(poisoned, x.shape());
    let want = pipe.predict_proba(&px);
    let model = compile(&pipe, &CompileOptions::default()).unwrap();
    let got = model.predict_proba(&px).unwrap();
    // allclose treats NaN == NaN as equal.
    assert!(allclose(&got, &want, 1e-4, 1e-4));
    assert!(
        want.iter().any(|v| v.is_nan()),
        "poison must actually reach the output"
    );
}

#[test]
fn wrong_input_arity_is_rejected() {
    let (x, y) = data(40, 3);
    let pipe = fit_pipeline(&[OpSpec::GaussianNb], &x, &y);
    let model = compile(&pipe, &CompileOptions::default()).unwrap();
    let exe = model.executable();
    assert!(matches!(exe.run(&[]), Err(ExecError::InputCount { .. })));
    let wrong = hummingbird::tensor::DynTensor::I64(Tensor::from_vec(vec![1i64], &[1]));
    assert!(matches!(
        exe.run(&[wrong]),
        Err(ExecError::InputDType { .. })
    ));
}

#[test]
fn simulated_oom_surfaces_as_error_not_corruption() {
    let (x, y) = data(400, 8);
    let pipe = fit_pipeline(
        &[OpSpec::RandomForestClassifier(ForestConfig {
            n_trees: 20,
            max_depth: 6,
            ..Default::default()
        })],
        &x,
        &y,
    );
    let tiny = DeviceSpec {
        mem_bytes: 10_000,
        ..hummingbird::backend::device::K80
    };
    let model = compile(
        &pipe,
        &CompileOptions {
            backend: Backend::Eager,
            device: Device::Sim(tiny),
            ..Default::default()
        },
    )
    .unwrap();
    match model.predict_proba(&x) {
        Err(HbError::Exec(ExecError::DeviceOom { needed, capacity })) => {
            assert!(needed > capacity);
        }
        other => panic!("expected OOM, got {other:?}"),
    }
}

#[test]
fn extreme_feature_values_do_not_crash_strategies() {
    let (x, y) = data(80, 4);
    let pipe = fit_pipeline(
        &[OpSpec::RandomForestClassifier(ForestConfig {
            n_trees: 4,
            max_depth: 4,
            ..Default::default()
        })],
        &x,
        &y,
    );
    // Non-finite inputs are out of scope: the GEMM strategy multiplies
    // features by a 0/1 incidence matrix, and `inf × 0 = NaN` (a real
    // Hummingbird limitation too). Finite extremes must be exact.
    let extreme = Tensor::from_vec(
        vec![
            f32::MAX,
            f32::MIN,
            0.0,
            -0.0, //
            1e38,
            -1e38,
            1e-38,
            -1e-38,
        ],
        &[2, 4],
    );
    let want = pipe.predict_proba(&extreme);
    for strategy in [
        TreeStrategy::Gemm,
        TreeStrategy::TreeTraversal,
        TreeStrategy::PerfectTreeTraversal,
    ] {
        let model = compile(
            &pipe,
            &CompileOptions {
                tree_strategy: strategy,
                ..Default::default()
            },
        )
        .unwrap();
        let got = model.predict_proba(&extreme).unwrap();
        assert!(
            allclose(&got, &want, 1e-4, 1e-4),
            "{} diverges on extreme inputs",
            strategy.label()
        );
    }
}

#[test]
fn forced_ptt_on_deep_trees_fails_cleanly() {
    // Build an artificially deep chain tree via a narrow dataset.
    let n = 400;
    let x = Tensor::from_fn(&[n, 1], |i| i[0] as f32);
    let y = Targets::Classes((0..n).map(|i| ((i / 2) % 2) as i64).collect());
    let pipe = fit_pipeline(
        &[OpSpec::RandomForestClassifier(ForestConfig {
            n_trees: 1,
            max_depth: 40,
            bootstrap: false,
            max_features: 1,
            n_bins: 255,
            min_samples_leaf: 1,
            ..Default::default()
        })],
        &x,
        &y,
    );
    let depth = match &pipe.ops[0] {
        hummingbird::pipeline::FittedOp::TreeEnsemble(e) => e.max_depth(),
        _ => unreachable!(),
    };
    let res = compile(
        &pipe,
        &CompileOptions {
            tree_strategy: TreeStrategy::PerfectTreeTraversal,
            ..Default::default()
        },
    );
    if depth > 14 {
        assert!(res.is_err(), "deep PTT must be rejected, depth={depth}");
        // The Auto heuristic handles the same model fine via TT.
        let auto = compile(&pipe, &CompileOptions::default()).unwrap();
        let tree_report = auto.report.iter().find(|r| r.strategy.is_some()).unwrap();
        assert_eq!(tree_report.strategy, Some(TreeStrategy::TreeTraversal));
    }
}

#[test]
fn empty_feature_selection_does_not_panic() {
    // A selector keeping zero columns is pathological; compilation may
    // fail, but must not panic.
    let (x, y) = data(50, 4);
    let mut pipe = fit_pipeline(&[OpSpec::StandardScaler], &x, &y);
    pipe.push(hummingbird::ml::select::FeatureSelector::from_indices(
        vec![],
        4,
    ));
    let result = std::panic::catch_unwind(|| compile(&pipe, &CompileOptions::default()));
    assert!(result.is_ok(), "compile panicked on empty selection");
}

#[test]
fn unseen_categories_at_serve_time_match_reference_on_all_backends() {
    // OneHotEncoder is fit with handle_unknown="ignore" semantics:
    // categories never seen in training encode to all-zeros. The
    // compiled encoding must reproduce that exactly — not panic, not
    // pick an arbitrary bucket.
    let n = 60;
    let x = Tensor::from_fn(&[n, 3], |i| ((i[0] * 5 + i[1]) % 4) as f32);
    let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
    let pipe = fit_pipeline(
        &[
            OpSpec::OneHotEncoder,
            OpSpec::LogisticRegression(LinearConfig {
                epochs: 20,
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    // 99.0 and -7.5 were never seen during fitting.
    let unseen = Tensor::from_vec(vec![99.0, 1.0, 2.0, -7.5, 0.0, 99.0], &[2, 3]);
    let want = pipe.predict_proba(&unseen);
    for backend in Backend::ALL {
        let model = compile(
            &pipe,
            &CompileOptions {
                backend,
                ..Default::default()
            },
        )
        .unwrap();
        let got = model.predict_proba(&unseen).unwrap();
        assert!(
            allclose(&got, &want, 1e-5, 1e-5),
            "{} diverges from reference on unseen categories",
            backend.label()
        );
    }
}

#[test]
fn empty_batch_is_handled_without_panic_on_all_backends() {
    let (x, y) = data(50, 4);
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::LogisticRegression(LinearConfig {
                epochs: 20,
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    let empty = Tensor::from_vec(Vec::<f32>::new(), &[0, 4]);
    for backend in Backend::ALL {
        let model = compile(
            &pipe,
            &CompileOptions {
                backend,
                ..Default::default()
            },
        )
        .unwrap();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model.predict_proba(&empty)));
        let result = outcome.unwrap_or_else(|_| panic!("{} panicked on n=0", backend.label()));
        // Either a well-formed empty result or a typed error is fine;
        // silent garbage or a panic is not.
        if let Ok(out) = result {
            assert_eq!(
                out.shape()[0],
                0,
                "{} fabricated rows for n=0",
                backend.label()
            );
        }
    }
}

#[test]
fn infinite_inputs_match_reference_on_all_backends() {
    let (x, y) = data(50, 4);
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::LogisticRegression(LinearConfig {
                epochs: 20,
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    let inf = Tensor::from_vec(
        vec![
            f32::INFINITY,
            1.0,
            2.0,
            3.0, //
            0.5,
            f32::NEG_INFINITY,
            1.5,
            2.5,
        ],
        &[2, 4],
    );
    // The imperative path is the spec: ±Inf flows through the affine
    // scaler and the link function deterministically. The compiled
    // graphs must agree bit-for-bit in NaN/Inf placement (allclose
    // treats NaN == NaN as equal).
    let want = pipe.predict_proba(&inf);
    for backend in Backend::ALL {
        let model = compile(
            &pipe,
            &CompileOptions {
                backend,
                ..Default::default()
            },
        )
        .unwrap();
        let got = model.predict_proba(&inf).unwrap();
        assert!(
            allclose(&got, &want, 1e-5, 1e-5),
            "{} diverges from reference on ±Inf inputs",
            backend.label()
        );
    }
}

#[test]
fn mismatched_feature_width_is_a_typed_error_on_all_backends() {
    let (x, y) = data(50, 4);
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::LogisticRegression(LinearConfig {
                epochs: 20,
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    let narrow = Tensor::from_fn(&[3, 3], |i| (i[0] + i[1]) as f32);
    let high_rank = Tensor::from_fn(&[3, 2, 2], |i| (i[0] + i[1] + i[2]) as f32);
    for backend in Backend::ALL {
        let model = compile(
            &pipe,
            &CompileOptions {
                backend,
                ..Default::default()
            },
        )
        .unwrap();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            (
                model.predict_proba(&narrow),
                model.predict_proba(&high_rank),
            )
        }));
        let (w, r) =
            outcome.unwrap_or_else(|_| panic!("{} panicked on bad width", backend.label()));
        assert!(
            matches!(w, Err(HbError::BadRequest(_))),
            "{}: wrong width must be BadRequest, got {w:?}",
            backend.label()
        );
        assert!(
            matches!(r, Err(HbError::BadRequest(_))),
            "{}: wrong rank must be BadRequest, got {r:?}",
            backend.label()
        );
    }
}

#[test]
fn nan_routing_in_trees_is_consistent_across_all_paths() {
    // The paper defers missing-value support in trees (§4.1); the
    // de-facto behavior everywhere in this stack is "NaN compares false,
    // record routes right". Imperative, ONNX-like, and all three
    // compiled strategies must agree on it.
    let (x, y) = data(120, 4);
    let pipe = fit_pipeline(
        &[OpSpec::RandomForestClassifier(ForestConfig {
            n_trees: 6,
            max_depth: 4,
            ..Default::default()
        })],
        &x,
        &y,
    );
    let ensemble = match &pipe.ops[0] {
        hummingbird::pipeline::FittedOp::TreeEnsemble(e) => e.clone(),
        _ => unreachable!(),
    };
    let mut poisoned = x.slice(0, 0, 10).to_contiguous().to_vec();
    for (i, v) in poisoned.iter_mut().enumerate() {
        if i % 3 == 0 {
            *v = f32::NAN;
        }
    }
    let px = Tensor::from_vec(poisoned, &[10, 4]);
    let want = ensemble.predict_proba(&px);
    assert!(
        want.iter().all(|v| !v.is_nan()),
        "trees must absorb NaN inputs"
    );
    let onnx = hummingbird::ml::baselines::OnnxLikeForest::new(&ensemble).predict_batch(&px);
    assert_eq!(onnx.to_vec(), want.to_vec());
    for strategy in [
        TreeStrategy::TreeTraversal,
        TreeStrategy::PerfectTreeTraversal,
    ] {
        let model = compile(
            &pipe,
            &CompileOptions {
                tree_strategy: strategy,
                ..Default::default()
            },
        )
        .unwrap();
        let got = model.predict_proba(&px).unwrap();
        assert!(
            allclose(&got, &want, 1e-4, 1e-4),
            "{} routes NaN differently",
            strategy.label()
        );
    }
    // The GEMM strategy is the exception: `X @ A` turns one NaN feature
    // into NaN sums for *every* internal node of that record (NaN × 0 =
    // NaN), so the whole record routes right at every node instead of
    // only at nodes reading the NaN feature. It must still produce
    // finite probabilities — just potentially different ones — which is
    // why NaN-bearing pipelines need an imputer before a GEMM-compiled
    // tree.
    let gemm = compile(
        &pipe,
        &CompileOptions {
            tree_strategy: TreeStrategy::Gemm,
            ..Default::default()
        },
    )
    .unwrap();
    let got = gemm.predict_proba(&px).unwrap();
    assert!(
        got.iter().all(|v| !v.is_nan()),
        "GEMM leaked NaN into probabilities"
    );
}
