//! Register-LIR gate: the verified register VM must be bit-identical
//! with the stack-bytecode reference interpreter, every fused kernel a
//! real compilation produces must carry verifier-passed LIR with a
//! replay-validated register allocation, and seeded corruptions of a
//! valid LIR program must be rejected with the exact typed
//! [`LirError`](hummingbird::backend::LirError) variant for the defect
//! class (mirroring the plan-audit corruption suite).

use hummingbird::backend::fuse::{FusedKernel, Instr};
use hummingbird::backend::lir::{self, BinOp, LirError, LirOp, LirProgram, RegTy};
use hummingbird::backend::Op;
use hummingbird::compiler::{compile, CompileOptions, TreeStrategy};
use hummingbird::pipeline::{fit_pipeline, OpSpec, Targets};
use hummingbird::tensor::{DType, DynTensor, Tensor};

/// Deterministic xorshift in [0, 1).
fn make_rand(seed: u64) -> impl FnMut() -> f32 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Generates a well-formed random stack program over the full fused-op
/// vocabulary (loads, immediates incl. NaN/±Inf, all binaries, all
/// unaries, select, clamp, pow, immediate forms), tracking stack depth
/// so the program always reduces to exactly one value.
fn random_program(rand: &mut impl FnMut() -> f32, n_inputs: usize) -> Vec<Instr> {
    let target = 3 + (rand() * 14.0) as usize;
    let mut prog: Vec<Instr> = Vec::new();
    let mut depth = 0usize;
    let push = |prog: &mut Vec<Instr>, rand: &mut dyn FnMut() -> f32| {
        if rand() < 0.7 {
            let k = ((rand() * n_inputs as f32) as usize).min(n_inputs - 1);
            prog.push(Instr::Load(k));
        } else {
            let v = match (rand() * 8.0) as usize {
                0 => 0.0,
                1 => 1.0,
                2 => -2.5,
                3 => f32::NAN,
                4 => f32::INFINITY,
                5 => f32::NEG_INFINITY,
                6 => -0.0,
                _ => 3.75,
            };
            prog.push(Instr::Imm(v));
        }
    };
    let binary = |r: f32| match (r * 15.0) as usize {
        0 => Instr::Add,
        1 => Instr::Sub,
        2 => Instr::Mul,
        3 => Instr::Div,
        4 => Instr::Min,
        5 => Instr::Max,
        6 => Instr::Lt,
        7 => Instr::Le,
        8 => Instr::Gt,
        9 => Instr::Ge,
        10 => Instr::Eq,
        11 => Instr::Ne,
        12 => Instr::And,
        13 => Instr::Or,
        _ => Instr::Xor,
    };
    while prog.len() < target || depth != 1 {
        if depth == 0 {
            push(&mut prog, rand);
            depth += 1;
        } else if prog.len() >= target {
            // Past the length budget: only reduce until one value is left.
            if depth == 1 {
                break;
            }
            prog.push(binary(rand()));
            depth -= 1;
        } else {
            let r = rand();
            if r < 0.35 && depth < 4 {
                push(&mut prog, rand);
                depth += 1;
            } else if r < 0.55 && depth >= 2 {
                prog.push(binary(rand()));
                depth -= 1;
            } else if r < 0.62 && depth >= 3 {
                prog.push(Instr::Select);
                depth -= 2;
            } else if r < 0.70 {
                prog.push(match (rand() * 4.0) as usize {
                    0 => Instr::Clamp(-1.5, 2.0),
                    1 => Instr::Pow(2.0),
                    2 => Instr::AddImm(0.5),
                    _ => Instr::MulImm(-1.5),
                });
            } else {
                prog.push(match (rand() * 11.0) as usize {
                    0 => Instr::Not,
                    1 => Instr::Relu,
                    2 => Instr::Sigmoid,
                    3 => Instr::Tanh,
                    4 => Instr::Exp,
                    5 => Instr::Ln,
                    6 => Instr::Sqrt,
                    7 => Instr::Abs,
                    8 => Instr::Neg,
                    9 => Instr::IsNan,
                    _ => Instr::Bool01,
                });
            }
        }
    }
    prog
}

/// A random f32 input tensor seeded with the serving edge cases: zeros,
/// negative zero, NaN, ±Inf, large magnitudes.
fn random_input(rand: &mut impl FnMut() -> f32, n: usize) -> DynTensor {
    let data: Vec<f32> = (0..n)
        .map(|_| {
            let r = rand();
            if r < 0.06 {
                f32::NAN
            } else if r < 0.09 {
                f32::INFINITY
            } else if r < 0.12 {
                f32::NEG_INFINITY
            } else if r < 0.17 {
                -0.0
            } else if r < 0.22 {
                0.0
            } else {
                (rand() * 2.0 - 1.0) * 1e3
            }
        })
        .collect();
    DynTensor::F32(Tensor::from_vec(data, &[n]))
}

/// Executes one kernel through both dispatchers and asserts the outputs
/// are bit-identical (NaN payloads included).
fn assert_bit_identical(kernel: &FusedKernel, inputs: &[&DynTensor], label: &str) {
    let vm_out = kernel.eval(inputs);
    let stack_out = kernel.with_stack_dispatch().eval(inputs);
    match (&vm_out, &stack_out) {
        (DynTensor::F32(a), DynTensor::F32(b)) => {
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{label}: register VM and stack interpreter diverged at element {i}: \
                     {x} vs {y}"
                );
            }
        }
        (DynTensor::Bool(a), DynTensor::Bool(b)) => {
            assert_eq!(a.to_vec(), b.to_vec(), "{label}: bool outputs diverged");
        }
        other => panic!("{label}: dispatchers returned different dtypes: {other:?}"),
    }
}

/// The randomized differential suite: hundreds of random stack programs,
/// lowered to verified LIR and executed by the register VM, must stay
/// bit-identical with the stack-dispatch reference over inputs seeded
/// with NaN, ±Inf, and signed zeros.
#[test]
fn random_programs_execute_bit_identically_on_both_dispatchers() {
    let mut rand = make_rand(0x11c0_0001);
    let n = 197; // non-multiple of the 64-wide block: exercises the tail
    for case in 0..300 {
        let n_inputs = 1 + (rand() * 3.0) as usize;
        let program = random_program(&mut rand, n_inputs);
        let kernel =
            FusedKernel::try_new(n_inputs, DType::F32, program.clone()).unwrap_or_else(|e| {
                panic!("case {case}: kernel construction failed: {e}\n{program:?}")
            });
        let inputs: Vec<DynTensor> = (0..n_inputs).map(|_| random_input(&mut rand, n)).collect();
        let refs: Vec<&DynTensor> = inputs.iter().collect();
        assert_bit_identical(&kernel, &refs, &format!("case {case} ({program:?})"));
    }
}

/// Bool-dtype outputs go through the same dispatch pair: a predicate
/// program writing a bool tensor must agree between dispatchers too.
#[test]
fn bool_output_kernels_agree_between_dispatchers() {
    let mut rand = make_rand(0x11c0_0002);
    let program = vec![Instr::Load(0), Instr::Load(1), Instr::Lt];
    let kernel = FusedKernel::try_new(2, DType::Bool, program)
        .unwrap_or_else(|e| panic!("kernel construction failed: {e}"));
    let a = random_input(&mut rand, 131);
    let b = random_input(&mut rand, 131);
    assert_bit_identical(&kernel, &[&a, &b], "bool predicate");
}

/// The maximum/minimum NaN-laundering asymmetry must survive lowering:
/// `f32::max(NaN, x) == x` but `f32::max(x, NaN) == x` as well, while
/// `max(NaN, NaN)` stays NaN — and crucially the *operand order* the
/// stack machine evaluates in must be preserved by the LIR, or constant
/// propagation through `Min`/`Max` immediates would flip which operand
/// launders. Checked element-by-element against the scalar std
/// semantics on both dispatchers.
#[test]
fn minmax_nan_laundering_asymmetry_survives_lowering() {
    let a_vals = [f32::NAN, 5.0, f32::NAN, -0.0, f32::INFINITY];
    let b_vals = [5.0, f32::NAN, f32::NAN, 0.0, f32::NEG_INFINITY];
    let a = DynTensor::F32(Tensor::from_vec(a_vals.to_vec(), &[5]));
    let b = DynTensor::F32(Tensor::from_vec(b_vals.to_vec(), &[5]));
    for (name, ins, reference) in [
        ("max", Instr::Max, f32::max as fn(f32, f32) -> f32),
        ("min", Instr::Min, f32::min as fn(f32, f32) -> f32),
    ] {
        let kernel = FusedKernel::try_new(2, DType::F32, vec![Instr::Load(0), Instr::Load(1), ins])
            .unwrap_or_else(|e| panic!("{name} kernel failed: {e}"));
        assert_bit_identical(&kernel, &[&a, &b], name);
        let out = kernel.eval(&[&a, &b]);
        let DynTensor::F32(out) = out else {
            panic!("{name}: expected f32 output")
        };
        for i in 0..5 {
            let want = reference(a_vals[i], b_vals[i]);
            let got = out.to_vec()[i];
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{name}: element {i}: VM computed {got}, std scalar computes {want}"
            );
        }
        // The laundering itself: NaN in one operand yields the other.
        assert!(!out.to_vec()[0].is_nan(), "{name}(NaN, 5.0) must launder");
        assert!(!out.to_vec()[1].is_nan(), "{name}(5.0, NaN) must launder");
        assert!(out.to_vec()[2].is_nan(), "{name}(NaN, NaN) must stay NaN");
    }
}

/// Constant-immediate `Min`/`Max` forms (the ones constant propagation
/// rewrites into `BinImm`/`ImmBin`) must keep the immediate on the side
/// the stack machine had it.
#[test]
fn constant_minmax_keeps_operand_order_through_optimization() {
    let x = DynTensor::F32(Tensor::from_vec(vec![f32::NAN, 2.0, -7.0], &[3]));
    // max(5.0, x): immediate on the left.
    let left = FusedKernel::try_new(
        1,
        DType::F32,
        vec![Instr::Imm(5.0), Instr::Load(0), Instr::Max],
    )
    .unwrap_or_else(|e| panic!("left kernel: {e}"));
    // max(x, 5.0): immediate on the right.
    let right = FusedKernel::try_new(
        1,
        DType::F32,
        vec![Instr::Load(0), Instr::Imm(5.0), Instr::Max],
    )
    .unwrap_or_else(|e| panic!("right kernel: {e}"));
    assert_bit_identical(&left, &[&x], "imm-left max");
    assert_bit_identical(&right, &[&x], "imm-right max");
    let DynTensor::F32(l) = left.eval(&[&x]) else {
        panic!("f32")
    };
    let DynTensor::F32(r) = right.eval(&[&x]) else {
        panic!("f32")
    };
    assert_eq!(l.to_vec()[0].to_bits(), f32::max(5.0, f32::NAN).to_bits());
    assert_eq!(r.to_vec()[0].to_bits(), f32::max(f32::NAN, 5.0).to_bits());
    assert_eq!(l.to_vec()[1], 5.0);
    assert_eq!(r.to_vec()[2], 5.0);
}

/// A valid lowered program for the corruption tests: `(x + y) * 2`.
fn pristine_program() -> LirProgram {
    let p = LirProgram::lower(
        &[
            Instr::Load(0),
            Instr::Load(1),
            Instr::Add,
            Instr::MulImm(2.0),
        ],
        2,
        DType::F32,
    )
    .unwrap_or_else(|e| panic!("lowering failed: {e}"));
    p.verify()
        .unwrap_or_else(|e| panic!("pristine program must verify: {e}"));
    p
}

/// Seeded corruption: an operand rewritten to read a register only
/// defined later must be rejected as use-before-def.
#[test]
fn verifier_rejects_use_before_def() {
    let mut p = pristine_program();
    p.instrs[2].op = LirOp::Bin(BinOp::Add, 0, 3);
    assert_eq!(
        p.verify(),
        Err(LirError::UseBeforeDef { instr: 2, vreg: 3 }),
        "forward operand reference must be use-before-def"
    );
}

/// Seeded corruption: an operand register outside the program's
/// register space entirely.
#[test]
fn verifier_rejects_register_out_of_range() {
    let mut p = pristine_program();
    p.instrs[3].op = LirOp::BinImm(BinOp::Mul, 99, 2.0);
    assert_eq!(
        p.verify(),
        Err(LirError::OperandOutOfRange { instr: 3, vreg: 99 }),
        "register index past the program must be out-of-range"
    );
}

/// Seeded corruption: a forged boolean refinement (an Add claiming its
/// result is exactly 0/1) must be caught by the declared-vs-inferred
/// type check.
#[test]
fn verifier_rejects_type_confused_operand() {
    let mut p = pristine_program();
    p.instrs[2].ty = RegTy::Bool;
    assert_eq!(
        p.verify(),
        Err(LirError::TypeConfused {
            instr: 2,
            declared: RegTy::Bool,
            inferred: RegTy::F32
        }),
        "a non-predicate claiming bool01 must be type-confused"
    );
}

/// Seeded corruption: pointing the program's output at a register no
/// instruction defines.
#[test]
fn verifier_rejects_dead_output_register() {
    let mut p = pristine_program();
    p.out = 17;
    assert!(
        matches!(p.verify(), Err(LirError::DeadOutput { out: 17, .. })),
        "an undefined output register must be a dead output"
    );
}

/// Seeded corruption one layer down: a validated register allocation
/// whose destination is redirected onto a live operand's physical
/// register must fail the independent allocation replay.
#[test]
fn alloc_replay_rejects_corrupted_location_table() {
    let (opt, _) = lir::opt::optimize(&pristine_program());
    let exec = lir::opt::allocate(&opt).unwrap_or_else(|e| panic!("allocate: {e}"));
    lir::opt::verify_alloc(&opt, &exec).unwrap_or_else(|e| panic!("pristine alloc: {e}"));
    let mut bad = exec.clone();
    // Point every compute result at physical register 0 — some live
    // value must get clobbered or aliased.
    for loc in bad.loc.iter_mut() {
        if let lir::opt::Loc::Reg(r) = loc {
            *r = 0;
        }
    }
    assert!(
        lir::opt::verify_alloc(&opt, &bad).is_err(),
        "an allocation funneling every value through one register must be rejected"
    );
}

/// Pipeline-wide gate: every fused kernel in real compiled models — all
/// three tree strategies plus an optimized end-to-end featurizer
/// pipeline — carries LIR that re-verifies offline, an allocation that
/// passes the independent replay, and a register file inside the hard
/// cap.
#[test]
fn every_compiled_fused_kernel_carries_verified_lir() {
    let n = 120;
    let d = 8;
    let x = Tensor::from_fn(&[n, d], |i| {
        let cls = (i[0] % 3) as f32;
        cls * 1.3 + ((i[0] * 13 + i[1] * 7) % 11) as f32 * 0.25 - 1.0
    });
    let y = Targets::Classes((0..n).map(|i| (i % 3) as i64).collect());
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::RandomForestClassifier(Default::default()),
        ],
        &x,
        &y,
    );
    let mut total_fused = 0usize;
    for strategy in [
        TreeStrategy::Gemm,
        TreeStrategy::TreeTraversal,
        TreeStrategy::PerfectTreeTraversal,
        TreeStrategy::Auto,
    ] {
        let opts = CompileOptions {
            tree_strategy: strategy,
            ..Default::default()
        };
        let model = compile(&pipe, &opts).expect("compile");
        for (id, node) in model.executable().graph().nodes.iter().enumerate() {
            let Op::Fused(k) = &node.op else { continue };
            total_fused += 1;
            k.lir().verify().unwrap_or_else(|e| {
                panic!(
                    "{}: node {id}: LIR fails re-verification: {e}",
                    strategy.label()
                )
            });
            lir::opt::verify_alloc(k.lir(), k.lir_exec()).unwrap_or_else(|e| {
                panic!(
                    "{}: node {id}: allocation fails replay: {e}",
                    strategy.label()
                )
            });
            assert!(
                k.lir_exec().n_regs <= lir::REG_FILE,
                "{}: node {id}: register file {} exceeds the {} cap",
                strategy.label(),
                k.lir_exec().n_regs,
                lir::REG_FILE
            );
        }
    }
    assert!(
        total_fused > 0,
        "compiled forests must produce fused kernels for this gate to mean anything"
    );
}
