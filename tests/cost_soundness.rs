//! Cost-certification soundness gate (`hb-backend::cost`).
//!
//! The honesty rule under test: the certificate's roofline *counters*
//! (flops, element traversals, bytes moved, kernel launches, arena
//! footprint) are sound and exact — a real execution of the certified
//! graph must reproduce every one of them bit-for-bit, because both
//! sides are the same integer sums (well below 2^53) evaluated two
//! ways. The wall-clock *envelope* is weaker by design: it is
//! calibrated from a per-kernel-class microbench table, so the gate is
//! `measured ∈ [lo·(1−ε), hi·(1+ε)]` with ε = 0.5, checked across a
//! model zoo at every certification bucket.

use hummingbird::backend::{cost, Backend, COST_BUCKETS};
use hummingbird::compiler::{compile, CompileOptions, CompiledModel, TreeStrategy};
use hummingbird::ml::forest::ForestConfig;
use hummingbird::ml::gbdt::GbdtConfig;
use hummingbird::ml::linear::LinearConfig;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Targets};
use hummingbird::tensor::{DynTensor, Tensor};

const WIDTH: usize = 8;
const ROWS: usize = 256; // == largest COST_BUCKETS entry

fn features() -> Tensor<f32> {
    Tensor::from_fn(&[ROWS, WIDTH], |i| {
        let cls = (i[0] % 3) as f32;
        cls * 1.1 + ((i[0] * 13 + i[1] * 7) % 11) as f32 * 0.25 - 1.0
    })
}

fn labels() -> Targets {
    Targets::Classes((0..ROWS).map(|i| (i % 3) as i64).collect())
}

/// The zoo: every fitted-operator family the compiler lowers through a
/// distinct kernel mix — forests on all three tree strategies (gather
/// vs gemm pipelines), boosted trees, a linear model (pure gemm +
/// transcendental), and Gaussian naive Bayes (reduce-heavy).
fn zoo() -> Vec<(String, CompiledModel)> {
    let x = features();
    let y = labels();
    let forest = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::RandomForestClassifier(ForestConfig {
                n_trees: 8,
                max_depth: 5,
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    let gbdt = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::GbdtClassifier(GbdtConfig {
                n_rounds: 6,
                max_depth: 4,
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    let logistic = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::LogisticRegression(LinearConfig::default()),
        ],
        &x,
        &y,
    );
    let nb = fit_pipeline(&[OpSpec::StandardScaler, OpSpec::GaussianNb], &x, &y);

    let compile_named = |name: &str, pipe, strategy| {
        let opts = CompileOptions {
            backend: Backend::Compiled,
            tree_strategy: strategy,
            expected_batch: ROWS,
            optimize_pipeline: false,
            ..Default::default()
        };
        let model = compile(pipe, &opts).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
        (name.to_string(), model)
    };

    vec![
        compile_named("forest/gemm", &forest, TreeStrategy::Gemm),
        compile_named("forest/tt", &forest, TreeStrategy::TreeTraversal),
        compile_named("forest/ptt", &forest, TreeStrategy::PerfectTreeTraversal),
        compile_named("gbdt/auto", &gbdt, TreeStrategy::Auto),
        compile_named("logistic", &logistic, TreeStrategy::Auto),
        compile_named("gaussian-nb", &nb, TreeStrategy::Auto),
    ]
}

fn input_at(batch: usize) -> DynTensor {
    DynTensor::F32(features().slice(0, 0, batch).to_contiguous())
}

/// Counters are sound and exact: a real run of every zoo model at every
/// certification bucket reproduces the certified flop / traversal /
/// byte / launch counts bit-for-bit, and the planner's arena equals the
/// certified footprint (which the cert already pushed through the
/// independent plan auditor).
#[test]
fn certified_counters_and_arena_match_measured_across_zoo() {
    for (name, model) in zoo() {
        let exec = model.executable();
        let certs = cost::cost_certs(exec.graph(), &COST_BUCKETS)
            .unwrap_or_else(|e| panic!("{name}: not certifiable: {e}"));
        assert_eq!(certs.len(), COST_BUCKETS.len(), "{name}: bucket coverage");
        for cert in &certs {
            let xb = input_at(cert.batch);
            let (_, stats) = exec
                .run_with_stats(std::slice::from_ref(&xb))
                .unwrap_or_else(|e| panic!("{name}@{}: {e}", cert.batch));
            assert_eq!(stats.flops, cert.flops, "{name}@{}: flops", cert.batch);
            assert_eq!(
                stats.traversals, cert.traversals,
                "{name}@{}: traversals",
                cert.batch
            );
            assert_eq!(stats.bytes, cert.bytes, "{name}@{}: bytes", cert.batch);
            assert_eq!(
                stats.kernel_launches, cert.kernel_launches,
                "{name}@{}: launches",
                cert.batch
            );
            let plan = exec
                .plan_for_batch(cert.batch)
                .unwrap_or_else(|e| panic!("{name}@{}: plan: {e}", cert.batch));
            assert_eq!(
                plan.arena_bytes, cert.arena_bytes,
                "{name}@{}: arena",
                cert.batch
            );
        }
    }
}

/// The calibrated envelope is validated, not assumed: the measured wall
/// of a warm run lands inside `[lo·(1−ε), hi·(1+ε)]` for every zoo
/// model at every bucket. The median of five runs keeps one scheduler
/// hiccup from failing the floor.
#[test]
fn measured_wall_within_calibrated_envelope_across_zoo() {
    const EPS: f64 = 0.5;
    for (name, model) in zoo() {
        let exec = model.executable();
        let certs = cost::cost_certs(exec.graph(), &COST_BUCKETS)
            .unwrap_or_else(|e| panic!("{name}: not certifiable: {e}"));
        for cert in &certs {
            let xb = input_at(cert.batch);
            let env = cost::envelope_for(cert);
            assert!(env.lo <= env.hi, "{name}@{}: inverted envelope", cert.batch);
            // Warm once (plans, autotuner) so steady state is measured.
            let _ = exec
                .run_with_stats(std::slice::from_ref(&xb))
                .unwrap_or_else(|e| panic!("{name}@{}: {e}", cert.batch));
            let mut walls: Vec<_> = (0..5)
                .map(|_| {
                    let (_, s) = exec
                        .run_with_stats(std::slice::from_ref(&xb))
                        .unwrap_or_else(|e| panic!("{name}@{}: {e}", cert.batch));
                    s.wall
                })
                .collect();
            walls.sort();
            let wall = walls[walls.len() / 2];
            let lo = env.lo.mul_f64(1.0 - EPS);
            let hi = env.hi.mul_f64(1.0 + EPS);
            assert!(
                wall >= lo && wall <= hi,
                "{name}@{}: wall {wall:?} outside [{lo:?}, {hi:?}] (envelope [{:?}, {:?}])",
                cert.batch,
                env.lo,
                env.hi
            );
        }
    }
}

/// Certificates travel with exported artifacts and survive a JSON round
/// trip unchanged, so the offline linter diffs the exact same numbers
/// the compiler certified.
#[test]
fn zoo_artifacts_round_trip_their_certs() {
    for (name, model) in zoo().into_iter().take(2) {
        let artifact =
            hummingbird::backend::Artifact::from_graph(model.executable().graph(), "proba")
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            !artifact.cost_certs.is_empty(),
            "{name}: artifact carries no certs"
        );
        let back = hummingbird::backend::Artifact::from_json_str(&artifact.to_json_string())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(artifact.cost_certs, back.cost_certs, "{name}: cert drift");
    }
}
