//! Property-based soundness of the abstract interpreter
//! (`hb-backend::absint`) against the ground truth of eager execution:
//! on random well-formed graphs fed random inputs drawn inside the
//! declared input interval, **every** eagerly computed intermediate must
//! satisfy its inferred [`ValueFact`] — every non-NaN element inside
//! `[lo, hi]`, NaN only where `can_nan` permits, ±Inf only where
//! `can_inf` permits.
//!
//! The step pool deliberately includes the hazardous operations —
//! division by a value straddling zero, `Ln`/`Sqrt` of possibly
//! negative operands, overflow-prone `Exp`/`MatMul` chains — so the
//! NaN/Inf taint lattice is exercised, not just the intervals. A second
//! property runs the full Compiled optimization pipeline (including
//! kernel fusion, whose stack-machine transfer function is separate)
//! and re-checks the optimized graph's facts against its own eager
//! execution.

use proptest::prelude::*;

use hummingbird::backend::optimize::optimize;
use hummingbird::backend::{Graph, GraphBuilder, Op, ShapeFact, ValueFact};
use hummingbird::tensor::{DType, DynTensor, Tensor};

/// Declared element interval for graph inputs; `input_of` draws inside.
const IN_LO: f64 = -2.0;
const IN_HI: f64 = 2.0;

/// One randomly chosen op layered onto the graph. Shape preconditions
/// are checked against the tracked concrete value, so the graph is
/// well-formed by construction.
#[derive(Debug, Clone)]
enum Step {
    AddConst(f32),
    MulConst(f32),
    PowHalf,
    Square,
    Relu,
    Sigmoid,
    Tanh,
    Exp,
    Ln,
    Sqrt,
    Abs,
    Neg,
    AddSelf,
    SubSelf,
    MulSelf,
    /// `x / x`: denominator interval straddles zero → 0/0 NaN taint.
    DivSelf,
    MaxConst(f32),
    MinConst(f32),
    Clamp(f32, f32),
    /// `where(x > 0, x, -x)` — comparison cond + select join.
    WherePos,
    /// `cast(isnan(x), F32)` — NaN laundering through a comparison-like
    /// mask.
    NanMask,
    /// Round-trip through I64 (saturating, NaN-laundering casts).
    I64RoundTrip,
    MatMul(usize),
    Sum {
        axis: usize,
        keepdim: bool,
    },
    Mean {
        axis: usize,
        keepdim: bool,
    },
    ReduceMax(usize),
    Softmax(usize),
    LogSumExp(usize),
    Transpose,
    ConcatSelf(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-3.0f32..3.0).prop_map(Step::AddConst),
        (-3.0f32..3.0).prop_map(Step::MulConst),
        Just(Step::PowHalf),
        Just(Step::Square),
        Just(Step::Relu),
        Just(Step::Sigmoid),
        Just(Step::Tanh),
        Just(Step::Exp),
        Just(Step::Ln),
        Just(Step::Sqrt),
        Just(Step::Abs),
        Just(Step::Neg),
        Just(Step::AddSelf),
        Just(Step::SubSelf),
        Just(Step::MulSelf),
        Just(Step::DivSelf),
        (-1.0f32..1.0).prop_map(Step::MaxConst),
        (-1.0f32..1.0).prop_map(Step::MinConst),
        (-1.0f32..0.0, 0.0f32..1.0).prop_map(|(lo, hi)| Step::Clamp(lo, hi)),
        Just(Step::WherePos),
        Just(Step::NanMask),
        Just(Step::I64RoundTrip),
        (1usize..4).prop_map(Step::MatMul),
        ((0usize..2), any::<bool>()).prop_map(|(axis, keepdim)| Step::Sum { axis, keepdim }),
        ((0usize..2), any::<bool>()).prop_map(|(axis, keepdim)| Step::Mean { axis, keepdim }),
        (0usize..2).prop_map(Step::ReduceMax),
        (0usize..2).prop_map(Step::Softmax),
        (0usize..2).prop_map(Step::LogSumExp),
        Just(Step::Transpose),
        (0usize..2).prop_map(Step::ConcatSelf),
    ]
}

/// Deterministic pseudo-random input inside `[IN_LO, IN_HI]`.
fn input_of(n: usize, m: usize, seed: u64) -> Tensor<f32> {
    let mut state = seed | 1;
    Tensor::from_fn(&[n, m], |_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
    })
}

/// Grows a random graph over `input`, keeping the running node in F32
/// rank-2 form so every step stays applicable.
fn grow(steps: &[Step], input: &Tensor<f32>) -> (GraphBuilder, usize) {
    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::fixed(input.shape()));
    // Track the concrete shape only (values come later from eager
    // execution of the finished graph).
    let mut shape = input.shape().to_vec();
    let mut cur = x;
    for s in steps {
        let rank = shape.len();
        cur = match s {
            Step::AddConst(c) => b.add_scalar(cur, f64::from(*c)),
            Step::MulConst(c) => b.mul_scalar(cur, f64::from(*c)),
            Step::PowHalf => b.push(Op::PowScalar(0.5), vec![cur]),
            Step::Square => b.push(Op::PowScalar(2.0), vec![cur]),
            Step::Relu => b.push(Op::Relu, vec![cur]),
            Step::Sigmoid => b.sigmoid(cur),
            Step::Tanh => b.push(Op::Tanh, vec![cur]),
            Step::Exp => b.push(Op::Exp, vec![cur]),
            Step::Ln => b.push(Op::Ln, vec![cur]),
            Step::Sqrt => b.push(Op::Sqrt, vec![cur]),
            Step::Abs => b.push(Op::Abs, vec![cur]),
            Step::Neg => b.push(Op::Neg, vec![cur]),
            Step::AddSelf => b.add(cur, cur),
            Step::SubSelf => b.sub(cur, cur),
            Step::MulSelf => b.mul(cur, cur),
            Step::DivSelf => b.div(cur, cur),
            Step::MaxConst(c) => {
                let k = b.constant(Tensor::scalar(*c));
                b.push(Op::Maximum, vec![cur, k])
            }
            Step::MinConst(c) => {
                let k = b.constant(Tensor::scalar(*c));
                b.push(Op::Minimum, vec![cur, k])
            }
            Step::Clamp(lo, hi) => b.clamp(cur, *lo, *hi),
            Step::WherePos => {
                let zero = b.constant(Tensor::scalar(0.0f32));
                let cond = b.push(Op::Gt, vec![cur, zero]);
                let neg = b.push(Op::Neg, vec![cur]);
                b.where_(cond, cur, neg)
            }
            Step::NanMask => {
                let mask = b.is_nan(cur);
                b.cast(mask, DType::F32)
            }
            Step::I64RoundTrip => {
                let i = b.cast(cur, DType::I64);
                b.cast(i, DType::F32)
            }
            Step::MatMul(k) => {
                if rank != 2 {
                    continue;
                }
                let inner = shape[1];
                let w = b.constant(Tensor::from_fn(&[inner, *k], |i| {
                    (i[0] * 3 + i[1]) as f32 * 0.3 - 0.5
                }));
                shape = vec![shape[0], *k];
                b.matmul(cur, w)
            }
            Step::Sum { axis, keepdim } => {
                if rank == 0 {
                    continue;
                }
                let axis = axis % rank;
                if !keepdim {
                    shape.remove(axis);
                } else {
                    shape[axis] = 1;
                }
                b.sum(cur, axis, *keepdim)
            }
            Step::Mean { axis, keepdim } => {
                if rank == 0 {
                    continue;
                }
                let axis = axis % rank;
                if !keepdim {
                    shape.remove(axis);
                } else {
                    shape[axis] = 1;
                }
                b.mean(cur, axis, *keepdim)
            }
            Step::ReduceMax(axis) => {
                if rank == 0 {
                    continue;
                }
                let axis = axis % rank;
                if shape[axis] == 0 {
                    continue;
                }
                shape[axis] = 1;
                b.push(
                    Op::ReduceMax {
                        axis,
                        keepdim: true,
                    },
                    vec![cur],
                )
            }
            Step::Softmax(axis) => {
                if rank == 0 {
                    continue;
                }
                let axis = axis % rank;
                if shape[axis] == 0 {
                    continue;
                }
                b.push(Op::Softmax { axis }, vec![cur])
            }
            Step::LogSumExp(axis) => {
                if rank == 0 {
                    continue;
                }
                let axis = axis % rank;
                if shape[axis] == 0 {
                    continue;
                }
                shape[axis] = 1;
                b.push(
                    Op::LogSumExp {
                        axis,
                        keepdim: true,
                    },
                    vec![cur],
                )
            }
            Step::Transpose => {
                if rank != 2 {
                    continue;
                }
                shape.swap(0, 1);
                b.transpose(cur, 0, 1)
            }
            Step::ConcatSelf(axis) => {
                if rank == 0 {
                    continue;
                }
                let axis = axis % rank;
                shape[axis] *= 2;
                b.concat(axis, vec![cur, cur])
            }
        };
    }
    (b, cur)
}

/// Eagerly evaluates every node; the kernels are the ground truth.
fn run_all(graph: &Graph, input: &Tensor<f32>) -> Vec<DynTensor> {
    let mut vals: Vec<DynTensor> = Vec::with_capacity(graph.nodes.len());
    for node in &graph.nodes {
        let v = match &node.op {
            Op::Input(_) => DynTensor::F32(input.clone()),
            op => {
                let ins: Vec<&DynTensor> = node.inputs.iter().map(|&i| &vals[i]).collect();
                op.eval(&ins)
            }
        };
        vals.push(v);
    }
    vals
}

/// Asserts every element of `v` satisfies `fact` (the soundness
/// contract), reporting the node id and offending element on failure.
fn assert_fact_holds(
    v: &DynTensor,
    fact: ValueFact,
    node: usize,
    op: &str,
) -> Result<(), TestCaseError> {
    let check = |x: f64, is_nan: bool, is_inf: bool| -> Result<(), TestCaseError> {
        if is_nan {
            prop_assert!(
                fact.can_nan,
                "node {node} ({op}): eager NaN but fact {fact:?} forbids NaN"
            );
            return Ok(());
        }
        prop_assert!(
            fact.lo <= x && x <= fact.hi,
            "node {node} ({op}): eager value {x} outside fact {fact:?}"
        );
        if is_inf {
            prop_assert!(
                fact.can_inf,
                "node {node} ({op}): eager Inf but fact {fact:?} forbids Inf"
            );
        }
        Ok(())
    };
    match v {
        DynTensor::F32(t) => {
            for x in t.iter() {
                check(f64::from(x), x.is_nan(), x.is_infinite())?;
            }
        }
        DynTensor::I64(t) => {
            for x in t.iter() {
                check(x as f64, false, false)?;
            }
        }
        DynTensor::U8(t) => {
            for x in t.iter() {
                check(f64::from(x), false, false)?;
            }
        }
        DynTensor::Bool(t) => {
            for x in t.iter() {
                check(f64::from(u8::from(x)), false, false)?;
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Core soundness: every eager intermediate satisfies its fact.
    #[test]
    fn eager_execution_stays_inside_inferred_facts(
        steps in prop::collection::vec(step_strategy(), 1..12),
        n in 1usize..5,
        m in 1usize..4,
        seed in any::<u64>(),
    ) {
        let input = input_of(n, m, seed);
        let (mut b, cur) = grow(&steps, &input);
        b.output(cur);
        let graph = b.build();
        let facts = graph
            .infer_values(&[ValueFact::finite(IN_LO, IN_HI)])
            .unwrap_or_else(|e| panic!("value inference failed: {e}"));
        let vals = run_all(&graph, &input);
        for (id, v) in vals.iter().enumerate() {
            assert_fact_holds(v, facts[id], id, &graph.nodes[id].op.label())?;
        }
    }

    // The optimized graph (folding, value rewrites, CSE, DCE, fusion)
    // must also be sound against its own facts — this is what serving
    // admission actually consumes, and it exercises the FusedKernel
    // stack-machine transfer function.
    #[test]
    fn optimized_graph_facts_remain_sound(
        steps in prop::collection::vec(step_strategy(), 1..12),
        n in 1usize..5,
        m in 1usize..4,
        seed in any::<u64>(),
    ) {
        let input = input_of(n, m, seed);
        let (mut b, cur) = grow(&steps, &input);
        b.output(cur);
        let graph = b.build();
        let (opt, _) = optimize(&graph);
        let facts = opt
            .infer_values(&[ValueFact::finite(IN_LO, IN_HI)])
            .unwrap_or_else(|e| panic!("value inference failed: {e}"));
        let vals = run_all(&opt, &input);
        for (id, v) in vals.iter().enumerate() {
            assert_fact_holds(v, facts[id], id, &opt.nodes[id].op.label())?;
        }
    }
}
