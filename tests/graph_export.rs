//! Compiled-graph export/import: the reproduction's analog of the
//! paper's multiple output formats (§3.2 "exported into the target
//! runtime format"). A compiled tensor DAG serializes to JSON and
//! re-imports as a runnable executable with identical outputs.

use hummingbird::backend::{Backend, Device, Executable, Graph};
use hummingbird::compiler::{compile, CompileOptions, TreeStrategy};
use hummingbird::ml::forest::ForestConfig;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Targets};
use hummingbird::tensor::{DynTensor, Tensor};

fn model_graph() -> (Graph, Tensor<f32>) {
    let n = 100;
    let x = Tensor::from_fn(&[n, 5], |i| ((i[0] * 7 + i[1] * 3) % 13) as f32 * 0.3);
    let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::RandomForestClassifier(ForestConfig {
                n_trees: 5,
                max_depth: 4,
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    let model = compile(
        &pipe,
        &CompileOptions {
            backend: Backend::Script,
            tree_strategy: TreeStrategy::TreeTraversal,
            ..Default::default()
        },
    )
    .unwrap();
    (model.executable().graph().clone(), x)
}

#[test]
fn graph_json_roundtrip_preserves_outputs() {
    let (graph, x) = model_graph();
    let json = graph.to_json();
    assert!(json.len() > 100, "export looks empty");
    let restored = Graph::from_json(&json).expect("import succeeds");
    assert_eq!(restored.len(), graph.len());

    let a = Executable::new(graph, Backend::Script, Device::cpu());
    let b = Executable::new(restored, Backend::Script, Device::cpu());
    let input = DynTensor::F32(x);
    let ra = a.run(std::slice::from_ref(&input)).unwrap();
    let rb = b.run(std::slice::from_ref(&input)).unwrap();
    assert_eq!(ra[0].as_f32().to_vec(), rb[0].as_f32().to_vec());
}

#[test]
fn imported_graph_can_be_recompiled() {
    // An imported raw graph may be lowered to the Compiled backend — the
    // optimization pipeline runs on it like on a freshly built graph.
    let (graph, x) = model_graph();
    let restored = Graph::from_json(&graph.to_json()).unwrap();
    let compiled = Executable::new(restored, Backend::Compiled, Device::cpu());
    let reference = Executable::new(graph, Backend::Eager, Device::cpu());
    let input = DynTensor::F32(x);
    let a = compiled.run(std::slice::from_ref(&input)).unwrap();
    let b = reference.run(std::slice::from_ref(&input)).unwrap();
    let (va, vb) = (a[0].as_f32().to_vec(), b[0].as_f32().to_vec());
    for (x, y) in va.iter().zip(vb.iter()) {
        assert!((x - y).abs() < 1e-5, "{x} vs {y}");
    }
}

#[test]
fn malformed_graph_json_is_rejected() {
    assert!(Graph::from_json("{\"nodes\": \"nope\"}").is_err());
    assert!(Graph::from_json("").is_err());
}

#[test]
fn fused_graphs_roundtrip() {
    // Fused kernels re-derive their specializations on import.
    let (graph, x) = model_graph();
    let compiled = Executable::new(graph, Backend::Compiled, Device::cpu());
    let fused_graph = compiled.graph().clone();
    let restored = Graph::from_json(&fused_graph.to_json()).unwrap();
    let again = Executable::new(restored, Backend::Script, Device::cpu());
    let input = DynTensor::F32(x);
    let a = compiled.run(std::slice::from_ref(&input)).unwrap();
    let b = again.run(std::slice::from_ref(&input)).unwrap();
    assert_eq!(a[0].as_f32().to_vec(), b[0].as_f32().to_vec());
}
