//! End-to-end output validation (the paper's §6.1.1 validation
//! experiment): every supported pipeline shape, compiled on every
//! backend, must match the imperative reference within
//! `rtol = atol = 1e-4`.

use hummingbird::backend::{Backend, Device};
use hummingbird::compiler::{compile, CompileOptions, TreeStrategy};
use hummingbird::ml::featurize::{BinEncode, ImputeStrategy, Norm};
use hummingbird::ml::forest::ForestConfig;
use hummingbird::ml::gbdt::GbdtConfig;
use hummingbird::ml::linear::LinearConfig;
use hummingbird::ml::metrics::allclose;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Pipeline, Targets};
use hummingbird::tensor::Tensor;

fn class_data(n: usize, d: usize, c: usize) -> (Tensor<f32>, Targets) {
    let x = Tensor::from_fn(&[n, d], |i| {
        let cls = (i[0] % c) as f32;
        cls * 1.7 + ((i[0] * 13 + i[1] * 7) % 11) as f32 * 0.25 - 1.0
    });
    let y = Targets::Classes((0..n).map(|i| (i % c) as i64).collect());
    (x, y)
}

/// Compiles on all backends and both CPU/simulated-GPU devices, checking
/// against the imperative reference.
fn check(pipe: &Pipeline, x: &Tensor<f32>, label: &str) {
    let want = pipe.predict_proba(x);
    for backend in Backend::ALL {
        for device in [
            Device::cpu(),
            Device::Sim(hummingbird::backend::device::P100),
        ] {
            let opts = CompileOptions {
                backend,
                device,
                ..Default::default()
            };
            let model = compile(pipe, &opts)
                .unwrap_or_else(|e| panic!("{label}: compile failed on {backend:?}: {e}"));
            let got = model
                .predict_proba(x)
                .unwrap_or_else(|e| panic!("{label}: scoring failed on {backend:?}: {e}"));
            assert!(
                allclose(&got, &want, 1e-4, 1e-4),
                "{label}: {backend:?}/{} diverges from reference",
                device.label()
            );
        }
    }
}

#[test]
fn featurizer_pipelines_match_reference() {
    let (x, y) = class_data(150, 8, 2);
    let featurizer_stacks: Vec<(&str, Vec<OpSpec>)> = vec![
        (
            "scalers",
            vec![
                OpSpec::StandardScaler,
                OpSpec::MinMaxScaler,
                OpSpec::MaxAbsScaler,
            ],
        ),
        (
            "robust+binarize",
            vec![OpSpec::RobustScaler, OpSpec::Binarizer { threshold: 0.1 }],
        ),
        ("normalizers", vec![OpSpec::Normalizer { norm: Norm::L2 }]),
        ("normalizer_l1", vec![OpSpec::Normalizer { norm: Norm::L1 }]),
        (
            "normalizer_max",
            vec![OpSpec::Normalizer { norm: Norm::Max }],
        ),
        (
            "kbins_ordinal",
            vec![OpSpec::KBinsDiscretizer {
                n_bins: 4,
                encode: BinEncode::Ordinal,
            }],
        ),
        (
            "kbins_onehot",
            vec![OpSpec::KBinsDiscretizer {
                n_bins: 3,
                encode: BinEncode::OneHot,
            }],
        ),
        (
            "poly",
            vec![OpSpec::PolynomialFeatures {
                include_bias: true,
                interaction_only: false,
            }],
        ),
        (
            "poly_interactions",
            vec![OpSpec::PolynomialFeatures {
                include_bias: false,
                interaction_only: true,
            }],
        ),
        (
            "select",
            vec![OpSpec::StandardScaler, OpSpec::SelectKBest { k: 4 }],
        ),
        (
            "variance",
            vec![OpSpec::VarianceThreshold { threshold: 1e-8 }],
        ),
        ("pca", vec![OpSpec::Pca { k: 4 }]),
        ("tsvd", vec![OpSpec::TruncatedSvd { k: 3 }]),
        (
            "kernel_pca",
            vec![OpSpec::KernelPca {
                k: 3,
                gamma: 0.5,
                fit_rows: 60,
            }],
        ),
    ];
    for (label, specs) in featurizer_stacks {
        let pipe = fit_pipeline(&specs, &x, &y);
        check(&pipe, &x, label);
    }
}

#[test]
fn model_pipelines_match_reference() {
    let (x, y) = class_data(200, 6, 2);
    let lin = LinearConfig {
        epochs: 60,
        ..Default::default()
    };
    let models: Vec<(&str, OpSpec)> = vec![
        ("logreg", OpSpec::LogisticRegression(lin.clone())),
        (
            "sgd",
            OpSpec::SgdClassifier(LinearConfig {
                epochs: 5,
                ..lin.clone()
            }),
        ),
        ("linearsvc", OpSpec::LinearSvc(lin)),
        ("svc", OpSpec::Svc(Default::default())),
        (
            "nusvc",
            OpSpec::NuSvc {
                nu: 0.4,
                config: Default::default(),
            },
        ),
        ("gnb", OpSpec::GaussianNb),
        (
            "bnb",
            OpSpec::BernoulliNb {
                alpha: 1.0,
                binarize: 0.0,
            },
        ),
        ("mnb", OpSpec::MultinomialNb { alpha: 1.0 }),
        (
            "mlp",
            OpSpec::Mlp(hummingbird::ml::mlp::MlpConfig {
                epochs: 8,
                ..Default::default()
            }),
        ),
        ("dtree", OpSpec::DecisionTreeClassifier { max_depth: 4 }),
    ];
    for (label, spec) in models {
        // Multinomial NB needs non-negative features.
        let xm = if label == "mnb" {
            x.map(|v| v.abs())
        } else {
            x.clone()
        };
        let pipe = fit_pipeline(&[OpSpec::StandardScaler, spec], &xm, &y);
        check(&pipe, &xm, label);
    }
}

#[test]
fn multiclass_pipelines_match_reference() {
    let (x, y) = class_data(240, 6, 4);
    for (label, spec) in [
        (
            "logreg4",
            OpSpec::LogisticRegression(LinearConfig {
                epochs: 60,
                ..Default::default()
            }),
        ),
        ("gnb4", OpSpec::GaussianNb),
        (
            "rf4",
            OpSpec::RandomForestClassifier(ForestConfig {
                n_trees: 6,
                max_depth: 4,
                ..Default::default()
            }),
        ),
        (
            "gbdt4",
            OpSpec::GbdtClassifier(GbdtConfig {
                n_rounds: 6,
                max_depth: 3,
                ..Default::default()
            }),
        ),
    ] {
        let pipe = fit_pipeline(std::slice::from_ref(&spec), &x, &y);
        check(&pipe, &x, label);
    }
}

#[test]
fn regression_pipelines_match_reference() {
    let n = 200;
    let x = Tensor::from_fn(&[n, 4], |i| ((i[0] * 7 + i[1] * 3) % 19) as f32 * 0.2);
    let xs = x.to_contiguous();
    let xv = xs.as_slice().to_vec();
    let y = Targets::Values((0..n).map(|r| xv[r * 4] * 2.0 - xv[r * 4 + 1]).collect());
    for (label, spec) in [
        (
            "rf_reg",
            OpSpec::RandomForestRegressor(ForestConfig {
                n_trees: 8,
                max_depth: 5,
                ..Default::default()
            }),
        ),
        (
            "gbdt_reg",
            OpSpec::GbdtRegressor(GbdtConfig {
                n_rounds: 12,
                max_depth: 3,
                ..Default::default()
            }),
        ),
    ] {
        let pipe = fit_pipeline(std::slice::from_ref(&spec), &x, &y);
        check(&pipe, &x, label);
    }
}

#[test]
fn imputer_pipeline_with_nans_matches_reference() {
    let n = 120;
    let x = Tensor::from_fn(&[n, 5], |i| {
        if (i[0] * 5 + i[1]) % 11 == 0 {
            f32::NAN
        } else {
            (i[0] % 2) as f32 * 2.0 + i[1] as f32 * 0.1
        }
    });
    let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
    for strategy in [
        ImputeStrategy::Mean,
        ImputeStrategy::Median,
        ImputeStrategy::Constant(-1.0),
    ] {
        let pipe = fit_pipeline(
            &[
                OpSpec::SimpleImputer { strategy },
                OpSpec::StandardScaler,
                OpSpec::GaussianNb,
            ],
            &x,
            &y,
        );
        check(&pipe, &x, "imputer");
    }
    // MissingIndicator pipeline (featurizer-only).
    let pipe = fit_pipeline(&[OpSpec::MissingIndicator], &x, &y);
    check(&pipe, &x, "missing_indicator");
}

#[test]
fn onehot_pipeline_with_unseen_categories() {
    let n = 90;
    let x = Tensor::from_fn(&[n, 3], |i| ((i[0] * (i[1] + 2)) % 4) as f32);
    let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
    let pipe = fit_pipeline(
        &[
            OpSpec::OneHotEncoder,
            OpSpec::LogisticRegression(LinearConfig {
                epochs: 40,
                ..Default::default()
            }),
        ],
        &x,
        &y,
    );
    check(&pipe, &x, "onehot");
    // Unseen categories at scoring time encode to all-zero blocks in both
    // paths.
    let unseen = Tensor::from_vec(vec![99.0, 99.0, 99.0], &[1, 3]);
    let want = pipe.predict_proba(&unseen);
    let model = compile(&pipe, &CompileOptions::default()).unwrap();
    let got = model.predict_proba(&unseen).unwrap();
    assert!(allclose(&got, &want, 1e-5, 1e-5));
}

#[test]
fn compiled_model_handles_any_batch_size() {
    // Graphs are compiled once and must score any batch size, including a
    // single record and sizes unseen at compile time.
    let (x, y) = class_data(120, 5, 2);
    let pipe = fit_pipeline(
        &[OpSpec::RandomForestClassifier(ForestConfig {
            n_trees: 5,
            max_depth: 4,
            ..Default::default()
        })],
        &x,
        &y,
    );
    for strategy in [
        TreeStrategy::Gemm,
        TreeStrategy::TreeTraversal,
        TreeStrategy::PerfectTreeTraversal,
    ] {
        let model = compile(
            &pipe,
            &CompileOptions {
                tree_strategy: strategy,
                ..Default::default()
            },
        )
        .unwrap();
        for n in [1usize, 2, 7, 64, 120] {
            let sub = x.slice(0, 0, n).to_contiguous();
            let want = pipe.predict_proba(&sub);
            let got = model.predict_proba(&sub).unwrap();
            assert!(
                allclose(&got, &want, 1e-4, 1e-4),
                "{} diverges at batch {n}",
                strategy.label()
            );
        }
    }
}

#[test]
fn single_class_training_data_compiles() {
    // Degenerate dataset: only one class present. The forest becomes
    // constant but must still compile and score.
    let x = Tensor::from_fn(&[40, 3], |i| (i[0] * 3 + i[1]) as f32);
    let y = Targets::Classes(vec![0i64; 40]);
    let pipe = fit_pipeline(&[OpSpec::DecisionTreeClassifier { max_depth: 4 }], &x, &y);
    let model = compile(&pipe, &CompileOptions::default()).unwrap();
    let out = model.predict_proba(&x).unwrap();
    assert!(out
        .iter()
        .all(|v| (v - out.get(&[0, 0])).abs() < 1e-6 || v == 0.0));
}
