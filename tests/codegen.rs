//! Codegen-tier gate: every specialized kernel class the stage-2
//! pattern compiler emits must stay bit-identical with the verified
//! register VM and with the legacy stack interpreter — over inputs
//! seeded with NaN, ±Inf, and signed zeros — and planned execution of
//! real compiled models must be bit-identical at any thread count and
//! on every rung of the dispatch ladder (codegen → LIR VM → stack).

use hummingbird::backend::fuse::{FusedKernel, Instr};
use hummingbird::backend::{Backend, Device, Op};
use hummingbird::compiler::{compile, CompileOptions, TreeStrategy};
use hummingbird::pipeline::{fit_pipeline, OpSpec, Targets};
use hummingbird::tensor::{DType, DynTensor, Tensor};

/// Deterministic xorshift in [0, 1).
fn make_rand(seed: u64) -> impl FnMut() -> f32 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// A random f32 input tensor seeded with the serving edge cases: zeros,
/// negative zero, NaN, ±Inf, large magnitudes.
fn random_input(rand: &mut impl FnMut() -> f32, n: usize) -> DynTensor {
    let data: Vec<f32> = (0..n)
        .map(|_| {
            let r = rand();
            if r < 0.06 {
                f32::NAN
            } else if r < 0.09 {
                f32::INFINITY
            } else if r < 0.12 {
                f32::NEG_INFINITY
            } else if r < 0.17 {
                -0.0
            } else if r < 0.22 {
                0.0
            } else {
                (rand() * 2.0 - 1.0) * 1e3
            }
        })
        .collect();
    DynTensor::F32(Tensor::from_vec(data, &[n]))
}

/// Executes one kernel on all three dispatch rungs — the specialized
/// codegen tier (the default), the generic register VM, and the legacy
/// stack interpreter — and asserts the outputs are bit-identical,
/// NaN payloads included.
fn assert_tri_dispatch_identical(kernel: &FusedKernel, inputs: &[&DynTensor], label: &str) {
    let auto = kernel.eval(inputs);
    let vm = kernel.with_vm_dispatch().eval(inputs);
    let stack = kernel.with_stack_dispatch().eval(inputs);
    for (rung, out) in [("register VM", &vm), ("stack interpreter", &stack)] {
        match (&auto, out) {
            (DynTensor::F32(a), DynTensor::F32(b)) => {
                for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{label}: codegen dispatch and {rung} diverged at element {i}: {x} vs {y}"
                    );
                }
            }
            (DynTensor::Bool(a), DynTensor::Bool(b)) => {
                assert_eq!(a.to_vec(), b.to_vec(), "{label}: {rung} bools diverged");
            }
            other => panic!("{label}: {rung} returned a different dtype: {other:?}"),
        }
    }
}

/// The kernel classes the pattern compiler was built for: the actual
/// fused programs real tree compilations produce, each asserted to
/// resolve to its expected class and to execute bit-identically on all
/// three dispatch rungs.
#[test]
fn specialized_classes_cover_the_serving_kernels() {
    let mut rand = make_rand(0xc0de_0001);
    let cases: Vec<(&str, &str, usize, Vec<Instr>)> = vec![
        (
            "complement head (1 - x)",
            "chain2",
            1,
            vec![Instr::Load(0), Instr::MulImm(-1.0), Instr::AddImm(1.0)],
        ),
        (
            "sigmoid head (sigmoid(x + b))",
            "chain2",
            1,
            vec![
                Instr::Load(0),
                Instr::Imm(-1.394_615_9),
                Instr::Add,
                Instr::Sigmoid,
            ],
        ),
        (
            "affine sigmoid",
            "chain3",
            1,
            vec![
                Instr::Load(0),
                Instr::MulImm(2.0),
                Instr::AddImm(-1.0),
                Instr::Sigmoid,
            ],
        ),
        (
            "relu of a difference",
            "bin2-then",
            2,
            vec![Instr::Load(0), Instr::Load(1), Instr::Sub, Instr::Relu],
        ),
        (
            "comparison select (where(a < b, a, b))",
            "cmp-select",
            2,
            vec![
                Instr::Load(0),
                Instr::Load(1),
                Instr::Lt,
                Instr::Load(0),
                Instr::Load(1),
                Instr::Select,
            ],
        ),
        (
            "sanitize clamp (NaN-preserving clamp)",
            "sanitize-clamp",
            1,
            vec![
                Instr::Load(0),
                Instr::IsNan,
                Instr::Load(0),
                Instr::Load(0),
                Instr::Clamp(-1.5, 2.0),
                Instr::Select,
            ],
        ),
    ];
    for (name, want_class, n_inputs, program) in cases {
        let kernel = FusedKernel::try_new(n_inputs, DType::F32, program)
            .unwrap_or_else(|e| panic!("{name}: kernel construction failed: {e}"));
        assert_eq!(
            kernel.class_label(),
            want_class,
            "{name}: resolved to the wrong kernel class"
        );
        let inputs: Vec<DynTensor> = (0..n_inputs)
            .map(|_| random_input(&mut rand, 197))
            .collect();
        let refs: Vec<&DynTensor> = inputs.iter().collect();
        assert_tri_dispatch_identical(&kernel, &refs, name);
    }
}

/// Generates a short random compute chain over 1-3 inputs, biased
/// toward the 2-3 compute shapes the codegen tier specializes so the
/// suite exercises every class (and the VM fallback for deeper ones).
fn random_chain(rand: &mut impl FnMut() -> f32, n_inputs: usize) -> Vec<Instr> {
    let mut prog = vec![Instr::Load(
        ((rand() * n_inputs as f32) as usize).min(n_inputs - 1),
    )];
    let n_stages = 1 + (rand() * 3.0) as usize;
    for _ in 0..n_stages {
        let r = rand();
        if r < 0.35 {
            prog.push(match (rand() * 6.0) as usize {
                0 => Instr::AddImm(0.5),
                1 => Instr::MulImm(-1.5),
                2 => Instr::AddImm(f32::NAN),
                3 => Instr::MulImm(0.0),
                4 => Instr::Clamp(-1.0, 3.0),
                _ => Instr::Pow(2.0),
            });
        } else if r < 0.6 {
            prog.push(match (rand() * 6.0) as usize {
                0 => Instr::Relu,
                1 => Instr::Sigmoid,
                2 => Instr::Tanh,
                3 => Instr::Abs,
                4 => Instr::Neg,
                _ => Instr::Sqrt,
            });
        } else {
            // A binary against a fresh operand (input or immediate,
            // on either side).
            let operand = if rand() < 0.6 {
                Instr::Load(((rand() * n_inputs as f32) as usize).min(n_inputs - 1))
            } else {
                Instr::Imm(match (rand() * 5.0) as usize {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    2 => -0.0,
                    3 => 2.5,
                    _ => -1.0,
                })
            };
            let op = match (rand() * 8.0) as usize {
                0 => Instr::Add,
                1 => Instr::Sub,
                2 => Instr::Mul,
                3 => Instr::Div,
                4 => Instr::Min,
                5 => Instr::Max,
                6 => Instr::Lt,
                _ => Instr::Ge,
            };
            if rand() < 0.5 {
                prog.push(operand);
                prog.push(op);
            } else {
                // Operand on the left: push it, then swap via the
                // non-commutative op order the stack machine gives us.
                prog.insert(prog.len() - 1, operand);
                prog.push(op);
            }
        }
    }
    prog
}

/// The randomized differential suite: hundreds of short random chains
/// (the shapes the pattern compiler targets), each executed on all
/// three dispatch rungs over inputs seeded with NaN, ±Inf, and signed
/// zeros. At least a handful must actually land in a specialized class,
/// or the tier has silently stopped engaging.
#[test]
fn random_chains_bit_identical_across_all_three_dispatch_rungs() {
    let mut rand = make_rand(0xc0de_0002);
    let n = 197; // non-multiple of the 64-wide block: exercises the tail
    let mut specialized = 0usize;
    for case in 0..300 {
        let n_inputs = 1 + (rand() * 3.0) as usize;
        let program = random_chain(&mut rand, n_inputs);
        let kernel =
            FusedKernel::try_new(n_inputs, DType::F32, program.clone()).unwrap_or_else(|e| {
                panic!("case {case}: kernel construction failed: {e}\n{program:?}")
            });
        if !kernel.kernel_class().is_none() {
            specialized += 1;
        }
        let inputs: Vec<DynTensor> = (0..n_inputs).map(|_| random_input(&mut rand, n)).collect();
        let refs: Vec<&DynTensor> = inputs.iter().collect();
        assert_tri_dispatch_identical(&kernel, &refs, &format!("case {case} ({program:?})"));
    }
    assert!(
        specialized >= 30,
        "only {specialized}/300 random chains hit a specialized class; \
         the codegen tier has stopped engaging"
    );
}

/// In-place evaluation (the planner's `Inplace::Fused` path, where the
/// output aliases one operand) must match out-of-place evaluation
/// bit-for-bit when the kernel runs on the specialized row fast path.
#[test]
fn in_place_codegen_matches_out_of_place() {
    let mut rand = make_rand(0xc0de_0003);
    let shape = [97usize, 5];
    for (name, program) in [
        (
            "chain2 complement",
            vec![Instr::Load(0), Instr::MulImm(-1.0), Instr::AddImm(1.0)],
        ),
        (
            "bin2-then against a broadcast row",
            vec![Instr::Load(0), Instr::Load(1), Instr::Sub, Instr::Relu],
        ),
    ] {
        let n_inputs = program.iter().fold(0usize, |m, i| match i {
            Instr::Load(k) => m.max(k + 1),
            _ => m,
        });
        let kernel = FusedKernel::try_new(n_inputs, DType::F32, program)
            .unwrap_or_else(|e| panic!("{name}: kernel construction failed: {e}"));
        assert!(
            !kernel.kernel_class().is_none(),
            "{name}: expected a specialized class"
        );
        let a = match random_input(&mut rand, shape[0] * shape[1]) {
            DynTensor::F32(t) => t.reshape(&shape),
            other => panic!("unexpected dtype: {other:?}"),
        };
        let row = Tensor::from_fn(&[1, shape[1]], |i| i[1] as f32 - 2.0);
        let (da, drow) = (DynTensor::F32(a.clone()), DynTensor::F32(row));
        let mut operands: Vec<&DynTensor> = vec![&da];
        if n_inputs > 1 {
            operands.push(&drow);
        }
        let want = kernel.eval(&operands).as_f32().to_vec();
        let mut buf = a.to_vec();
        let mut aliased: Vec<Option<&DynTensor>> = vec![None];
        if n_inputs > 1 {
            aliased.push(Some(&drow));
        }
        kernel.eval_in_place(0, &aliased, &shape, &mut buf);
        let got: Vec<u32> = buf.iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want_bits, "{name}: in-place diverged");
    }
}

/// End-to-end ladder and determinism gate: real compiled models (all
/// three tree strategies) must produce bit-identical planned outputs on
/// every dispatch rung (codegen → forced VM → forced stack) and at
/// every thread count (1 vs 4 pinned rayon pools). The codegen tier
/// must actually engage on at least one kernel across the strategies.
#[test]
fn compiled_models_bit_identical_across_rungs_and_thread_counts() {
    let n = 240;
    let d = 8;
    let x = Tensor::from_fn(&[n, d], |i| {
        let cls = (i[0] % 3) as f32;
        cls * 1.3 + ((i[0] * 13 + i[1] * 7) % 11) as f32 * 0.25 - 1.0
    });
    let y = Targets::Classes((0..n).map(|i| (i % 3) as i64).collect());
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::RandomForestClassifier(Default::default()),
        ],
        &x,
        &y,
    );
    let input = [DynTensor::F32(x.clone())];
    let mut labels: Vec<String> = Vec::new();
    for strategy in [
        TreeStrategy::Gemm,
        TreeStrategy::TreeTraversal,
        TreeStrategy::PerfectTreeTraversal,
    ] {
        let compile_for = |threads: usize| {
            let opts = CompileOptions {
                backend: Backend::Compiled,
                tree_strategy: strategy,
                device: Device::Cpu { threads },
                expected_batch: n,
                ..Default::default()
            };
            compile(&pipe, &opts).unwrap_or_else(|e| panic!("{}: {e}", strategy.label()))
        };
        let model = compile_for(0);
        for node in &model.executable().graph().nodes {
            if let Op::Fused(k) = &node.op {
                labels.push(format!("{}:{}", strategy.label(), k.class_label()));
            }
        }
        let bits_of = |outs: &[DynTensor]| -> Vec<Vec<u32>> {
            outs.iter()
                .map(|t| t.as_f32().iter().map(|v| v.to_bits()).collect())
                .collect()
        };
        let run = |exe: &hummingbird::backend::Executable| -> Vec<Vec<u32>> {
            // Warm once so the planned path (not the first-sight
            // refcount run) is what gets compared.
            let _ = exe.run(&input).unwrap_or_else(|e| panic!("warm: {e}"));
            bits_of(&exe.run(&input).unwrap_or_else(|e| panic!("run: {e}")))
        };
        let reference = run(model.executable());
        for (rung, exe) in [
            (
                "forced register VM",
                model.executable().with_fused_vm_dispatch(),
            ),
            (
                "forced stack",
                model.executable().with_fused_stack_dispatch(),
            ),
        ] {
            assert_eq!(
                reference,
                run(&exe),
                "{}: {rung} diverged from codegen dispatch",
                strategy.label()
            );
        }
        for threads in [1usize, 4] {
            let pinned = compile_for(threads);
            assert_eq!(
                reference,
                run(pinned.executable()),
                "{}: {threads}-thread planned run is not bit-identical",
                strategy.label()
            );
        }
    }
    assert!(
        labels.iter().any(|l| !l.ends_with(":vm")),
        "every fused kernel fell back to the generic VM: {labels:?}"
    );
}
