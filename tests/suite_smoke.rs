//! OpenML-CC18-like suite smoke test (paper §6.3 infrastructure): every
//! generated random pipeline must fit, compile on the default backend,
//! and validate against the imperative reference.

use hummingbird::compiler::{compile, CompileOptions};
use hummingbird::ml::metrics::allclose;
use hummingbird::pipeline::fit_pipeline;

#[test]
fn suite_pipelines_fit_compile_and_validate() {
    let tasks = hummingbird::data::openml_cc18_like(8, 1_200, 48, 77);
    assert_eq!(tasks.len(), 8);
    let mut compiled_ok = 0;
    for (i, task) in tasks.iter().enumerate() {
        let ds = &task.dataset;
        let pipe = fit_pipeline(&task.specs, &ds.x_train, &ds.y_train);
        let want = pipe.predict_proba(&ds.x_test);
        match compile(&pipe, &CompileOptions::default()) {
            Ok(model) => {
                let got = model.predict_proba(&ds.x_test).unwrap();
                assert!(
                    allclose(&got, &want, 1e-3, 1e-3),
                    "task {i}: compiled output diverges"
                );
                compiled_ok += 1;
            }
            Err(e) => panic!("task {i} failed to compile: {e}"),
        }
    }
    assert_eq!(
        compiled_ok,
        tasks.len(),
        "every suite pipeline must compile"
    );
}

#[test]
fn suite_is_deterministic() {
    let a = hummingbird::data::openml_cc18_like(3, 800, 32, 5);
    let b = hummingbird::data::openml_cc18_like(3, 800, 32, 5);
    for (ta, tb) in a.iter().zip(b.iter()) {
        assert_eq!(ta.dataset.x_train.to_vec(), tb.dataset.x_train.to_vec());
        assert_eq!(ta.specs.len(), tb.specs.len());
    }
}
