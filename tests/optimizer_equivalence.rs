//! Property-based tests for the §5.2 runtime-independent optimizations:
//! feature-selection push-down and injection must never change pipeline
//! outputs, across randomized pipeline shapes.

use proptest::prelude::*;

use hummingbird::backend::optimize::{cse, dce, fold_constants};
use hummingbird::backend::{fuse::fuse_elementwise, Graph};
use hummingbird::compiler::{compile, optimizer, CompileOptions};
use hummingbird::ml::featurize::ImputeStrategy;
use hummingbird::ml::linear::{LinearConfig, Penalty};
use hummingbird::ml::metrics::allclose;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Targets};
use hummingbird::tensor::Tensor;

fn data(n: usize, d: usize, seed: u64) -> (Tensor<f32>, Targets) {
    let x = Tensor::from_fn(&[n, d], |i| {
        let h = (i[0] as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(i[1] as u64 * 1442695040888963407)
            .wrapping_add(seed);
        ((h >> 33) % 1000) as f32 / 250.0 - 2.0 + (i[0] % 2) as f32
    });
    let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
    (x, y)
}

/// Re-runs each Compiled-backend pass on `graph`, asserting the graph
/// keeps verifying with an unchanged output signature after every
/// rewrite (translation validation, pass by pass).
fn assert_passes_preserve_signature(graph: &Graph) {
    let want = graph
        .verify()
        .unwrap_or_else(|e| panic!("compiled graph fails the verifier: {e}"));
    let mut g = graph.clone();
    let passes: [(&str, fn(&Graph) -> Graph); 4] = [
        ("fold", |g| fold_constants(g).0),
        ("cse", |g| cse(g).0),
        ("dce", dce),
        ("fuse", |g| fuse_elementwise(g).0),
    ];
    for (pass, run) in passes {
        g = run(&g);
        let got = g
            .verify()
            .unwrap_or_else(|e| panic!("{pass}: rewritten graph fails the verifier: {e}"));
        assert_eq!(got, want, "{pass}: output signature changed");
    }
}

/// Scaler variants the push-down must commute with.
fn scaler(kind: usize) -> OpSpec {
    match kind % 4 {
        0 => OpSpec::StandardScaler,
        1 => OpSpec::MinMaxScaler,
        2 => OpSpec::MaxAbsScaler,
        _ => OpSpec::RobustScaler,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pushdown_preserves_pipeline_outputs(
        seed in any::<u64>(),
        scaler_kind in 0usize..4,
        with_imputer in any::<bool>(),
        k in 2usize..6,
        d in 6usize..12,
    ) {
        let (x, y) = data(80, d, seed);
        let mut specs = Vec::new();
        if with_imputer {
            specs.push(OpSpec::SimpleImputer { strategy: ImputeStrategy::Mean });
        }
        specs.push(scaler(scaler_kind));
        specs.push(OpSpec::SelectKBest { k });
        specs.push(OpSpec::LogisticRegression(LinearConfig { epochs: 20, ..Default::default() }));
        let pipe = fit_pipeline(&specs, &x, &y);
        let want = pipe.predict_proba(&x);

        // The rewritten pipeline agrees imperatively...
        let rewritten = optimizer::push_down_feature_selection(&pipe);
        let got = rewritten.predict_proba(&x);
        prop_assert!(allclose(&got, &want, 1e-4, 1e-4), "imperative rewrite diverged");
        // ...and the selector moved ahead of the featurizers.
        prop_assert_eq!(rewritten.ops[0].signature(), "FeatureSelector");

        // And the fully compiled optimized model agrees too.
        let model = compile(&pipe, &CompileOptions::default()).unwrap();
        assert_passes_preserve_signature(model.executable().graph());
        let compiled = model.predict_proba(&x).unwrap();
        prop_assert!(allclose(&compiled, &want, 1e-4, 1e-4), "compiled rewrite diverged");
    }

    #[test]
    fn injection_preserves_sparse_linear_outputs(
        seed in any::<u64>(),
        alpha in 0.005f32..0.08,
        d in 6usize..14,
    ) {
        let (x, y) = data(100, d, seed);
        let pipe = fit_pipeline(
            &[
                OpSpec::StandardScaler,
                OpSpec::LogisticRegression(LinearConfig {
                    penalty: Penalty::L1(alpha),
                    epochs: 150,
                    ..Default::default()
                }),
            ],
            &x,
            &y,
        );
        let want = pipe.predict_proba(&x);
        let rewritten = optimizer::optimize_pipeline(&pipe);
        let got = rewritten.predict_proba(&x);
        prop_assert!(allclose(&got, &want, 1e-4, 1e-4));
        let model = compile(&pipe, &CompileOptions::default()).unwrap();
        assert_passes_preserve_signature(model.executable().graph());
        let compiled = model.predict_proba(&x).unwrap();
        prop_assert!(allclose(&compiled, &want, 1e-4, 1e-4));
    }

    #[test]
    fn onehot_absorption_preserves_outputs(
        seed in any::<u64>(),
        k in 2usize..8,
        vocab in 2usize..5,
    ) {
        // Categorical matrix with per-column vocabularies of size `vocab`.
        let n = 90;
        let d = 4;
        let x = Tensor::from_fn(&[n, d], |i| {
            let h = (i[0] as u64).wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(i[1] as u64).wrapping_add(seed);
            ((h >> 30) % vocab as u64) as f32
        });
        let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
        let pipe = fit_pipeline(&[OpSpec::OneHotEncoder, OpSpec::SelectKBest { k }], &x, &y);
        let want = pipe.predict_proba(&x);
        let rewritten = optimizer::push_down_feature_selection(&pipe);
        let got = rewritten.predict_proba(&x);
        prop_assert!(allclose(&got, &want, 1e-5, 1e-5), "absorption diverged");
        // The trailing selector is gone: the encoder absorbed it.
        prop_assert!(rewritten.ops.last().unwrap().signature() != "FeatureSelector");
    }
}
