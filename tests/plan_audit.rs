//! Memory-plan auditor regression suite: every plan the planner emits
//! for real compiled models must pass the independent safety audit
//! ([`hummingbird::backend::audit_plan`]), across all three tree
//! compilation strategies and a span of batch sizes — and a
//! deliberately corrupted plan (two simultaneously-live steps aliased
//! to one slot) must be rejected.

use hummingbird::backend::plan::Step;
use hummingbird::backend::{audit_plan, MemoryPlan, PlanAuditError};
use hummingbird::compiler::{compile, CompileOptions, TreeStrategy};
use hummingbird::ml::ensemble::{Aggregation, TreeEnsemble};
use hummingbird::ml::tree::Tree;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Pipeline, Targets};
use hummingbird::tensor::Tensor;

/// Deterministic xorshift in [0, 1).
fn make_rand(seed: u64) -> impl FnMut() -> f32 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Builds a random binary tree of at most `depth` with `value_width`
/// leaf payloads (same builder as the memplan suite).
fn random_tree(
    depth: usize,
    n_features: usize,
    value_width: usize,
    rand: &mut impl FnMut() -> f32,
) -> Tree {
    fn build(
        depth: usize,
        n_features: usize,
        value_width: usize,
        rand: &mut impl FnMut() -> f32,
        tree: &mut Tree,
    ) -> i32 {
        let id = tree.left.len();
        tree.left.push(-1);
        tree.right.push(-1);
        tree.feature.push(0);
        tree.threshold.push(0.0);
        for _ in 0..value_width {
            tree.values.push(rand() * 2.0 - 1.0);
        }
        if depth > 0 && rand() < 0.7 {
            let f = ((rand() * n_features as f32) as usize).min(n_features - 1);
            let l = build(depth - 1, n_features, value_width, rand, tree);
            let r = build(depth - 1, n_features, value_width, rand, tree);
            tree.left[id] = l;
            tree.right[id] = r;
            tree.feature[id] = f as u32;
            tree.threshold[id] = rand() * 2.0 - 1.0;
        }
        id as i32
    }
    let mut tree = Tree {
        left: vec![],
        right: vec![],
        feature: vec![],
        threshold: vec![],
        values: vec![],
        value_width,
    };
    build(depth, n_features, value_width, rand, &mut tree);
    tree
}

fn forest_pipeline(seed: u64, n_features: usize, n_classes: usize) -> Pipeline {
    let mut rand = make_rand(seed);
    let trees: Vec<Tree> = (0..8)
        .map(|_| random_tree(5, n_features, n_classes, &mut rand))
        .collect();
    Pipeline::from_op(TreeEnsemble {
        trees,
        n_features,
        n_classes,
        agg: Aggregation::AverageProba,
    })
}

/// Compiles `pipe` with `strategy` and audits the plan at each batch.
fn audit_strategy(pipe: &Pipeline, strategy: TreeStrategy, batches: &[usize]) {
    let opts = CompileOptions {
        tree_strategy: strategy,
        optimize_pipeline: false,
        ..Default::default()
    };
    let model = compile(pipe, &opts).expect("compile");
    let exe = model.executable();
    let graph = exe.graph();
    for &b in batches {
        let plan = MemoryPlan::build(graph, b)
            .unwrap_or_else(|e| panic!("{}: plan at batch {b} failed: {e}", strategy.label()));
        audit_plan(graph, &plan).unwrap_or_else(|e| {
            panic!(
                "{}: auditor rejected the planner's own plan at batch {b}: {e}",
                strategy.label()
            )
        });
        assert!(plan.planned_kernels > 0, "{}: empty plan", strategy.label());
    }
}

#[test]
fn auditor_accepts_all_gemm_plans() {
    let pipe = forest_pipeline(0xa0d1_0001, 10, 3);
    audit_strategy(&pipe, TreeStrategy::Gemm, &[1, 7, 64, 1000]);
}

#[test]
fn auditor_accepts_all_tree_traversal_plans() {
    let pipe = forest_pipeline(0xa0d1_0002, 10, 3);
    audit_strategy(&pipe, TreeStrategy::TreeTraversal, &[1, 7, 64, 1000]);
}

#[test]
fn auditor_accepts_all_perfect_tree_plans() {
    let pipe = forest_pipeline(0xa0d1_0003, 10, 3);
    audit_strategy(&pipe, TreeStrategy::PerfectTreeTraversal, &[1, 7, 64, 1000]);
}

#[test]
fn auditor_accepts_optimized_e2e_pipeline_plans() {
    // Full featurizer pipeline through the optimizer: fused and
    // value-rewritten graphs must audit clean too.
    let n = 120;
    let d = 8;
    let x = Tensor::from_fn(&[n, d], |i| {
        let cls = (i[0] % 3) as f32;
        cls * 1.3 + ((i[0] * 13 + i[1] * 7) % 11) as f32 * 0.25 - 1.0
    });
    let y = Targets::Classes((0..n).map(|i| (i % 3) as i64).collect());
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::RandomForestClassifier(Default::default()),
        ],
        &x,
        &y,
    );
    let model = compile(&pipe, &CompileOptions::default()).expect("compile");
    let exe = model.executable();
    let graph = exe.graph();
    for b in [1usize, 7, 333] {
        let plan = MemoryPlan::build(graph, b).expect("plan");
        audit_plan(graph, &plan)
            .unwrap_or_else(|e| panic!("auditor rejected e2e plan at batch {b}: {e}"));
    }
}

/// Corrupts a valid plan by aliasing a kernel step onto the slot of an
/// earlier kernel that is still live (a later node reads it), then
/// asserts the auditor rejects the plan. This is exactly the class of
/// planner bug the auditor exists to catch: a liveness bookkeeping slip
/// that silently reuses a buffer too early.
///
/// Real compiled forests chain every kernel in-place through one slot,
/// leaving no simultaneously-live pair to alias — so this uses a
/// diamond graph where `exp(x)` stays live across two later kernels.
#[test]
fn auditor_rejects_aliased_live_slots() {
    use hummingbird::backend::{GraphBuilder, Op, ShapeFact};
    use hummingbird::tensor::DType;

    let mut b = GraphBuilder::new();
    let x = b.input_with_shape(DType::F32, ShapeFact::batched(&[4]));
    let e = b.push(Op::Exp, vec![x]);
    let n = b.push(Op::Neg, vec![x]);
    let s = b.add(e, n);
    let t = b.mul(s, e); // `e` stays live across `n` and `s`
    b.output(t);
    let graph = b.build();

    let plan = MemoryPlan::build(&graph, 16).expect("plan");
    audit_plan(&graph, &plan).expect("pristine plan must audit clean");

    // `e` and `n` are simultaneously live at `s`, so the planner must
    // have put them in different slots; alias `n` onto `e`'s slot.
    let Step::Kernel { slot: slot_e, .. } = plan.steps[e] else {
        panic!("exp must be a planned kernel");
    };
    let Step::Kernel {
        slot: slot_n,
        shape: ref shape_n,
        ..
    } = plan.steps[n]
    else {
        panic!("neg must be a planned kernel");
    };
    assert_ne!(slot_e, slot_n, "planner aliased live values itself");

    let mut bad = plan.clone();
    bad.steps[n] = Step::Kernel {
        slot: slot_e,
        shape: shape_n.clone(),
        inplace: hummingbird::backend::Inplace::No,
    };
    let err = audit_plan(&graph, &bad).expect_err("aliased live slots must be rejected");
    assert!(
        matches!(err, PlanAuditError::LiveOverlap { .. }),
        "expected LiveOverlap for node {n} clobbering live node {e} in slot {slot_e}, got: {err}"
    );
}

/// A step whose declared concrete shape disagrees with the verified
/// shape fact must also be rejected (the executor trusts these shapes
/// when carving views out of the arena).
#[test]
fn auditor_rejects_corrupted_step_shape() {
    let pipe = forest_pipeline(0xa0d1_0005, 10, 3);
    let opts = CompileOptions {
        tree_strategy: TreeStrategy::Gemm,
        optimize_pipeline: false,
        ..Default::default()
    };
    let model = compile(&pipe, &opts).expect("compile");
    let exe = model.executable();
    let graph = exe.graph();
    let mut plan = MemoryPlan::build(graph, 8).expect("plan");
    let step = plan
        .steps
        .iter_mut()
        .find_map(|s| match s {
            Step::Kernel { shape, .. } if !shape.is_empty() => Some(shape),
            _ => None,
        })
        .expect("plan has a kernel step");
    step[0] += 1;
    assert!(
        audit_plan(graph, &plan).is_err(),
        "step shape contradicting the shape facts must be rejected"
    );
}
