//! Extensibility and newer-model integration tests: the converter
//! registry (paper §3.2 "extensible parser"), IsolationForest through the
//! standard tree strategies, ExtraTrees, and the compiled string-feature
//! path of §4.2.

use std::sync::Arc;

use hummingbird::backend::{Backend, Device, Op};
use hummingbird::compiler::strings::CompiledStringEncoder;
use hummingbird::compiler::{
    compile, compile_with_registry, CompileOptions, ConverterRegistry, TreeStrategy,
};
use hummingbird::ml::featurize::StringOneHotEncoder;
use hummingbird::ml::forest::ForestConfig;
use hummingbird::ml::isolation::{IsolationConfig, IsolationForest};
use hummingbird::ml::metrics::allclose;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Pipeline, Targets};
use hummingbird::tensor::Tensor;

fn data(n: usize, d: usize) -> (Tensor<f32>, Targets) {
    let x = Tensor::from_fn(&[n, d], |i| ((i[0] * 7 + i[1] * 3) % 13) as f32 * 0.3 - 1.0);
    let y = Targets::Classes((0..n).map(|i| (i % 2) as i64).collect());
    (x, y)
}

#[test]
fn registry_override_takes_precedence() {
    let (x, y) = data(60, 4);
    let pipe = fit_pipeline(
        &[OpSpec::Binarizer { threshold: 0.0 }, OpSpec::GaussianNb],
        &x,
        &y,
    );
    // Override the Binarizer with a converter that emits constant 1s —
    // observable as a different (but valid) model output.
    let mut reg = ConverterRegistry::new();
    reg.register(
        "Binarizer",
        Arc::new(|_op, b, x, _w| {
            let zeroed = b.mul_scalar(x, 0.0);
            Ok(b.add_scalar(zeroed, 1.0))
        }),
    );
    let stock = compile(&pipe, &CompileOptions::default()).unwrap();
    let custom = compile_with_registry(&pipe, &CompileOptions::default(), &reg).unwrap();
    let a = stock.predict_proba(&x).unwrap();
    let b = custom.predict_proba(&x).unwrap();
    assert_eq!(a.shape(), b.shape());
    assert_ne!(a.to_vec(), b.to_vec(), "override was ignored");
    // Sanity: the custom path equals scoring the NB on all-ones input.
    let ones = Tensor::full(&[x.shape()[0], 4], 1.0f32);
    let want = match &pipe.ops[1] {
        hummingbird::pipeline::FittedOp::GaussianNb(nb) => nb.predict_proba(&ones),
        _ => unreachable!(),
    };
    assert!(allclose(&b, &want, 1e-4, 1e-4));
}

#[test]
fn registry_can_emit_raw_graph_ops() {
    let (x, y) = data(40, 3);
    let pipe = fit_pipeline(&[OpSpec::StandardScaler], &x, &y);
    let mut reg = ConverterRegistry::new();
    // Replace the scaler with |x| via a raw op push.
    reg.register(
        "StandardScaler",
        Arc::new(|_op, b, x, _w| Ok(b.push(Op::Abs, vec![x]))),
    );
    let model = compile_with_registry(&pipe, &CompileOptions::default(), &reg).unwrap();
    let got = model.predict_proba(&x).unwrap();
    assert_eq!(got.to_vec(), x.map(|v| v.abs()).to_vec());
}

#[test]
fn isolation_forest_compiles_through_all_strategies() {
    let n = 200;
    let x = Tensor::from_fn(&[n, 3], |i| {
        if i[0] >= n - 3 {
            40.0
        } else {
            ((i[0] * 11 + i[1] * 5) % 17) as f32 * 0.2
        }
    });
    let forest = IsolationForest::fit(
        &x,
        IsolationConfig {
            n_trees: 25,
            sample_size: 64,
            ..Default::default()
        },
    );
    let want = forest.path_length(&x);
    let pipe = Pipeline::from_op(forest.ensemble.clone());
    for strategy in [
        TreeStrategy::Gemm,
        TreeStrategy::TreeTraversal,
        TreeStrategy::PerfectTreeTraversal,
    ] {
        let opts = CompileOptions {
            tree_strategy: strategy,
            optimize_pipeline: false,
            ..Default::default()
        };
        let model = match compile(&pipe, &opts) {
            Ok(m) => m,
            // Random isolation trees can exceed the PTT depth cap.
            Err(hummingbird::compiler::CompileError::PttTooDeep { .. }) => continue,
            Err(e) => panic!("{} failed: {e}", strategy.label()),
        };
        let got = model.predict(&x).unwrap();
        assert!(
            allclose(&got, &want, 1e-3, 1e-3),
            "{} diverges on isolation forest",
            strategy.label()
        );
    }
    // Outliers still score higher through the anomaly link.
    let s = forest.score(&x).to_vec();
    assert!(s[n - 1] > s[0], "outlier {} vs inlier {}", s[n - 1], s[0]);
}

#[test]
fn extra_trees_pipeline_compiles_and_matches() {
    let (x, y) = data(150, 6);
    let pipe = fit_pipeline(
        &[OpSpec::RandomForestClassifier(ForestConfig {
            n_trees: 8,
            max_depth: 4,
            extra_trees: true,
            ..Default::default()
        })],
        &x,
        &y,
    );
    let want = pipe.predict_proba(&x);
    for backend in Backend::ALL {
        let model = compile(
            &pipe,
            &CompileOptions {
                backend,
                ..Default::default()
            },
        )
        .unwrap();
        let got = model.predict_proba(&x).unwrap();
        assert!(
            allclose(&got, &want, 1e-4, 1e-4),
            "{backend:?} diverged on extra-trees"
        );
    }
}

#[test]
fn string_encoder_feeds_a_downstream_model() {
    // End-to-end string path: packed-byte one-hot → logistic regression.
    let colors: Vec<String> = (0..120)
        .map(|i| ["red", "green", "blue"][i % 3].to_string())
        .collect();
    let labels: Vec<i64> = (0..120).map(|i| i64::from(i % 3 == 0)).collect();
    let enc = StringOneHotEncoder::fit(std::slice::from_ref(&colors));
    let onehot = enc.transform(std::slice::from_ref(&colors));
    let pipe = fit_pipeline(
        &[OpSpec::LogisticRegression(Default::default())],
        &onehot,
        &Targets::Classes(labels.clone()),
    );
    // Compiled string encoder replaces the imperative front-end.
    let compiled_enc = CompiledStringEncoder::compile(&enc, Backend::Compiled, Device::cpu());
    let encoded = compiled_enc
        .transform(std::slice::from_ref(&colors))
        .unwrap();
    assert_eq!(encoded.to_vec(), onehot.to_vec());
    let model = compile(&pipe, &CompileOptions::default()).unwrap();
    let pred = model.predict(&encoded).unwrap();
    let acc = hummingbird::ml::metrics::accuracy(&pred, &labels);
    assert!(acc > 0.99, "string pipeline accuracy {acc}");
}
