//! Static memory planner validation: planned (arena-backed) execution
//! must be *bit-identical* to the reference-counted executor for every
//! tree strategy and full pipelines, plans must be deterministic, and
//! warm compiled inference must reach a zero-allocation steady state.

use hummingbird::backend::Backend;
use hummingbird::compiler::{compile, CompileOptions, TreeStrategy};
use hummingbird::ml::ensemble::{Aggregation, TreeEnsemble};
use hummingbird::ml::tree::Tree;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Pipeline, Targets};
use hummingbird::tensor::{DynTensor, Tensor};

/// Deterministic xorshift in [0, 1).
fn make_rand(seed: u64) -> impl FnMut() -> f32 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Builds a random binary tree of at most `depth` with `value_width`
/// leaf payloads (same builder as the strategy-equivalence suite).
fn random_tree(
    depth: usize,
    n_features: usize,
    value_width: usize,
    rand: &mut impl FnMut() -> f32,
) -> Tree {
    fn build(
        depth: usize,
        n_features: usize,
        value_width: usize,
        rand: &mut impl FnMut() -> f32,
        tree: &mut Tree,
    ) -> i32 {
        let id = tree.left.len();
        tree.left.push(-1);
        tree.right.push(-1);
        tree.feature.push(0);
        tree.threshold.push(0.0);
        for _ in 0..value_width {
            tree.values.push(rand() * 2.0 - 1.0);
        }
        if depth > 0 && rand() < 0.7 {
            let f = ((rand() * n_features as f32) as usize).min(n_features - 1);
            let l = build(depth - 1, n_features, value_width, rand, tree);
            let r = build(depth - 1, n_features, value_width, rand, tree);
            tree.left[id] = l;
            tree.right[id] = r;
            tree.feature[id] = f as u32;
            tree.threshold[id] = rand() * 2.0 - 1.0;
        }
        id as i32
    }
    let mut tree = Tree {
        left: vec![],
        right: vec![],
        feature: vec![],
        threshold: vec![],
        values: vec![],
        value_width,
    };
    build(depth, n_features, value_width, rand, &mut tree);
    tree
}

fn forest_pipeline(seed: u64, n_features: usize, n_classes: usize) -> Pipeline {
    let mut rand = make_rand(seed);
    let trees: Vec<Tree> = (0..8)
        .map(|_| random_tree(5, n_features, n_classes, &mut rand))
        .collect();
    Pipeline::from_op(TreeEnsemble {
        trees,
        n_features,
        n_classes,
        agg: Aggregation::AverageProba,
    })
}

fn batch(seed: u64, n_rows: usize, n_features: usize) -> Tensor<f32> {
    let mut rand = make_rand(seed);
    Tensor::from_fn(&[n_rows, n_features], |_| rand() * 2.0 - 1.0)
}

/// Runs the model through both executors on identical inputs and
/// asserts bit-identical outputs; returns true once a run was served
/// from a warm plan.
fn assert_planned_bitwise_identical(pipe: &Pipeline, strategy: TreeStrategy, x: &Tensor<f32>) {
    let opts = CompileOptions {
        tree_strategy: strategy,
        optimize_pipeline: false,
        ..Default::default()
    };
    let model = compile(pipe, &opts).expect("compile");
    let exe = model.executable();
    let inputs = [DynTensor::F32(x.clone())];
    let (want, ref_stats) = exe.run_refcount_with_stats(&inputs).expect("refcount run");
    assert!(!ref_stats.planned, "refcount path must not report planned");
    // First sighting builds + caches the plan but serves refcount;
    // subsequent runs must come from the warm arena plan.
    let mut saw_planned = false;
    for run in 0..3 {
        let (got, stats) = exe.run_with_stats(&inputs).expect("planned run");
        if run > 0 {
            assert!(
                stats.planned,
                "{}: warm run {run} not served from plan cache",
                strategy.label()
            );
        }
        saw_planned |= stats.planned;
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(
                g.as_f32().to_vec(),
                w.as_f32().to_vec(),
                "{}: planned output diverges bitwise from refcount",
                strategy.label()
            );
        }
    }
    assert!(saw_planned, "{}: plan never engaged", strategy.label());
}

#[test]
fn planned_execution_bit_identical_gemm() {
    let pipe = forest_pipeline(0x5eed_0001, 10, 3);
    let x = batch(0xfeed_0001, 17, 10);
    assert_planned_bitwise_identical(&pipe, TreeStrategy::Gemm, &x);
}

#[test]
fn planned_execution_bit_identical_tree_traversal() {
    let pipe = forest_pipeline(0x5eed_0002, 10, 3);
    let x = batch(0xfeed_0002, 17, 10);
    assert_planned_bitwise_identical(&pipe, TreeStrategy::TreeTraversal, &x);
}

#[test]
fn planned_execution_bit_identical_perfect_tree_traversal() {
    let pipe = forest_pipeline(0x5eed_0003, 10, 3);
    let x = batch(0xfeed_0003, 17, 10);
    assert_planned_bitwise_identical(&pipe, TreeStrategy::PerfectTreeTraversal, &x);
}

#[test]
fn planned_execution_bit_identical_e2e_pipeline() {
    // Full featurizer + model pipeline through the pipeline optimizer:
    // the planner must survive fused / rewritten graphs too.
    let n = 120;
    let d = 8;
    let x = Tensor::from_fn(&[n, d], |i| {
        let cls = (i[0] % 3) as f32;
        cls * 1.3 + ((i[0] * 13 + i[1] * 7) % 11) as f32 * 0.25 - 1.0
    });
    let y = Targets::Classes((0..n).map(|i| (i % 3) as i64).collect());
    let pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::RandomForestClassifier(Default::default()),
        ],
        &x,
        &y,
    );
    let model = compile(&pipe, &CompileOptions::default()).expect("compile");
    let exe = model.executable();
    let inputs = [DynTensor::F32(batch(0xfeed_0004, 33, d))];
    let (want, _) = exe.run_refcount_with_stats(&inputs).expect("refcount run");
    for _ in 0..3 {
        let (got, _) = exe.run_with_stats(&inputs).expect("planned run");
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.as_f32().to_vec(), w.as_f32().to_vec());
        }
    }
}

#[test]
fn warm_compiled_runs_make_zero_allocations() {
    // All three strategies must reach the allocation-free steady state —
    // TT/PTT exercise the strided gather/compare kernels that used to
    // materialize transposed cursor views every run.
    for strategy in [
        TreeStrategy::Gemm,
        TreeStrategy::TreeTraversal,
        TreeStrategy::PerfectTreeTraversal,
    ] {
        let pipe = forest_pipeline(0x5eed_0005, 12, 4);
        let opts = CompileOptions {
            tree_strategy: strategy,
            optimize_pipeline: false,
            ..Default::default()
        };
        let model = compile(&pipe, &opts).expect("compile");
        let exe = model.executable();
        let inputs = [DynTensor::F32(batch(0xfeed_0005, 64, 12))];
        // Run 1 builds the plan (refcount), run 2 warms up any lazy state,
        // run 3 must be the zero-allocation steady state.
        let mut last = None;
        for _ in 0..3 {
            let (_, stats) = exe.run_with_stats(&inputs).expect("run");
            last = Some(stats);
        }
        let stats = last.expect("ran");
        assert!(stats.planned, "{strategy:?}: steady-state run not planned");
        assert!(
            stats.arena_bytes > 0,
            "{strategy:?}: planned run reports no arena"
        );
        assert_eq!(
            stats.allocations, 0,
            "{strategy:?}: steady-state compiled inference must perform \
             zero tensor heap allocations"
        );
    }
}

#[test]
fn planned_peak_memory_beats_refcount() {
    // Acceptance criterion: on a GEMM forest the arena's liveness-based
    // reuse must cut peak tensor bytes by >= 30% vs the refcount path.
    let pipe = forest_pipeline(0x5eed_0006, 16, 3);
    let opts = CompileOptions {
        tree_strategy: TreeStrategy::Gemm,
        optimize_pipeline: false,
        ..Default::default()
    };
    let model = compile(&pipe, &opts).expect("compile");
    let exe = model.executable();
    let inputs = [DynTensor::F32(batch(0xfeed_0006, 1000, 16))];
    let (want, ref_stats) = exe.run_refcount_with_stats(&inputs).expect("refcount");
    let mut planned_stats = None;
    for _ in 0..2 {
        let (got, stats) = exe.run_with_stats(&inputs).expect("run");
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.as_f32().to_vec(), w.as_f32().to_vec());
        }
        planned_stats = Some(stats);
    }
    let planned = planned_stats.expect("ran");
    assert!(planned.planned);
    assert!(
        planned.peak_tensor_bytes * 10 <= ref_stats.peak_tensor_bytes * 7,
        "planned peak {} not >=30% below refcount peak {}",
        planned.peak_tensor_bytes,
        ref_stats.peak_tensor_bytes
    );
}

#[test]
fn plans_are_deterministic_per_batch_size() {
    let pipe = forest_pipeline(0x5eed_0007, 10, 3);
    let opts = CompileOptions {
        tree_strategy: TreeStrategy::Gemm,
        optimize_pipeline: false,
        ..Default::default()
    };
    let model = compile(&pipe, &opts).expect("compile");
    let exe = model.executable();
    let a = exe.plan_for_batch(64).expect("plan");
    let b = exe.plan_for_batch(64).expect("plan again");
    assert_eq!(a, b, "same batch size must produce identical plans");
    assert!(a.planned_kernels > 0, "no kernels planned");
    assert!(
        a.arena_bytes <= a.naive_bytes,
        "arena {} exceeds naive sum {}",
        a.arena_bytes,
        a.naive_bytes
    );
}

#[test]
fn plan_cache_serves_multiple_batch_sizes() {
    let pipe = forest_pipeline(0x5eed_0008, 10, 3);
    let opts = CompileOptions {
        tree_strategy: TreeStrategy::Gemm,
        optimize_pipeline: false,
        ..Default::default()
    };
    let model = compile(&pipe, &opts).expect("compile");
    let exe = model.executable();
    for rows in [8usize, 16, 8, 16, 8] {
        let inputs = [DynTensor::F32(batch(0xfeed_0008 + rows as u64, rows, 10))];
        let (want, _) = exe.run_refcount_with_stats(&inputs).expect("refcount");
        let (got, _) = exe.run_with_stats(&inputs).expect("run");
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.as_f32().to_vec(), w.as_f32().to_vec());
        }
    }
}

#[test]
fn eager_and_script_backends_stay_on_refcount_path() {
    let pipe = forest_pipeline(0x5eed_0009, 10, 3);
    for backend in [Backend::Eager, Backend::Script] {
        let opts = CompileOptions {
            backend,
            optimize_pipeline: false,
            ..Default::default()
        };
        let model = compile(&pipe, &opts).expect("compile");
        let exe = model.executable();
        let inputs = [DynTensor::F32(batch(0xfeed_0009, 12, 10))];
        for _ in 0..3 {
            let (_, stats) = exe.run_with_stats(&inputs).expect("run");
            assert!(!stats.planned, "{backend:?} must never use the arena plan");
        }
    }
}

#[test]
fn optimized_pipeline_with_injected_selector_still_plans() {
    // §5.2 feature-selection injection prepends a FeatureSelector to the
    // pipeline; width tracking must survive it (the selector carries its
    // fit-time input width) so the compiler still declares a concrete
    // [B, width] input fact and the planner is not defeated. Trees built
    // over 12 features rarely use all of them at depth 5, so injection
    // fires for this seed.
    let pipe = forest_pipeline(0x5eed_000a, 12, 3);
    let opts = CompileOptions {
        optimize_pipeline: true,
        ..Default::default()
    };
    let model = compile(&pipe, &opts).expect("compile");
    let exe = model.executable();
    let inputs = [DynTensor::F32(batch(0xfeed_000a, 48, 12))];
    let (want, _) = exe.run_refcount_with_stats(&inputs).expect("refcount");
    let mut planned = false;
    for _ in 0..3 {
        let (got, stats) = exe.run_with_stats(&inputs).expect("run");
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.as_f32().to_vec(), w.as_f32().to_vec());
        }
        planned |= stats.planned;
    }
    assert!(
        planned,
        "optimize_pipeline: true must not defeat the memory planner"
    );
}
