//! Fraud-detection serving scenario (the paper's §1 motivating workload):
//! a gradient-boosting model served both in batch (analytics) and
//! request/response (interactive) settings, across baselines, backends,
//! and tree-compilation strategies.
//!
//! ```text
//! cargo run --release --example fraud_detection
//! ```

use std::time::Instant;

use hummingbird::backend::{Backend, Device};
use hummingbird::compiler::{compile, CompileOptions, TreeStrategy};
use hummingbird::ml::baselines::{OnnxLikeForest, SklearnLikeForest};
use hummingbird::ml::gbdt::{GbdtConfig, GradientBoostingClassifier};
use hummingbird::ml::metrics::accuracy;
use hummingbird::pipeline::Pipeline;
use hummingbird::tensor::Tensor;

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    // Imbalanced binary task with the Kaggle fraud schema (28 features).
    let spec = &hummingbird::data::TREE_BENCH_SPECS[0];
    let ds = hummingbird::data::tree_bench_dataset(spec, 12_000, 99);
    let pos_rate = ds.y_train.classes().iter().sum::<i64>() as f64 / ds.n_train() as f64;
    println!(
        "fraud-like dataset: {} rows, positive rate {:.1}%",
        ds.n_train(),
        pos_rate * 100.0
    );

    let model = GradientBoostingClassifier::new(GbdtConfig {
        n_rounds: 50,
        max_depth: 6,
        ..GbdtConfig::xgboost_like()
    })
    .fit(&ds.x_train, ds.y_train.classes());
    let acc = accuracy(&model.predict(&ds.x_test), ds.y_test.classes());
    println!(
        "booster: {} trees, test accuracy {:.3}\n",
        model.ensemble.trees.len(),
        acc
    );

    let e = &model.ensemble;
    let sklearn = SklearnLikeForest::new(e);
    let onnx = OnnxLikeForest::new(e);

    // --- Batch serving: the whole test set at once. ---
    println!("batch serving ({} records):", ds.n_test());
    println!(
        "  sklearn-like (parallel):  {:7.2} ms",
        time_ms(|| {
            sklearn.predict_batch(&ds.x_test);
        })
    );
    println!(
        "  onnx-like (single core):  {:7.2} ms",
        time_ms(|| {
            onnx.predict_batch(&ds.x_test);
        })
    );
    for backend in Backend::ALL {
        let compiled = compile(
            &Pipeline::from_op(e.clone()),
            &CompileOptions {
                backend,
                expected_batch: ds.n_test(),
                ..Default::default()
            },
        )
        .unwrap();
        let strategy = compiled.report[0].strategy.unwrap();
        println!(
            "  {:<24}  {:7.2} ms  (strategy {})",
            backend.label(),
            time_ms(|| {
                compiled.predict_proba(&ds.x_test).unwrap();
            }),
            strategy.label()
        );
    }

    // --- Request/response: one transaction at a time. ---
    let n1 = 200;
    println!("\nrequest/response ({n1} single-record calls):");
    let one_by_one = |f: &dyn Fn(&Tensor<f32>)| {
        time_ms(|| {
            for r in 0..n1 {
                let row = ds.x_test.slice(0, r, r + 1).to_contiguous();
                f(&row);
            }
        })
    };
    println!(
        "  sklearn-like:  {:7.2} ms",
        one_by_one(&|x| {
            sklearn.predict_batch(x);
        })
    );
    println!(
        "  onnx-like:     {:7.2} ms",
        one_by_one(&|x| {
            onnx.predict_batch(x);
        })
    );
    for strategy in [TreeStrategy::Gemm, TreeStrategy::TreeTraversal] {
        let compiled = compile(
            &Pipeline::from_op(e.clone()),
            &CompileOptions {
                backend: Backend::Compiled,
                device: Device::cpu1(),
                tree_strategy: strategy,
                expected_batch: 1,
                ..Default::default()
            },
        )
        .unwrap();
        println!(
            "  HB-Compiled/{:<5} {:6.2} ms",
            strategy.label(),
            one_by_one(&|x| {
                compiled.predict_proba(x).unwrap();
            })
        );
    }
    println!("\n(the compiled tensor path serves both settings from one artifact)");
}
