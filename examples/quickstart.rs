//! Quickstart: train a random forest, compile it to tensor computations,
//! and verify the compiled model agrees with the imperative scorer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hummingbird::compiler::{compile, CompileOptions};
use hummingbird::ml::forest::{ForestConfig, RandomForestClassifier};
use hummingbird::ml::metrics::{accuracy, allclose};
use hummingbird::pipeline::Pipeline;

fn main() {
    // 1. Data: a synthetic binary classification task.
    let ds = hummingbird::data::synthetic_classification(4_000, 20, 2, 7);
    println!(
        "dataset: {} train rows, {} test rows, {} features",
        ds.n_train(),
        ds.n_test(),
        ds.n_features()
    );

    // 2. Train a scikit-learn-style random forest.
    let forest = RandomForestClassifier::new(ForestConfig {
        n_trees: 50,
        max_depth: 8,
        ..ForestConfig::default()
    })
    .fit(&ds.x_train, ds.y_train.classes());
    let acc = accuracy(&forest.predict(&ds.x_test), ds.y_test.classes());
    println!(
        "forest: {} trees, test accuracy {:.3}",
        forest.ensemble.trees.len(),
        acc
    );

    // 3. Compile the fitted model into a tensor DAG (Hummingbird).
    let pipe = Pipeline::from_op(forest.clone());
    let model = compile(&pipe, &CompileOptions::default()).expect("compilation succeeds");
    for op in &model.report {
        println!(
            "compiled operator {} (strategy: {})",
            op.signature,
            op.strategy.map(|s| s.label()).unwrap_or("-")
        );
    }

    // 4. Outputs must match the imperative scorer (the paper's
    //    output-validation experiment, rtol = atol = 1e-5).
    let reference = forest.predict_proba(&ds.x_test);
    let compiled = model.predict_proba(&ds.x_test).expect("scoring succeeds");
    assert!(
        allclose(&compiled, &reference, 1e-5, 1e-5),
        "outputs diverge"
    );
    println!("output validation: compiled == imperative (1e-5)");

    // 5. Quick timing comparison on the test batch.
    let t = std::time::Instant::now();
    let _ = forest.predict_proba(&ds.x_test);
    let imp = t.elapsed();
    let t = std::time::Instant::now();
    let _ = model.predict_proba(&ds.x_test).unwrap();
    let comp = t.elapsed();
    println!("imperative: {imp:?}, compiled tensor path: {comp:?}");
}
