//! Model artifacts: save a fitted pipeline to a single file, load it in a
//! "fresh process", compile, and serve — the paper's §2.1 deployment
//! story ("packaging a trained pipeline into a single artifact is common
//! practice").
//!
//! ```text
//! cargo run --release --example model_artifact
//! ```

use hummingbird::compiler::{compile, CompileOptions};
use hummingbird::ml::featurize::ImputeStrategy;
use hummingbird::ml::gbdt::GbdtConfig;
use hummingbird::ml::metrics::allclose;
use hummingbird::pipeline::{fit_pipeline, io, OpSpec};

fn main() {
    // Train a realistic pipeline: imputation → scaling → boosting.
    let ds =
        hummingbird::data::tree_bench_dataset(&hummingbird::data::TREE_BENCH_SPECS[0], 6_000, 21);
    let pipe = fit_pipeline(
        &[
            OpSpec::SimpleImputer {
                strategy: ImputeStrategy::Mean,
            },
            OpSpec::StandardScaler,
            OpSpec::GbdtClassifier(GbdtConfig {
                n_rounds: 30,
                max_depth: 4,
                ..Default::default()
            }),
        ],
        &ds.x_train,
        &ds.y_train,
    );
    let reference = pipe.predict_proba(&ds.x_test);

    // Save the fitted pipeline as one self-contained artifact.
    let path = std::env::temp_dir().join("hummingbird_model.json");
    io::save(&pipe, &path).expect("artifact saves");
    let bytes = std::fs::metadata(&path).unwrap().len();
    println!(
        "saved {}-operator pipeline to {} ({bytes} bytes)",
        pipe.len(),
        path.display()
    );

    // "New process": load, compile, serve — no training code involved.
    let loaded = io::load(&path).expect("artifact loads");
    let model = compile(&loaded, &CompileOptions::default()).expect("artifact compiles");
    let served = model.predict_proba(&ds.x_test).expect("artifact serves");
    assert!(
        allclose(&served, &reference, 1e-5, 1e-5),
        "artifact round-trip diverged"
    );
    println!(
        "round-trip OK: {} test records scored identically after save → load → compile",
        ds.n_test()
    );
    let _ = std::fs::remove_file(path);
}
