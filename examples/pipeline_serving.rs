//! End-to-end predictive-pipeline serving with the §5.2
//! runtime-independent optimizations: a featurization chain (imputation →
//! one-hot → scaling → feature selection → logistic regression) compiled
//! with and without feature-selection push-down.
//!
//! ```text
//! cargo run --release --example pipeline_serving
//! ```

use std::time::Instant;

use hummingbird::compiler::{compile, optimizer, CompileOptions};
use hummingbird::ml::featurize::ImputeStrategy;
use hummingbird::ml::linear::LinearConfig;
use hummingbird::ml::metrics::{accuracy, allclose};
use hummingbird::pipeline::{fit_pipeline, OpSpec};

fn main() {
    // Nomao-like categorical data with missing values (119 columns).
    let ds = hummingbird::data::nomao_categorical(8_000, 3);
    println!(
        "dataset: {} rows × {} categorical features (with NaNs)",
        ds.n_train(),
        ds.n_features()
    );

    let specs = vec![
        OpSpec::SimpleImputer {
            strategy: ImputeStrategy::Mean,
        },
        OpSpec::OneHotEncoder,
        OpSpec::StandardScaler,
        OpSpec::SelectPercentile { percentile: 20 },
        OpSpec::LogisticRegression(LinearConfig {
            epochs: 60,
            ..Default::default()
        }),
    ];
    let t = Instant::now();
    let pipe = fit_pipeline(&specs, &ds.x_train, &ds.y_train);
    println!(
        "fitted {}-operator pipeline in {:?}",
        pipe.len(),
        t.elapsed()
    );
    let acc = accuracy(&pipe.predict(&ds.x_test), ds.y_test.classes());
    println!("test accuracy: {acc:.3}\n");

    // Show what the optimizer does to the pipeline structure.
    let rewritten = optimizer::optimize_pipeline(&pipe);
    let sigs = |p: &hummingbird::pipeline::Pipeline| {
        p.ops
            .iter()
            .map(|o| o.signature())
            .collect::<Vec<_>>()
            .join(" → ")
    };
    println!("original:  {}", sigs(&pipe));
    println!("optimized: {}\n", sigs(&rewritten));

    // Compile both ways and compare serving latency.
    let time_scan = |optimize: bool| {
        let model = compile(
            &pipe,
            &CompileOptions {
                optimize_pipeline: optimize,
                expected_batch: ds.n_test(),
                ..Default::default()
            },
        )
        .unwrap();
        let out = model.predict_proba(&ds.x_test).unwrap();
        let t = Instant::now();
        for _ in 0..5 {
            model.predict_proba(&ds.x_test).unwrap();
        }
        (out, t.elapsed().as_secs_f64() / 5.0 * 1e3)
    };
    let t = Instant::now();
    let reference = pipe.predict_proba(&ds.x_test);
    let skl_ms = t.elapsed().as_secs_f64() * 1e3;
    let (plain_out, plain_ms) = time_scan(false);
    let (pushed_out, pushed_ms) = time_scan(true);

    println!("full-test-scan latency:");
    println!("  imperative (sklearn-like):     {skl_ms:7.2} ms");
    println!("  compiled, no push-down:        {plain_ms:7.2} ms");
    println!("  compiled, selection push-down: {pushed_ms:7.2} ms");

    // Semantics are preserved by both paths.
    assert!(allclose(&plain_out, &reference, 1e-4, 1e-4));
    assert!(allclose(&pushed_out, &reference, 1e-4, 1e-4));
    println!("\noutput validation: all three paths agree (1e-4)");
}
