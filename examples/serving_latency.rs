//! Prediction-serving latency percentiles: the operational view behind
//! the paper's title. A stream of scoring requests with mixed batch sizes
//! hits one compiled artifact; we report p50/p95/p99 per system, showing
//! why a serving team cares about the ONNX-ML-vs-batch-engine trade-off
//! that Hummingbird collapses into one artifact.
//!
//! ```text
//! cargo run --release --example serving_latency
//! ```

use std::time::Instant;

use hummingbird::backend::Backend;
use hummingbird::compiler::{compile, CompileOptions};
use hummingbird::ml::baselines::{OnnxLikeForest, SklearnLikeForest};
use hummingbird::ml::gbdt::GbdtConfig;
use hummingbird::pipeline::{fit_pipeline, OpSpec};
use hummingbird::tensor::Tensor;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

fn main() {
    let ds =
        hummingbird::data::tree_bench_dataset(&hummingbird::data::TREE_BENCH_SPECS[4], 10_000, 3);
    let pipe = fit_pipeline(
        &[OpSpec::GbdtClassifier(GbdtConfig {
            n_rounds: 40,
            max_depth: 5,
            ..Default::default()
        })],
        &ds.x_train,
        &ds.y_train,
    );
    let ensemble = match &pipe.ops[0] {
        hummingbird::pipeline::FittedOp::TreeEnsemble(e) => e.clone(),
        _ => unreachable!(),
    };
    println!(
        "higgs-like booster: {} trees; simulating a request stream (80% single record, 15% batch 64, 5% batch 1024)\n",
        ensemble.trees.len()
    );

    // The request mix: mostly interactive lookups, some analytics bursts.
    let requests: Vec<usize> = (0..400)
        .map(|i| match i % 20 {
            0 => 1024,
            1..=3 => 64,
            _ => 1,
        })
        .collect();

    let sklearn = SklearnLikeForest::new(&ensemble).with_dispatch_overhead();
    let onnx = OnnxLikeForest::new(&ensemble).with_dispatch_overhead();
    let hb = compile(
        &pipe,
        &CompileOptions {
            backend: Backend::Compiled,
            expected_batch: 64,
            ..Default::default()
        },
    )
    .unwrap();

    let systems: Vec<(&str, Box<dyn Fn(&Tensor<f32>)>)> = vec![
        (
            "sklearn-like",
            Box::new(move |x| {
                sklearn.predict_batch(x);
            }),
        ),
        (
            "onnx-like",
            Box::new(move |x| {
                onnx.predict_batch(x);
            }),
        ),
        (
            "HB-Compiled",
            Box::new(move |x| {
                hb.predict_proba(x).unwrap();
            }),
        ),
    ];

    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>12}",
        "system", "p50", "p95", "p99", "total"
    );
    for (name, score) in &systems {
        let mut lat = Vec::with_capacity(requests.len());
        let mut cursor = 0usize;
        let t0 = Instant::now();
        for &batch in &requests {
            let end = (cursor + batch).min(ds.n_test());
            let start = if end - cursor < batch { 0 } else { cursor };
            let x = ds
                .x_test
                .slice(0, start, start + batch.min(ds.n_test()))
                .to_contiguous();
            cursor = end % ds.n_test();
            let t = Instant::now();
            score(&x);
            lat.push(t.elapsed().as_secs_f64() * 1e3);
        }
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "{:>14} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>10.1}ms",
            name,
            percentile(&lat, 0.5),
            percentile(&lat, 0.95),
            percentile(&lat, 0.99),
            t0.elapsed().as_secs_f64() * 1e3
        );
    }
    println!("\n(one compiled artifact serves the whole mix; baselines specialize for one regime)");
}
