//! Fault-tolerant serving: the degradation ladder, deadlines, admission
//! control, and chaos testing with injected faults.
//!
//! Run with: `cargo run --release --example resilient_serving`

use std::time::Duration;

use hummingbird::prelude::*;
use hummingbird::serve::FaultScope;

fn main() {
    // Train a small fraud-detection-style pipeline.
    let ds = hummingbird::data::synthetic_classification(400, 12, 2, 7);
    let pipe = hummingbird::pipeline::fit_pipeline(
        &[
            hummingbird::pipeline::OpSpec::StandardScaler,
            hummingbird::pipeline::OpSpec::RandomForestClassifier(
                hummingbird::ml::forest::ForestConfig {
                    n_trees: 16,
                    max_depth: 6,
                    ..Default::default()
                },
            ),
        ],
        &ds.x_train,
        &ds.y_train,
    );

    // 1. Healthy serving: the best rung (Compiled) answers.
    let server = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
    let served = server.predict_detailed(&ds.x_test).unwrap();
    println!(
        "healthy:      rung={:<9} retries={} latency={:?}",
        served.rung.label(),
        served.retries,
        served.elapsed
    );

    // 2. The optimizing backend's compile pass is broken: requests
    //    transparently degrade to the next rung, same answers.
    let config = ServeConfig {
        faults: FaultPlan {
            compile_fail: true,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    };
    let degraded = ServingModel::new(&pipe, config).unwrap();
    let d = degraded.predict_detailed(&ds.x_test).unwrap();
    let max_diff = served
        .output
        .iter()
        .zip(d.output.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "compile_fail: rung={:<9} max |Δ| vs healthy = {max_diff:.1e} (ladder keeps answers)",
        d.rung.label()
    );

    // 3. Transient kernel faults: absorbed by same-rung retries.
    let config = ServeConfig {
        faults: FaultPlan {
            kernel_error: true,
            scope: FaultScope::FirstRuns(2),
            ..FaultPlan::none()
        },
        max_retries: 3,
        ..ServeConfig::default()
    };
    let flaky = ServingModel::new(&pipe, config).unwrap();
    let f = flaky.predict_detailed(&ds.x_test).unwrap();
    println!(
        "transient:    rung={:<9} retries={} (fault retried, not degraded)",
        f.rung.label(),
        f.retries
    );

    // 4. Silent NaN corruption: detected, served from the clean
    //    reference scorer instead.
    let config = ServeConfig {
        faults: FaultPlan {
            nan_poison: true,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    };
    let poisoned = ServingModel::new(&pipe, config).unwrap();
    let p = poisoned.predict_detailed(&ds.x_test).unwrap();
    println!(
        "nan_poison:   rung={:<9} finite={} (corruption caught, not returned)",
        p.rung.label(),
        p.output.iter().all(|v| v.is_finite())
    );

    // 5. Deadlines: slow kernels yield a typed error, not a late answer.
    let config = ServeConfig {
        faults: FaultPlan {
            slow_kernel: Some(Duration::from_millis(20)),
            ..FaultPlan::none()
        },
        deadline: Some(Duration::from_millis(5)),
        ..ServeConfig::default()
    };
    let slow = ServingModel::new(&pipe, config).unwrap();
    match slow.predict(&ds.x_test) {
        Err(ServeError::DeadlineExceeded { elapsed, deadline }) => {
            println!("slow_kernel:  DeadlineExceeded after {elapsed:?} (budget {deadline:?})")
        }
        other => println!("slow_kernel:  unexpected {other:?}"),
    }

    // 6. Malformed requests are typed errors before any kernel runs.
    let narrow = Tensor::from_fn(&[2, 5], |i| i[1] as f32);
    match server.predict(&narrow) {
        Err(ServeError::BadRequest(msg)) => println!("bad request:  {msg}"),
        other => println!("bad request:  unexpected {other:?}"),
    }

    let stats = server.stats();
    println!(
        "stats:        served={} degraded={} bad_requests={} deadline_misses={}",
        stats.total_served(),
        stats.degraded,
        stats.bad_requests,
        stats.deadline_misses
    );
}
