//! Fault-tolerant serving: the degradation ladder, deadlines, admission
//! control, chaos testing with injected faults — the concurrent serving
//! supervisor (worker pool, panic isolation, canary quarantine) — and
//! the multi-model store (per-model fault domains, shared constants,
//! atomic hot-swap with canary rollback).
//!
//! Run with: `cargo run --release --example resilient_serving`

use std::sync::Arc;
use std::time::Duration;

use hummingbird::prelude::*;
use hummingbird::serve::FaultScope;

fn main() {
    // Train a small fraud-detection-style pipeline.
    let ds = hummingbird::data::synthetic_classification(400, 12, 2, 7);
    let pipe = hummingbird::pipeline::fit_pipeline(
        &[
            hummingbird::pipeline::OpSpec::StandardScaler,
            hummingbird::pipeline::OpSpec::RandomForestClassifier(
                hummingbird::ml::forest::ForestConfig {
                    n_trees: 16,
                    max_depth: 6,
                    ..Default::default()
                },
            ),
        ],
        &ds.x_train,
        &ds.y_train,
    );

    // 1. Healthy serving: the best rung (Compiled) answers.
    let server = ServingModel::new(&pipe, ServeConfig::default()).unwrap();
    let served = server.predict_detailed(&ds.x_test).unwrap();
    println!(
        "healthy:      rung={:<9} retries={} latency={:?}",
        served.rung.label(),
        served.retries,
        served.elapsed
    );

    // 2. The optimizing backend's compile pass is broken: requests
    //    transparently degrade to the next rung, same answers.
    let config = ServeConfig {
        faults: FaultPlan {
            compile_fail: true,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    };
    let degraded = ServingModel::new(&pipe, config).unwrap();
    let d = degraded.predict_detailed(&ds.x_test).unwrap();
    let max_diff = served
        .output
        .iter()
        .zip(d.output.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "compile_fail: rung={:<9} max |Δ| vs healthy = {max_diff:.1e} (ladder keeps answers)",
        d.rung.label()
    );

    // 3. Transient kernel faults: absorbed by same-rung retries.
    let config = ServeConfig {
        faults: FaultPlan {
            kernel_error: true,
            scope: FaultScope::FirstRuns(2),
            ..FaultPlan::none()
        },
        max_retries: 3,
        ..ServeConfig::default()
    };
    let flaky = ServingModel::new(&pipe, config).unwrap();
    let f = flaky.predict_detailed(&ds.x_test).unwrap();
    println!(
        "transient:    rung={:<9} retries={} (fault retried, not degraded)",
        f.rung.label(),
        f.retries
    );

    // 4. Silent NaN corruption: detected, served from the clean
    //    reference scorer instead.
    let config = ServeConfig {
        faults: FaultPlan {
            nan_poison: true,
            ..FaultPlan::none()
        },
        ..ServeConfig::default()
    };
    let poisoned = ServingModel::new(&pipe, config).unwrap();
    let p = poisoned.predict_detailed(&ds.x_test).unwrap();
    println!(
        "nan_poison:   rung={:<9} finite={} (corruption caught, not returned)",
        p.rung.label(),
        p.output.iter().all(|v| v.is_finite())
    );

    // 5. Deadlines: slow kernels yield a typed error, not a late answer.
    let config = ServeConfig {
        faults: FaultPlan {
            slow_kernel: Some(Duration::from_millis(20)),
            ..FaultPlan::none()
        },
        deadline: Some(Duration::from_millis(5)),
        ..ServeConfig::default()
    };
    let slow = ServingModel::new(&pipe, config).unwrap();
    match slow.predict(&ds.x_test) {
        Err(ServeError::DeadlineExceeded { elapsed, deadline }) => {
            println!("slow_kernel:  DeadlineExceeded after {elapsed:?} (budget {deadline:?})")
        }
        other => println!("slow_kernel:  unexpected {other:?}"),
    }

    // 6. Malformed requests are typed errors before any kernel runs.
    let narrow = Tensor::from_fn(&[2, 5], |i| i[1] as f32);
    match server.predict(&narrow) {
        Err(ServeError::BadRequest(msg)) => println!("bad request:  {msg}"),
        other => println!("bad request:  unexpected {other:?}"),
    }

    let stats = server.stats();
    println!(
        "stats:        served={} degraded={} bad_requests={} deadline_misses={}",
        stats.total_served(),
        stats.degraded,
        stats.bad_requests,
        stats.deadline_misses
    );

    // 7. The supervisor: a fixed worker pool driven from many client
    //    threads. This model starts NaN-poisoned (a bad deploy); the
    //    background canary quarantines the corrupt rungs, traffic rides
    //    the reference floor, and once the fault clears (FirstRuns) a
    //    canary-validated probe lifts the quarantine — clients never see
    //    a NaN and never block on a dead worker.
    let config = ServeConfig {
        faults: FaultPlan {
            nan_poison: true,
            scope: FaultScope::FirstRuns(12),
            ..FaultPlan::none()
        },
        canary_period: 1,
        watchdog_interval: Duration::from_millis(5),
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(5),
        },
        ..ServeConfig::default()
    };
    let model = ServingModel::new(&pipe, config).unwrap();
    let sup = Arc::new(Supervisor::spawn(model, 4));

    // A panicking request is isolated: typed error, worker survives.
    match sup.inject_worker_panic() {
        Err(ServeError::Internal(msg)) => println!("panic pill:   typed Internal: {msg}"),
        other => println!("panic pill:   unexpected {other:?}"),
    }

    let clients: Vec<_> = (0..4)
        .map(|c| {
            let sup = Arc::clone(&sup);
            let x = ds.x_test.clone();
            std::thread::spawn(move || {
                let mut by_rung = std::collections::BTreeMap::new();
                for _ in 0..60 {
                    if let Ok(s) = sup.predict_detailed(&x) {
                        assert!(s.output.iter().all(|v| v.is_finite()), "poison leaked");
                        *by_rung.entry(s.rung.label()).or_insert(0u32) += 1;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                (c, by_rung)
            })
        })
        .collect();
    for t in clients {
        let (c, by_rung) = t.join().expect("client panicked");
        println!("client {c}:     served by {by_rung:?}");
    }

    let health = sup.health();
    println!(
        "supervisor:   workers {}/{} alive, ready={}, degraded_mode={}",
        health.workers_alive, health.n_workers, health.model.ready, health.model.degraded_mode
    );
    for rung in &health.model.rungs {
        println!(
            "  rung {:<9} quarantined={} deadline_blows={} served={}",
            rung.rung.label(),
            rung.quarantined,
            rung.deadline_blows,
            rung.served
        );
    }
    println!("incident log  (monotonic seq, ring-buffered):");
    for inc in sup.incidents().iter().take(10) {
        println!(
            "  #{:<3} {:<18} rung={:<9} {}",
            inc.seq,
            inc.kind.label(),
            inc.rung.map_or("-", |r| r.label()),
            inc.detail
        );
    }
    sup.drain();
    println!("drained:      {:?}", sup.predict(&ds.x_test).err());

    // 8. The coalescing front door: many clients submit single records;
    //    the batcher gathers them into deadline-aware micro-batches
    //    (power-of-two buckets), executes each batch once through the
    //    planned path, and scatters per-record answers back. Requests
    //    whose deadline is unmeetable given the observed execution EWMA
    //    are shed early with a typed `Expired` instead of served late.
    let config = ServeConfig {
        coalesce: Some(CoalesceConfig::default()),
        deadline: Some(Duration::from_millis(50)),
        ..ServeConfig::default()
    };
    let model = ServingModel::new(&pipe, config).unwrap();
    let sup = Arc::new(Supervisor::spawn(model, 4));

    let clients: Vec<_> = (0..8)
        .map(|c| {
            let sup = Arc::clone(&sup);
            std::thread::spawn(move || {
                let row = Tensor::from_fn(&[1, 12], move |i| ((c * 5 + i[1]) % 13) as f32 * 0.3);
                let (mut ok, mut shed) = (0u32, 0u32);
                for _ in 0..200 {
                    match sup.predict_one(&row) {
                        Ok(_) => ok += 1,
                        Err(ServeError::Expired { .. }) => shed += 1,
                        Err(e) => panic!("unexpected serve error: {e}"),
                    }
                }
                (ok, shed)
            })
        })
        .collect();
    let (mut ok, mut shed) = (0u32, 0u32);
    for t in clients {
        let (o, s) = t.join().expect("client panicked");
        ok += o;
        shed += s;
    }

    // Backpressure is the admission-control view: queue depth against
    // capacity, the execution-time EWMA the shedding oracle uses, and
    // whether sustained pressure has pushed the batcher into brownout.
    if let Some(bp) = sup.backpressure() {
        println!(
            "coalescing:   ok={ok} shed={shed} queue={}/{} ewma={:?} brownout={}",
            bp.queue_depth, bp.queue_capacity, bp.exec_ewma, bp.in_brownout
        );
    }
    let stats = sup.model().stats();
    let lat = sup.latency();
    println!(
        "coalescing:   {} records in {} batches; queue-wait p50/p95/p99 {}; e2e p99 {:?}",
        ok,
        stats.coalesced_batches,
        lat.queue_wait.format_p50_p95_p99(),
        lat.end_to_end.quantile(0.99)
    );
    sup.drain();

    // 9. The multi-model store: three models behind one front door, one
    //    of them NaN-poisoned. Each model keeps its own fault domain —
    //    the poisoned model degrades to its reference rung while its
    //    neighbors keep serving from the compiled rung, every incident
    //    tagged with the model that caused it. Identical constants
    //    across models are interned once in the store's content-hashed
    //    pool.
    let store = Arc::new(ModelStore::new(StoreConfig::default()));
    store
        .register("fraud", &pipe, ServeConfig::default())
        .unwrap();
    store
        .register("fraud-eu", &pipe, ServeConfig::default())
        .unwrap();
    store
        .register(
            "ranker",
            &pipe,
            ServeConfig {
                faults: FaultPlan {
                    nan_poison: true,
                    ..FaultPlan::none()
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
    println!(
        "store:        3 models, pool {} entries, measured {} KiB (twin shares its constants)",
        store.pool_entries(),
        store.measured_bytes() / 1024
    );
    let sup = Supervisor::spawn_store(Arc::clone(&store), 4);
    for name in ["fraud", "fraud-eu", "ranker"] {
        let served = sup.predict_detailed_for(name, &ds.x_test).unwrap();
        println!(
            "  {name:<10} rung={:<9} finite={}",
            served.rung.label(),
            served.output.iter().all(|v| v.is_finite())
        );
    }

    // Atomic hot-swap: an identical retrain deploys behind a canary
    // (every canary_fraction-th request is divergence-checked against
    // the active version) and auto-promotes once it proves clean.
    store
        .deploy("fraud", &pipe, ServeConfig::default())
        .unwrap();
    while store.deploying("fraud") {
        let _ = sup.predict_for("fraud", &ds.x_test);
    }
    println!(
        "hot-swap:     fraud now at v{} (canary auto-promoted)",
        store.version("fraud").unwrap_or(0)
    );
    println!("store incidents (tagged name@vN):");
    for inc in store.incidents().iter().take(8) {
        println!(
            "  #{:<3} {:<14} model={:<10} {}",
            inc.seq,
            inc.kind.label(),
            inc.model.as_deref().unwrap_or("-"),
            inc.detail
        );
    }
    sup.drain();
}
