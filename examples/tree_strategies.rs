//! The three tree-compilation strategies side by side (paper §4.1 and
//! Figure 8): GEMM, TreeTraversal, and PerfectTreeTraversal over varying
//! tree depth and batch size, plus the §5.1 heuristic's pick.
//!
//! ```text
//! cargo run --release --example tree_strategies
//! ```

use std::time::Instant;

use hummingbird::backend::{Backend, Device};
use hummingbird::compiler::strategies::heuristic_strategy;
use hummingbird::compiler::{compile, CompileOptions, TreeStrategy};
use hummingbird::ml::forest::{ForestConfig, RandomForestClassifier};
use hummingbird::pipeline::Pipeline;

fn main() {
    let ds = hummingbird::data::strategy_dataset(17);
    println!(
        "synthetic strategy dataset: {} rows × {} features\n",
        ds.n_train(),
        ds.n_features()
    );
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>10}   heuristic",
        "depth", "batch", "GEMM", "TT", "PTT"
    );

    for depth in [3usize, 7, 12] {
        let forest = RandomForestClassifier::new(ForestConfig {
            n_trees: 40,
            max_depth: depth,
            ..ForestConfig::default()
        })
        .fit(&ds.x_train, ds.y_train.classes());
        let pipe = Pipeline::from_op(forest);

        for batch in [1usize, 1000] {
            let x = ds
                .x_test
                .slice(0, 0, batch.min(ds.n_test()))
                .to_contiguous();
            let mut cells = Vec::new();
            for strategy in [
                TreeStrategy::Gemm,
                TreeStrategy::TreeTraversal,
                TreeStrategy::PerfectTreeTraversal,
            ] {
                let opts = CompileOptions {
                    backend: Backend::Compiled,
                    device: Device::cpu1(),
                    tree_strategy: strategy,
                    expected_batch: batch,
                    optimize_pipeline: false,
                    ..Default::default()
                };
                match compile(&pipe, &opts) {
                    Ok(model) => {
                        model.predict_proba(&x).unwrap(); // warm-up
                        let t = Instant::now();
                        for _ in 0..3 {
                            model.predict_proba(&x).unwrap();
                        }
                        cells.push(format!("{:.2}ms", t.elapsed().as_secs_f64() / 3.0 * 1e3));
                    }
                    Err(e) => cells.push(format!("({e})")),
                }
            }
            // What would the §5.1 heuristics have picked?
            let ensemble = match &pipe.ops[0] {
                hummingbird::pipeline::FittedOp::TreeEnsemble(e) => e,
                _ => unreachable!(),
            };
            let opts = CompileOptions {
                expected_batch: batch,
                ..Default::default()
            };
            let auto = heuristic_strategy(ensemble, &opts);
            println!(
                "{:>6} {:>6} {:>10} {:>10} {:>10}   {}",
                depth,
                batch,
                cells[0],
                cells[1],
                cells[2],
                auto.label()
            );
        }
    }
    println!("\n(GEMM trades exponential redundancy for GEMM-friendly compute: good when");
    println!(" shallow or tiny batches; traversal strategies win as depth/batch grow.)");
}
