//! Hardware-accelerator offload with the simulated-device model: the same
//! compiled graph bound to the CPU and to modeled K80/P100/V100 GPUs,
//! plus the FIL-like custom-kernel baseline and a modeled OOM.
//!
//! GPU latencies printed here are **simulated** (roofline model over the
//! compiled graph's kernels — see DESIGN.md); outputs are always computed
//! on the host and stay bit-identical across devices.
//!
//! ```text
//! cargo run --release --example gpu_simulation
//! ```

use hummingbird::backend::device::{K80, P100, V100};
use hummingbird::backend::{Backend, Device, ExecError};
use hummingbird::compiler::fil::FilForest;
use hummingbird::compiler::{compile, CompileOptions, HbError};
use hummingbird::ml::gbdt::{GbdtConfig, GradientBoostingClassifier};
use hummingbird::pipeline::Pipeline;

fn main() {
    let spec = &hummingbird::data::TREE_BENCH_SPECS[5]; // airline-like
    let ds = hummingbird::data::tree_bench_dataset(spec, 20_000, 5);
    let model = GradientBoostingClassifier::new(GbdtConfig {
        n_rounds: 60,
        ..GbdtConfig::lightgbm_like()
    })
    .fit(&ds.x_train, ds.y_train.classes());
    let e = model.ensemble.clone();
    println!(
        "airline-like booster: {} trees, max depth {}, scoring {} records\n",
        e.trees.len(),
        e.max_depth(),
        ds.n_test()
    );

    let pipe = Pipeline::from_op(e.clone());
    // CPU: measured for real.
    let cpu = compile(
        &pipe,
        &CompileOptions {
            expected_batch: ds.n_test(),
            ..Default::default()
        },
    )
    .unwrap();
    let t = std::time::Instant::now();
    let reference = cpu.predict_proba(&ds.x_test).unwrap();
    println!(
        "CPU (measured):          {:8.2} ms",
        t.elapsed().as_secs_f64() * 1e3
    );

    // Simulated GPU generations (paper Figure 6).
    for dev in [K80, P100, V100] {
        let gpu = compile(
            &pipe,
            &CompileOptions {
                backend: Backend::Compiled,
                device: Device::Sim(dev),
                expected_batch: ds.n_test(),
                ..Default::default()
            },
        )
        .unwrap();
        let (out, stats) = gpu.predict_with_stats(&ds.x_test).unwrap();
        assert_eq!(
            out.to_vec(),
            reference.to_vec(),
            "device placement changes results"
        );
        println!(
            "{:>4} {} (simulated):  {:8.2} ms  ({} kernels, {:.1} MB modeled residency)",
            dev.name,
            dev.year,
            stats.simulated.unwrap().as_secs_f64() * 1e3,
            stats.kernel_launches,
            stats.sim_peak_bytes as f64 / 1e6
        );
    }

    // FIL-like custom-kernel baseline.
    let fil = FilForest::new(&e);
    let (_, stats) = fil.predict_simulated(&ds.x_test, &P100);
    println!(
        "FIL-like @P100 (sim):    {:8.2} ms\n",
        stats.simulated.unwrap().as_secs_f64() * 1e3
    );

    // Modeled OOM: a device too small for the working set refuses to run,
    // like TorchScript on the K80 at 1M-record batches in §6.1.1.
    let tiny = hummingbird::backend::DeviceSpec {
        mem_bytes: 200_000,
        ..K80
    };
    let small = compile(
        &pipe,
        &CompileOptions {
            backend: Backend::Eager,
            device: Device::Sim(tiny),
            ..Default::default()
        },
    )
    .unwrap();
    match small.predict_proba(&ds.x_test) {
        Err(HbError::Exec(ExecError::DeviceOom { needed, capacity })) => {
            println!("tiny device OOM as modeled: needed {needed} bytes > capacity {capacity}");
        }
        other => println!("unexpected: {other:?}"),
    }
}
