#!/usr/bin/env bash
# Tier-1 gate: formatting, lints (including the unwrap/expect ban from
# clippy.toml), and the root test suite. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

# Library crates only: tests and benches are exempt from the
# disallowed-methods ban, and vendor/ stubs carry a crate-level allow.
echo "==> cargo clippy -D warnings (library crates)"
cargo clippy --offline --lib --bins \
    -p hummingbird -p hb-tensor -p hb-backend -p hb-ml -p hb-pipeline \
    -p hb-data -p hb-core -p hb-json -p hb-serve \
    -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo test -q --workspace"
cargo test -q --offline --workspace

# Memory-planner gate, explicitly: per-batch plan determinism,
# steady-state zero-allocation compiled inference, and bit identity
# between the arena-planned and refcount executors.
echo "==> cargo test -q --test memplan (plan determinism + zero-alloc steady state)"
cargo test -q --offline --test memplan

# Abstract-interpretation gate, explicitly: randomized soundness of the
# interval/taint analysis (every eager intermediate inside its inferred
# fact, NaN only where taint permits, before and after optimization)
# plus the memory-plan auditor regression suite.
echo "==> cargo test -q --test absint_soundness --test plan_audit (value analysis gates)"
cargo test -q --offline --test absint_soundness
cargo test -q --offline --test plan_audit

# Register-LIR gate, explicitly: every compiled fused kernel must carry
# a verifier-passed LIR whose register allocation replays clean, the
# seeded-corrupt negatives (use-before-def, out-of-range operand,
# type-confused operand, dead output register, clobbered location
# table) must be rejected with their exact typed errors, and the
# randomized differential suite must show the register VM bit-identical
# to the stack interpreter, NaN payloads and min/max laundering
# asymmetry included.
echo "==> cargo test -q --test lir (register-LIR verifier + differential gate)"
cargo test -q --offline --test lir

# Codegen-tier gate, explicitly: every specialized kernel class the
# stage-2 pattern compiler emits (chain2/chain3/bin2-then/select/
# sanitize-clamp) must stay bit-identical with the generic register VM
# and the legacy stack interpreter over NaN/±Inf/-0.0-seeded inputs,
# in-place evaluation must match out-of-place, and real compiled models
# must produce bit-identical planned outputs on every dispatch rung and
# at every pinned thread count.
echo "==> cargo test -q --test codegen (specialized-kernel differential + determinism gate)"
cargo test -q --offline --test codegen

# Static graph audit: export compiled artifacts (graph + signature +
# value facts) for every tree strategy plus an end-to-end pipeline,
# then run the hb-lint verifier over them. --deny-analysis promotes any
# new analysis finding (probability escaping [0,1], dead where-branch,
# 0-crossing denominator) to an error; --audit-plans replays each
# artifact's memory plans through the independent auditor; --buckets
# checks every graph can scatter per-record results for the serving
# front door's coalescing bucket set (a warning, not a gate — such a
# graph still serves, just uncoalesced). hb-lint exits non-zero on any
# error-level diagnostic.
echo "==> hb-lint over exported graphs (--audit-plans --deny-analysis --deny-cost --buckets)"
rm -rf target/ci-graphs
./target/release/hb-export target/ci-graphs
./target/release/hb-lint --audit-plans --deny-analysis --deny-cost --buckets 1,2,4,8,16,32 \
    target/ci-graphs/*.json

# Cost-certification gate, explicitly: the static certifier's counters
# must match a real execution bit-for-bit across the model zoo at every
# batch bucket (they are the same integer sums evaluated two ways), the
# certified arena must equal the audited plan, and the measured wall
# must land inside the calibrated envelope widened by eps = 0.5. The
# cost bench repeats the same gate per tree strategy and emits
# bench_results/cost.json; --deny-cost above already promotes any
# stale-cert drift or cost regression in the exported artifacts to an
# error.
echo "==> cargo test -q --test cost_soundness (certified-vs-measured cost gate)"
cargo test -q --offline --test cost_soundness
echo "==> cost bench gate (certified envelope vs measured, per strategy x bucket)"
RUST_BACKTRACE=1 cargo run -q --offline --release -p hb-bench --bin tables -- cost

# Chaos suite, explicitly and with backtraces: every fault injected
# into the supervised worker pool must surface typed or degraded —
# worker deaths, lost quarantines, and non-monotonic incident logs all
# fail here.
echo "==> cargo test -q --test chaos (supervisor chaos suite)"
RUST_BACKTRACE=1 cargo test -q --offline --test chaos

# Bounded concurrent soak gate: a short multi-threaded hammer over the
# supervisor under each fault plan. The soak binary asserts its own
# invariants (zero worker deaths, monotonic incidents, non-deadlocking
# drain, no silently wrong answer) and exits non-zero on violation.
#
# The soak's final two scenarios are the overload gate: 128 clients
# hammer a queue of 64 (arrival >= 2x capacity) with a 50ms deadline,
# once uncoalesced and once through the micro-batching front door. The
# binary asserts the coalesced run forms batches, holds e2e p99 <= the
# deadline budget, sheds doomed requests early instead of serving them
# late (no `ok` reply past its deadline, bit-identical outputs to solo
# execution), keeps all workers alive with zero panics, and sustains
# >= 2x the uncoalesced ok-throughput.
echo "==> serving soak gate (bounded, incl. 2x-capacity overload gate)"
RUST_BACKTRACE=1 cargo run -q --offline --release -p hb-bench --bin tables -- \
    soak --soak-secs 1.0 --clients 6

# Multi-model store gate: (a) the store chaos suite — 50 models plus
# one poisoned neighbor behind one supervised store, asserting fault
# isolation (healthy models keep >=95% ok-throughput, zero cross-model
# incident leakage, zero worker deaths), hot-swap promote/rollback,
# fair-share no-starvation under a greedy flood, and typed budget
# rejections; (b) the store bench — 48 replicas must grow measured
# memory sub-linearly (<= 0.5x naive via constant dedup) and a seeded
# divergent v2 must auto-roll-back. Both exit non-zero on violation.
echo "==> cargo test -q --test store_chaos (multi-model fault isolation)"
RUST_BACKTRACE=1 cargo test -q --offline --test store_chaos
echo "==> store bench gate (sub-linear memory + hot-swap rollback)"
RUST_BACKTRACE=1 cargo run -q --offline --release -p hb-bench --bin tables -- store

echo "CI green."
