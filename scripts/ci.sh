#!/usr/bin/env bash
# Tier-1 gate: formatting, lints (including the unwrap/expect ban from
# clippy.toml), and the root test suite. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

# Library crates only: tests and benches are exempt from the
# disallowed-methods ban, and vendor/ stubs carry a crate-level allow.
echo "==> cargo clippy -D warnings (library crates)"
cargo clippy --offline --lib --bins \
    -p hummingbird -p hb-tensor -p hb-backend -p hb-ml -p hb-pipeline \
    -p hb-data -p hb-core -p hb-json -p hb-serve \
    -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo test -q --workspace"
cargo test -q --offline --workspace

# Memory-planner gate, explicitly: per-batch plan determinism,
# steady-state zero-allocation compiled inference, and bit identity
# between the arena-planned and refcount executors.
echo "==> cargo test -q --test memplan (plan determinism + zero-alloc steady state)"
cargo test -q --offline --test memplan

# Static graph audit: export compiled graphs for every tree strategy plus
# an end-to-end pipeline, then run the hb-lint verifier over them.
# hb-lint exits non-zero on any error-level diagnostic.
echo "==> hb-lint over exported graphs"
rm -rf target/ci-graphs
./target/release/hb-export target/ci-graphs
./target/release/hb-lint target/ci-graphs/*.json

echo "CI green."
