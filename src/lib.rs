//! Hummingbird in Rust — a reproduction of *"A Tensor Compiler for Unified
//! Machine Learning Prediction Serving"* (OSDI 2020).
//!
//! This facade crate re-exports the workspace crates so examples, tests,
//! and downstream users can depend on a single package:
//!
//! * [`tensor`] — dense n-d tensors and the paper's Table-2 operator set;
//! * [`backend`] — tensor DAG IR, the Eager/Script/Compiled executors, and
//!   device performance models;
//! * [`ml`] — the traditional-ML substrate (tree ensembles, linear models,
//!   featurizers) with imperative reference scorers;
//! * [`pipeline`] — predictive-pipeline DAGs;
//! * [`data`] — synthetic dataset generators for the paper's benchmarks;
//! * [`compiler`] — the Hummingbird compiler itself (parser, optimizer,
//!   tensor DAG compiler);
//! * [`serve`] — the fault-tolerant serving runtime (degradation ladder,
//!   deadlines, admission control, fault injection).
//!
//! # Quickstart
//!
//! ```
//! use hummingbird::prelude::*;
//!
//! // Train a small random forest on synthetic data...
//! let ds = hummingbird::data::synthetic_classification(200, 10, 2, 42);
//! let forest = RandomForestClassifier::new(ForestConfig {
//!     n_trees: 8,
//!     max_depth: 4,
//!     ..ForestConfig::default()
//! })
//! .fit(&ds.x_train, ds.y_train.classes());
//!
//! // ...compile it to tensor computations and score a batch.
//! let pipe = Pipeline::from_op(forest);
//! let model = compile(&pipe, &CompileOptions::default()).unwrap();
//! let pred = model.predict(&ds.x_test).unwrap();
//! assert_eq!(pred.shape()[0], ds.x_test.shape()[0]);
//! ```

// Pure-safe-Rust policy: every crate in this workspace is 100% safe
// Rust; see DESIGN.md ("Unsafe-code policy").
#![forbid(unsafe_code)]

pub use hb_backend as backend;
pub use hb_core as compiler;
pub use hb_data as data;
pub use hb_ml as ml;
pub use hb_pipeline as pipeline;
pub use hb_serve as serve;
pub use hb_tensor as tensor;

/// Convenience re-exports covering the common compile-and-score flow.
pub mod prelude {
    pub use hb_backend::{Backend, CancelToken, Device, FaultPlan, FaultScope};
    pub use hb_core::{compile, CompileOptions, CompiledModel, HbError, TreeStrategy};
    pub use hb_ml::forest::{ForestConfig, RandomForestClassifier, RandomForestRegressor};
    pub use hb_ml::gbdt::{GbdtConfig, GradientBoostingClassifier, GradientBoostingRegressor};
    pub use hb_pipeline::Pipeline;
    pub use hb_serve::{
        Backpressure, BreakerConfig, BreakerState, CoalesceConfig, HealthSnapshot, Incident,
        IncidentKind, LatencyReport, ModelStore, OpenReason, Rung, ServeConfig, ServeError, Served,
        ServingModel, StoreConfig, Supervisor, SupervisorHealth,
    };
    pub use hb_tensor::{DynTensor, Tensor};
}
