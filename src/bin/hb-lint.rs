//! `hb-lint`: a static auditor for exported tensor-graph JSON artifacts.
//!
//! Runs the full static verification stack — structural validation,
//! dtype checking, and symbolic shape inference with the batch dimension
//! `B` — over each graph file, then reports warnings an executor would
//! never surface: dead nodes, unused input slots, constant-foldable
//! subgraphs, non-finite constants, the parameter footprint, and the
//! static memory planner's arena footprint / reuse ratio at the
//! reference serving batch (warning when planning is defeated).
//!
//! On top of the structural audit, the abstract interpreter
//! (`hb-backend::absint`) runs under the serving admission precondition
//! (finite f32 inputs) and reports value-level findings: classifier
//! outputs whose interval is not contained in `[0, 1]`, `Where` nodes
//! with a statically unreachable branch, and divisions whose denominator
//! interval contains 0. Findings are deduplicated per node kind.
//!
//! Inputs may be bare `Graph` exports or full artifacts (graph +
//! recorded signature + value facts); for artifacts the recorded
//! signature is cross-checked against a fresh verifier run, and the
//! recorded dedup identity (graph content hash + per-constant hashes)
//! is cross-checked against a fresh derivation.
//!
//! When more than one file is given, a cross-artifact dedup audit runs
//! at the end: artifacts whose graphs are bit-identical (equal content
//! hash) and parameter blocks recorded in several artifacts are
//! warned about — that is exactly the sharing a model store's constant
//! pool captures at registration, so duplication across separately
//! shipped artifacts is deployment weight that failed to deduplicate.
//!
//! Flags:
//!
//! * `--audit-plans` — additionally build memory plans at several batch
//!   sizes and replay each through the independent plan auditor
//!   (`hb-backend::audit`); a rejected plan is an **error**.
//! * `--deny-analysis` — escalate abstract-interpretation findings to
//!   error level (the CI gate: seeded artifacts must stay clean).
//! * `--deny-cost` — escalate cost-certificate findings (stale-cert
//!   drift, cost regressions) to error level (the CI cost gate).
//! * `--buckets 1,2,4,8,16,32` — the micro-batch coalescing bucket set
//!   the serving front door would use (`hb-serve`'s default when
//!   omitted). Warns when a graph's verified signature cannot scatter
//!   per-record results, i.e. cannot be served through *any* bucket.
//!
//! The cost section re-derives each artifact's static cost certificates
//! (`hb-backend::cost`) and prints the symbolic work polynomials, the
//! per-kernel counters next to the LIR class/tile stats, and per-bucket
//! certified counters with this machine's calibrated wall-clock envelope
//! (note-level — the envelope is machine-local and never part of a
//! certificate). Recorded certificates are diffed against the fresh
//! derivation: any disagreement is stale-cert drift, and a fresh
//! derivation that costs *more* than the recording is additionally a
//! cost regression. An artifact with no recorded certificates gets one
//! "missing cost certificates" note, never an error.
//!
//! Exit status is non-zero iff any file produced an **error-level**
//! diagnostic (unreadable, unparsable, failing verification, a rejected
//! plan, or — under `--deny-analysis` — any analysis finding); warnings
//! alone keep the exit status at zero so CI can gate on real defects
//! without chasing style.
//!
//! ```text
//! hb-lint [--audit-plans] [--deny-analysis] [--buckets N,N,...] graphs/*.json
//! ```

use std::process::ExitCode;

use hummingbird::backend::lir;
use hummingbird::backend::{audit_plan, Artifact, Graph, GraphSignature, MemoryPlan, Op, SymDim};
use hummingbird::tensor::DynTensor;

/// Behavior toggles parsed from the command line.
#[derive(Clone)]
struct Flags {
    audit_plans: bool,
    deny_analysis: bool,
    deny_cost: bool,
    /// Coalescing bucket sizes the serving front door is configured
    /// with; mirrors `hb-serve`'s `CoalesceConfig::default()`.
    buckets: Vec<usize>,
}

impl Default for Flags {
    fn default() -> Self {
        Flags {
            audit_plans: false,
            deny_analysis: false,
            deny_cost: false,
            buckets: vec![1, 2, 4, 8, 16, 32],
        }
    }
}

fn main() -> ExitCode {
    let mut flags = Flags::default();
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--audit-plans" => flags.audit_plans = true,
            "--deny-analysis" => flags.deny_analysis = true,
            "--deny-cost" => flags.deny_cost = true,
            "--buckets" => {
                let Some(list) = args.next() else {
                    eprintln!("hb-lint: --buckets requires a comma-separated size list");
                    return ExitCode::FAILURE;
                };
                match parse_buckets(&list) {
                    Ok(b) => flags.buckets = b,
                    Err(e) => {
                        eprintln!("hb-lint: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!(
            "usage: hb-lint [--audit-plans] [--deny-analysis] [--deny-cost] [--buckets N,N,...] \
             <graph.json>..."
        );
        return ExitCode::FAILURE;
    }
    let mut errors = 0usize;
    for path in &paths {
        if !lint_file(path, &flags) {
            errors += 1;
        }
    }
    if paths.len() > 1 {
        dedup_report(&paths);
    }
    println!(
        "hb-lint: {} file(s) checked, {} with errors",
        paths.len(),
        errors
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Cross-artifact dedup audit: warns when several artifacts carry the
/// same graph content hash (bit-identical compiled graphs) or record
/// the same constant hash (duplicated parameter blocks). A model
/// store's constant pool shares both at registration, so duplicates
/// across separately shipped artifacts are weight that failed to
/// deduplicate. Warning-level only: duplication is a size finding,
/// not a correctness one.
fn dedup_report(paths: &[String]) {
    use std::collections::{HashMap, HashSet};
    let mut by_content: HashMap<String, Vec<&str>> = HashMap::new();
    let mut by_const: HashMap<String, Vec<&str>> = HashMap::new();
    let mut audited = 0usize;
    for path in paths {
        let Ok(json) = std::fs::read_to_string(path) else {
            continue;
        };
        let Ok(a) = Artifact::from_json_str(&json) else {
            continue;
        };
        if a.content_hash.is_empty() {
            // Exported before dedup identities existed; nothing to
            // cross-reference.
            continue;
        }
        audited += 1;
        by_content.entry(a.content_hash).or_default().push(path);
        let mut seen = HashSet::new();
        for h in a.const_hashes {
            // Count each hash once per artifact: intra-artifact repeats
            // are the executor's (already shared) storage, not shipping
            // weight.
            if seen.insert(h.clone()) {
                by_const.entry(h).or_default().push(path);
            }
        }
    }
    let mut dup_graphs: Vec<_> = by_content.iter().filter(|(_, p)| p.len() > 1).collect();
    dup_graphs.sort_by_key(|(h, _)| (*h).clone());
    for (hash, files) in &dup_graphs {
        println!(
            "hb-lint: warning: {} artifacts are bit-identical compiled graphs \
             (content hash {hash}): {} — a model store would share one copy; ship one artifact",
            files.len(),
            files.join(", ")
        );
    }
    let mut dup_consts: Vec<_> = by_const.iter().filter(|(_, p)| p.len() > 1).collect();
    dup_consts.sort_by_key(|(h, _)| (*h).clone());
    for (hash, files) in &dup_consts {
        println!(
            "hb-lint: warning: parameter block {hash} is recorded in {} artifacts ({}) \
             without deduplication — a shared constant pool would intern it once",
            files.len(),
            files.join(", ")
        );
    }
    println!(
        "hb-lint: dedup audit: {audited} artifact(s), {} duplicated graph(s), \
         {} duplicated parameter block(s)",
        dup_graphs.len(),
        dup_consts.len()
    );
}

/// Parses `--buckets 1,2,4` into sorted, deduplicated, nonzero sizes.
fn parse_buckets(list: &str) -> Result<Vec<usize>, String> {
    let mut buckets = Vec::new();
    for part in list.split(',') {
        let n: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("invalid bucket size `{part}` in --buckets"))?;
        if n == 0 {
            return Err("bucket size 0 is meaningless".to_string());
        }
        buckets.push(n);
    }
    buckets.sort_unstable();
    buckets.dedup();
    if buckets.is_empty() {
        return Err("--buckets requires at least one size".to_string());
    }
    Ok(buckets)
}

/// Lints one file; returns `false` on any error-level diagnostic.
fn lint_file(path: &str, flags: &Flags) -> bool {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            println!("{path}: error: cannot read: {e}");
            return false;
        }
    };
    // Accept both full artifacts and bare graph exports. Parse without
    // the admission gate either way: hb-lint's whole job is to diagnose
    // invalid graphs, so it must be able to hold one.
    let (graph, recorded) = match Artifact::from_json_str(&json) {
        Ok(a) => (a.graph.clone(), Some(a)),
        Err(_) => match Graph::from_json_unchecked(&json) {
            Ok(g) => (g, None),
            Err(e) => {
                println!("{path}: error: unparsable artifact: {e}");
                return false;
            }
        },
    };
    let output_kind = recorded.as_ref().map(|a| a.output_kind.clone());
    let mut ok = match graph.verify() {
        Ok(sig) => {
            println!(
                "{path}: ok: {} nodes, {} kernels, signature {sig}",
                graph.len(),
                graph.kernel_count()
            );
            // A stale artifact carrying a signature its own graph no
            // longer satisfies is lying to its consumers.
            if let Some(a) = &recorded {
                if a.signature != sig {
                    println!(
                        "{path}: warning: recorded signature `{}` disagrees with the verifier (`{sig}`)",
                        a.signature
                    );
                }
                // Same for the dedup identity: a content hash that no
                // longer matches its own graph would alias (or miss)
                // the wrong pool entries in a model store.
                if !a.content_hash.is_empty() {
                    let fresh = format!(
                        "{:016x}",
                        hummingbird::backend::dedup::graph_content_hash(&graph)
                    );
                    if a.content_hash != fresh {
                        println!(
                            "{path}: warning: recorded content hash {} disagrees with a fresh \
                             derivation ({fresh}) — stale dedup identity",
                            a.content_hash
                        );
                    }
                    let fresh_consts = Artifact::const_hashes_of(&graph);
                    if a.const_hashes != fresh_consts {
                        println!(
                            "{path}: warning: recorded constant hashes ({}) disagree with a fresh \
                             derivation ({}) — stale dedup identity",
                            a.const_hashes.len(),
                            fresh_consts.len()
                        );
                    }
                }
            }
            for w in coalesce_warnings(&sig, &flags.buckets) {
                println!("{path}: warning: {w}");
            }
            true
        }
        Err(e) => {
            println!("{path}: error: {e}");
            false
        }
    };
    for w in audit(&graph) {
        println!("{path}: warning: {w}");
    }
    let findings = analyze(&graph, output_kind.as_deref());
    let level = if flags.deny_analysis {
        "error"
    } else {
        "warning"
    };
    for f in &findings {
        println!("{path}: {level}: {f}");
    }
    if flags.deny_analysis && !findings.is_empty() {
        ok = false;
    }
    println!("{path}: note: {}", footprint(&graph));
    let (lir_notes, lir_warnings, lir_errors) = lir_report(&graph, recorded.as_ref());
    for n in &lir_notes {
        println!("{path}: note: {n}");
    }
    for w in &lir_warnings {
        println!("{path}: warning: {w}");
    }
    for e in &lir_errors {
        println!("{path}: error: {e}");
    }
    if !lir_errors.is_empty() {
        ok = false;
    }
    let (cost_notes, cost_warnings) = cost_report(&graph, recorded.as_ref());
    for n in &cost_notes {
        println!("{path}: note: {n}");
    }
    let cost_level = if flags.deny_cost { "error" } else { "warning" };
    for w in &cost_warnings {
        println!("{path}: {cost_level}: {w}");
    }
    if flags.deny_cost && !cost_warnings.is_empty() {
        ok = false;
    }
    if ok {
        match memory_plan_line(&graph) {
            Ok(line) => println!("{path}: note: {line}"),
            Err(line) => println!("{path}: warning: {line}"),
        }
        if flags.audit_plans && !audit_plans(path, &graph) {
            ok = false;
        }
    }
    ok
}

/// Replays the memory plans for several batch sizes through the
/// independent auditor. Returns `false` when any plan is rejected.
fn audit_plans(path: &str, graph: &Graph) -> bool {
    let mut ok = true;
    for batch in [1usize, 7, 1000] {
        // An unplannable batch is a performance finding, not a safety
        // one; the planner-level warning already covers it.
        let Ok(plan) = MemoryPlan::build(graph, batch) else {
            continue;
        };
        match audit_plan(graph, &plan) {
            Ok(()) => println!(
                "{path}: note: plan audit @batch={batch}: {} step(s), {} slot(s) verified",
                plan.steps.len(),
                plan.slots.len()
            ),
            Err(e) => {
                println!("{path}: error: plan audit @batch={batch}: UNSAFE PLAN: {e}");
                ok = false;
            }
        }
    }
    ok
}

/// Register-LIR audit over every fused kernel: offline re-verification
/// plus per-kernel statistics.
///
/// Each fused kernel embeds a register-based linear IR (lowered from its
/// stack bytecode, optimized, and register-allocated at construction —
/// see `hb-backend::lir`). The executor trusts the construction-time
/// proof, so hb-lint replays it offline: the structural verifier
/// (def-before-use, single assignment, register/type checks) and the
/// independent allocation replay must both still accept the embedded
/// program — a failure is an **error** (the artifact carries a kernel
/// the VM must refuse to run).
///
/// Note-level: per-kernel statistics (LIR instruction count vs the stack
/// source, recognized whole-kernel form, physical registers, peak live
/// registers, instructions the optimizer eliminated). Warning-level:
/// register pressure above the [`lir::REG_BUDGET`] soft budget, and a
/// recorded certificate set that disagrees with a fresh derivation (a
/// stale artifact lying about its kernels).
fn lir_report(
    graph: &Graph,
    recorded: Option<&Artifact>,
) -> (Vec<String>, Vec<String>, Vec<String>) {
    let mut notes = Vec::new();
    let mut warnings = Vec::new();
    let mut errors = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        let Op::Fused(k) = &node.op else { continue };
        if let Err(e) = k.lir().verify() {
            errors.push(format!(
                "node {id}: fused-kernel LIR fails offline re-verification: {e}"
            ));
            continue;
        }
        if let Err(e) = lir::opt::verify_alloc(k.lir(), k.lir_exec()) {
            errors.push(format!(
                "node {id}: fused-kernel register allocation fails independent replay: {e}"
            ));
            continue;
        }
        let exec = k.lir_exec();
        let class = k.class_label();
        let tile = if class == "vm" { "block64" } else { "row" };
        notes.push(format!(
            "node {id}: LIR verified: {} instr(s) (from {} stack), form `{}`, class `{class}`, \
             tile `{tile}`, {} reg(s), max-live {}, {} eliminated",
            k.lir().instrs.len(),
            k.program_len(),
            k.lir_form().label(),
            exec.n_regs,
            exec.max_live,
            k.lir_opt_stats().eliminated()
        ));
        // A multi-op kernel that neither the peephole tier nor the
        // codegen tier could specialize interprets every block through
        // the generic register VM — worth flagging on hot paths.
        let computes = k
            .lir()
            .instrs
            .iter()
            .filter(|i| !matches!(i.op, lir::LirOp::Load(_) | lir::LirOp::Imm(_)))
            .count();
        if class == "vm" && computes >= 2 {
            warnings.push(format!(
                "node {id}: {computes}-op fused kernel fell back to the generic register VM — \
                 no codegen kernel class covers its shape, so every block pays interpreted \
                 dispatch ({} LIR instr(s))",
                k.lir().instrs.len()
            ));
        }
        if exec.n_regs > lir::REG_BUDGET {
            warnings.push(format!(
                "node {id}: register pressure {} exceeds the {}-register budget — the kernel \
                 still runs (hard cap {}), but its working set defeats L1-resident blocking",
                exec.n_regs,
                lir::REG_BUDGET,
                lir::REG_FILE
            ));
        }
    }
    if let Some(a) = recorded {
        if !a.lir_certs.is_empty() {
            let mut fresh = Artifact::lir_certs_of(graph);
            // Artifacts exported before the codegen tier carry certs
            // without class/tile; compare those on the legacy fields.
            if a.lir_certs.iter().all(|c| c.class.is_empty()) {
                for c in &mut fresh {
                    c.class.clear();
                    c.tile.clear();
                }
            }
            if a.lir_certs != fresh {
                warnings.push(format!(
                    "recorded LIR certificates ({}) disagree with a fresh derivation — stale or \
                     tampered artifact",
                    a.lir_certs.len()
                ));
            }
        }
    }
    // The matmul autotuner's per-shape-class tile choices, when this
    // process has tuned (or loaded a cache of) any: attribution for
    // bench deltas that trace to tiling rather than kernel classes.
    for ((m2, k2, n2, threads), cfg) in hummingbird::tensor::tune::tuned_snapshot() {
        notes.push(format!(
            "gemm autotuner: shape class 2^{m2}x2^{k2}x2^{n2} @ {threads} thread(s) -> tile {}",
            cfg.label()
        ));
    }
    (notes, warnings, errors)
}

/// Static cost certification report: symbolic work polynomials,
/// per-kernel counters (next to the LIR class/tile stats), per-bucket
/// certified counters with this machine's calibrated envelope, and a
/// diff of any recorded certificates against a fresh derivation.
///
/// Warnings (errors under `--deny-cost`): stale-cert drift (recorded ≠
/// fresh — counters and arena are machine-independent, so any
/// disagreement means the artifact is stale or tampered) and cost
/// regression (the fresh derivation does strictly more work than the
/// recording claims). A recorded artifact with *no* certificates gets a
/// single "missing cost certificates" note — pre-cost artifacts must
/// keep linting cleanly.
fn cost_report(graph: &Graph, recorded: Option<&Artifact>) -> (Vec<String>, Vec<String>) {
    use hummingbird::backend::cost;
    let mut notes = Vec::new();
    let mut warnings = Vec::new();
    let per_node = match cost::cost_nodes(graph) {
        Ok(n) => n,
        Err(e) => {
            // Underivable work (e.g. undeclared input shapes) is a
            // limitation note, not a defect: such graphs simply serve
            // without feasibility proofs.
            notes.push(format!("cost: not statically derivable: {e}"));
            if recorded.is_some_and(|a| !a.cost_certs.is_empty()) {
                warnings.push(
                    "recorded cost certificates exist but the graph's work is no longer \
                     derivable — stale or tampered artifact"
                        .to_string(),
                );
            }
            return (notes, warnings);
        }
    };
    // Per-kernel counters beside the per-kernel LIR class/tile notes.
    for n in &per_node {
        let Some(class) = &n.class else { continue };
        notes.push(format!(
            "node {}: cost: class `{class}`, flops = {}, traversals = {}, bytes = {}",
            n.node, n.flops, n.traversals, n.bytes
        ));
    }
    if let Ok(summary) = cost::cost_summary(graph) {
        notes.push(format!(
            "cost summary: flops = {}, traversals = {}, bytes = {}, {} kernel launch(es)",
            summary.flops, summary.traversals, summary.bytes, summary.kernel_launches
        ));
    }
    let fresh = Artifact::cost_certs_of(graph);
    for cert in &fresh {
        let env = cost::envelope_for(cert);
        notes.push(format!(
            "cost cert @batch={}: {} flops, {} traversals, {} bytes, {} arena bytes, \
             calibrated envelope [{:?}, {:?}] (machine-local, not certified)",
            cert.batch, cert.flops, cert.traversals, cert.bytes, cert.arena_bytes, env.lo, env.hi
        ));
    }
    let Some(a) = recorded else {
        return (notes, warnings);
    };
    if a.cost_certs.is_empty() {
        notes.push(
            "missing cost certificates (artifact predates cost certification); derived fresh \
             above"
                .to_string(),
        );
        return (notes, warnings);
    }
    if a.cost_certs != fresh {
        warnings.push(format!(
            "recorded cost certificates ({}) disagree with a fresh derivation ({}) — stale-cert \
             drift",
            a.cost_certs.len(),
            fresh.len()
        ));
    }
    // A regression is stricter than drift: the artifact now does more
    // work than its recording claims, so consumers budgeting from the
    // recorded certs (stores, admission) are under-provisioned.
    for f in &fresh {
        let Some(r) = a.cost_certs.iter().find(|c| c.batch == f.batch) else {
            continue;
        };
        if f.flops > r.flops || f.bytes > r.bytes || f.arena_bytes > r.arena_bytes {
            warnings.push(format!(
                "cost regression @batch={}: fresh derivation needs {} flops / {} bytes / {} \
                 arena, recorded cert claims {} / {} / {}",
                f.batch, f.flops, f.bytes, f.arena_bytes, r.flops, r.bytes, r.arena_bytes
            ));
        }
    }
    (notes, warnings)
}

/// Coalescing serveability against the configured bucket set.
///
/// The serving front door (`hb-serve`'s batcher) gathers single-record
/// requests into micro-batches of the configured bucket sizes, executes
/// once through the planned path, and scatters row `i` of every output
/// back to member `i`. That scatter is only sound when each output's
/// leading dimension is *exactly* the symbolic batch `B` — row count
/// equal to member count at every bucket size. Any other leading dim
/// (a fixed size, `c*B`, `B^p`, or an unknown shape) breaks the
/// row-to-member correspondence for every bucket at once, so the graph
/// can only be served uncoalesced.
fn coalesce_warnings(sig: &GraphSignature, buckets: &[usize]) -> Vec<String> {
    let mut warnings = Vec::new();
    for (i, (_, shape)) in sig.outputs.iter().enumerate() {
        let lead = shape.dims().and_then(|d| d.first().copied());
        if lead == Some(SymDim::batch()) {
            continue;
        }
        let lead_text = lead.map_or("?".to_string(), |d| format!("{d}"));
        warnings.push(format!(
            "output {i} has shape {shape} with leading dim `{lead_text}`, not the batch dim \
             `B`: per-record scatter is unsound, so no coalescing bucket in {buckets:?} can \
             serve this graph (requests fall back to uncoalesced execution)"
        ));
    }
    warnings
}

/// Value-level findings from the abstract interpreter, deduplicated per
/// node kind (one line per finding kind with a count and examples).
fn analyze(graph: &Graph, output_kind: Option<&str>) -> Vec<String> {
    let mut findings = Vec::new();
    let input_facts = graph.finite_input_facts();
    let Ok(facts) = graph.infer_values(&input_facts) else {
        // Structural problems are already reported by the verifier.
        return findings;
    };

    // Classifier outputs must be probabilities: interval ⊆ [0, 1].
    if output_kind == Some("proba") {
        for (i, &o) in graph.outputs.iter().enumerate() {
            let f = facts[o];
            if !(f.lo >= 0.0 && f.hi <= 1.0) {
                findings.push(format!(
                    "classifier output {i} has interval [{}, {}] not contained in [0, 1]",
                    f.lo, f.hi
                ));
            }
        }
    }

    // Statically unreachable Where branches and divisions whose
    // denominator may contain 0, each deduplicated per node kind.
    let mut dead_where: Vec<usize> = Vec::new();
    let mut zero_div: Vec<usize> = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        match node.op {
            Op::Where if node.inputs.len() == 3 => {
                let c = facts[node.inputs[0]];
                if (c.lo >= 1.0 || c.hi <= 0.0) && !c.can_nan {
                    dead_where.push(id);
                }
            }
            Op::Div if node.inputs.len() == 2 && facts[node.inputs[1]].contains_zero() => {
                zero_div.push(id);
            }
            _ => {}
        }
    }
    if !dead_where.is_empty() {
        findings.push(format!(
            "{} Where node(s) with a statically unreachable branch (dead code the optimizer \
             should have removed), e.g. {:?}",
            dead_where.len(),
            &dead_where[..dead_where.len().min(3)]
        ));
    }
    if !zero_div.is_empty() {
        findings.push(format!(
            "{} Div node(s) whose denominator interval contains 0 (result may be NaN/Inf), \
             e.g. {:?}",
            zero_div.len(),
            &zero_div[..zero_div.len().min(3)]
        ));
    }
    findings
}

/// One-line arena summary from the static memory planner at a reference
/// batch of 1000 (the paper's serving batch). `Err` carries a
/// warning-level message when planning is defeated — an unplannable
/// graph runs every request on the allocating refcount path.
fn memory_plan_line(graph: &Graph) -> Result<String, String> {
    const REF_BATCH: usize = 1000;
    match MemoryPlan::build(graph, REF_BATCH) {
        Ok(plan) if plan.planned_kernels > 0 => {
            let reuse = plan
                .reuse_ratio()
                .map_or("-".to_string(), |r| format!("{r:.2}"));
            Ok(format!(
                "memory plan @batch={REF_BATCH}: {} slot(s), {} arena bytes ({} naive), reuse ratio {}, {} planned / {} fallback kernel(s)",
                plan.slots.len(),
                plan.arena_bytes,
                plan.naive_bytes,
                reuse,
                plan.planned_kernels,
                plan.fallback_kernels
            ))
        }
        Ok(plan) => Err(format!(
            "memory planning defeated @batch={REF_BATCH}: 0 plannable kernels ({} fallback); every run allocates",
            plan.fallback_kernels
        )),
        Err(e) => Err(format!(
            "memory planning defeated @batch={REF_BATCH}: {e}; every run allocates"
        )),
    }
}

/// Warning-level findings on a structurally parsable graph.
fn audit(graph: &Graph) -> Vec<String> {
    let mut warnings = Vec::new();

    // Reachability from the outputs (the liveness DCE would compute).
    let mut live = vec![false; graph.nodes.len()];
    let mut stack: Vec<usize> = graph
        .outputs
        .iter()
        .copied()
        .filter(|&o| o < graph.nodes.len())
        .collect();
    while let Some(id) = stack.pop() {
        if live[id] {
            continue;
        }
        live[id] = true;
        stack.extend(
            graph.nodes[id]
                .inputs
                .iter()
                .copied()
                .filter(|&i| i < graph.nodes.len()),
        );
    }
    let dead: Vec<usize> = (0..graph.nodes.len()).filter(|&i| !live[i]).collect();
    if !dead.is_empty() {
        warnings.push(format!(
            "{} dead node(s) unreachable from the outputs: {:?}",
            dead.len(),
            &dead[..dead.len().min(8)]
        ));
    }

    // Input slots no live node reads.
    let mut used = vec![false; graph.input_dtypes.len()];
    for (id, node) in graph.nodes.iter().enumerate() {
        if let Op::Input(slot) = node.op {
            if live[id] {
                if let Some(u) = used.get_mut(slot) {
                    *u = true;
                }
            }
        }
    }
    for (slot, u) in used.iter().enumerate() {
        if !u {
            warnings.push(format!("input slot {slot} is never read"));
        }
    }

    // Constant-foldable subgraphs: live non-Const nodes whose operands
    // are all (transitively) constant — the Compiled backend would fold
    // these away, so their presence means the artifact was exported
    // unoptimized.
    let mut is_const = vec![false; graph.nodes.len()];
    let mut foldable = 0usize;
    for (id, node) in graph.nodes.iter().enumerate() {
        match &node.op {
            Op::Const(_) => is_const[id] = true,
            Op::Input(_) | Op::Fused(_) => {}
            _ => {
                if !node.inputs.is_empty()
                    && node.inputs.iter().all(|&i| is_const.get(i) == Some(&true))
                {
                    is_const[id] = true;
                    if live[id] {
                        foldable += 1;
                    }
                }
            }
        }
    }
    if foldable > 0 {
        warnings.push(format!(
            "{foldable} node(s) are constant-foldable; export after optimization to shrink the artifact"
        ));
    }

    // Cancellation checkpoints: the serving runtime's cooperative
    // cancellation (deadline enforcement) can only observe its token
    // *between* kernel launches. A graph lowered to a single fused
    // mega-kernel gives a blown deadline nowhere to stop — the request
    // runs to completion no matter how late it is.
    if graph.kernel_count() <= 1 && graph.len() > 1 {
        warnings.push(format!(
            "graph has {} kernel launch(es): no cancellation checkpoints — deadline-exceeded \
             requests cannot be stopped mid-run when served",
            graph.kernel_count()
        ));
    }

    // Constants carrying NaN/Inf: every downstream arithmetic op will
    // poison its outputs, which serving treats as rung corruption.
    for (id, node) in graph.nodes.iter().enumerate() {
        if let Op::Const(DynTensor::F32(t)) = &node.op {
            let bad = t.iter().filter(|v| !v.is_finite()).count();
            if bad > 0 {
                warnings.push(format!(
                    "node {id}: constant contains {bad} non-finite value(s) (NaN/Inf)"
                ));
            }
        }
    }

    warnings
}

/// One-line parameter-footprint summary.
fn footprint(graph: &Graph) -> String {
    let consts = graph
        .nodes
        .iter()
        .filter(|n| matches!(n.op, Op::Const(_)))
        .count();
    format!(
        "{} nodes, {} constants ({} parameter bytes), {} kernel launches, {} output(s)",
        graph.len(),
        consts,
        graph.const_bytes(),
        graph.kernel_count(),
        graph.outputs.len()
    )
}
