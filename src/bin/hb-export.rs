//! `hb-export`: compiles reference pipelines and writes them as JSON
//! artifacts — the optimized tensor graph plus its statically derived
//! metadata (verifier signature and abstract-interpretation value
//! facts) — one per tree strategy plus an end-to-end featurizer
//! pipeline. CI feeds the output directory to `hb-lint` so every
//! compilation strategy stays clean under the static analyses.
//!
//! ```text
//! hb-export <output-dir>
//! ```

use std::path::Path;
use std::process::ExitCode;

use hummingbird::backend::Backend;
use hummingbird::compiler::{compile, CompileOptions, TreeStrategy};
use hummingbird::ml::forest::ForestConfig;
use hummingbird::pipeline::{fit_pipeline, OpSpec, Pipeline, Targets};
use hummingbird::tensor::Tensor;

fn main() -> ExitCode {
    let Some(dir) = std::env::args().nth(1) else {
        eprintln!("usage: hb-export <output-dir>");
        return ExitCode::FAILURE;
    };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("hb-export: cannot create {dir}: {e}");
        return ExitCode::FAILURE;
    }
    match export_all(Path::new(&dir)) {
        Ok(n) => {
            println!("hb-export: wrote {n} graph(s) to {dir}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hb-export: {e}");
            ExitCode::FAILURE
        }
    }
}

fn export_all(dir: &Path) -> Result<usize, String> {
    let n = 120;
    let x = Tensor::from_fn(&[n, 6], |i| ((i[0] * 7 + i[1] * 3) % 13) as f32 * 0.3);
    let y = Targets::Classes((0..n).map(|i| (i % 3) as i64).collect());

    let forest = OpSpec::RandomForestClassifier(ForestConfig {
        n_trees: 8,
        max_depth: 4,
        ..ForestConfig::default()
    });
    let tree_pipe = fit_pipeline(&[OpSpec::StandardScaler, forest.clone()], &x, &y);
    let e2e_pipe = fit_pipeline(
        &[
            OpSpec::StandardScaler,
            OpSpec::Binarizer { threshold: 0.5 },
            forest,
        ],
        &x,
        &y,
    );

    let mut written = 0usize;
    for (strategy, name) in [
        (TreeStrategy::Gemm, "forest_gemm"),
        (TreeStrategy::TreeTraversal, "forest_tree_traversal"),
        (TreeStrategy::PerfectTreeTraversal, "forest_perfect_tree"),
    ] {
        export_one(dir, name, &tree_pipe, strategy)?;
        written += 1;
    }
    export_one(dir, "pipeline_e2e", &e2e_pipe, TreeStrategy::Auto)?;
    written += 1;
    Ok(written)
}

fn export_one(
    dir: &Path,
    name: &str,
    pipe: &Pipeline,
    strategy: TreeStrategy,
) -> Result<(), String> {
    let opts = CompileOptions {
        backend: Backend::Compiled,
        tree_strategy: strategy,
        ..CompileOptions::default()
    };
    let model = compile(pipe, &opts).map_err(|e| format!("{name}: compile failed: {e}"))?;
    // Export the full artifact: the optimized graph plus its verifier
    // signature and abstract-interpretation output facts, so consumers
    // can read the static guarantees without re-deriving them.
    let artifact = model
        .artifact()
        .map_err(|e| format!("{name}: artifact failed: {e}"))?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, artifact.to_json_string())
        .map_err(|e| format!("{name}: write failed: {e}"))?;
    Ok(())
}
